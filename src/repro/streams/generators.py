"""Synthetic streaming-graph workload generators.

These produce the workloads the evaluation runs on: planted-partition
(stochastic block model) graphs with known ground truth, drifting
variants that exercise deletions, and Erdős–Rényi noise graphs. All
generators are deterministic in their ``seed`` and return plain edge
lists / event lists so they compose with :mod:`repro.streams.order`.

Edge sampling uses geometric skipping (sample the *gaps* between chosen
pairs), so generating a G(n, p) block costs O(expected edges), not
O(n²) — necessary for the scalability experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.quality.partition import Partition
from repro.streams.events import Edge, EdgeEvent, add_edge, canonical_edge, delete_edge
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_positive, check_probability

__all__ = [
    "PlantedPartitionGraph",
    "planted_partition",
    "erdos_renyi_edges",
    "sbm_stream",
    "DriftPhase",
    "drifting_sbm_stream",
]


def _skip_sample(total: int, p: float, rng) -> Iterator[int]:
    """Yield a p-Bernoulli subset of range(total) via geometric skips."""
    if p <= 0.0 or total <= 0:
        return
    if p >= 1.0:
        yield from range(total)
        return
    log_q = math.log(1.0 - p)
    index = -1
    while True:
        # Gap to the next selected index: floor(log(U)/log(1-p)).
        gap = int(math.log(rng.random()) / log_q)
        index += gap + 1
        if index >= total:
            return
        yield index


def _pairs_within(members: Sequence, p: float, rng) -> List[Edge]:
    """p-sample of the unordered pairs inside ``members``."""
    n = len(members)
    total = n * (n - 1) // 2
    edges: List[Edge] = []
    for flat in _skip_sample(total, p, rng):
        # Invert the lexicographic pair index (row-major upper triangle).
        i = int((1 + math.isqrt(8 * flat + 1)) // 2)
        j = flat - i * (i - 1) // 2
        edges.append(canonical_edge(members[i], members[j]))
    return edges


def _pairs_across(left: Sequence, right: Sequence, p: float, rng) -> List[Edge]:
    """p-sample of the bipartite pairs left × right."""
    total = len(left) * len(right)
    width = len(right)
    edges: List[Edge] = []
    for flat in _skip_sample(total, p, rng):
        edges.append(canonical_edge(left[flat // width], right[flat % width]))
    return edges


@dataclass(frozen=True)
class PlantedPartitionGraph:
    """A generated graph together with its planted communities."""

    edges: List[Edge]
    truth: Partition

    @property
    def num_vertices(self) -> int:
        """Vertices covered by the planted partition."""
        return self.truth.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of generated edges."""
        return len(self.edges)


def planted_partition(
    num_vertices: int,
    num_communities: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> PlantedPartitionGraph:
    """Stochastic block model with equal-size communities.

    Vertices ``0..n-1`` are split into ``num_communities`` nearly-equal
    groups; intra-group pairs become edges with probability ``p_in``,
    inter-group pairs with ``p_out``.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("num_communities", num_communities)
    check_probability("p_in", p_in)
    check_probability("p_out", p_out)
    if num_communities > num_vertices:
        raise ValueError("more communities than vertices")
    communities: List[List[int]] = [[] for _ in range(num_communities)]
    for v in range(num_vertices):
        communities[v % num_communities].append(v)
    edges: List[Edge] = []
    for index, members in enumerate(communities):
        edges.extend(_pairs_within(members, p_in, make_rng(child_seed(seed, "in", index))))
    for i in range(num_communities):
        for j in range(i + 1, num_communities):
            edges.extend(
                _pairs_across(
                    communities[i],
                    communities[j],
                    p_out,
                    make_rng(child_seed(seed, "out", i, j)),
                )
            )
    truth = Partition.from_clusters(communities)
    return PlantedPartitionGraph(edges=edges, truth=truth)


def erdos_renyi_edges(num_vertices: int, p: float, seed: int = 0) -> List[Edge]:
    """G(n, p) edge list (no community structure; the null model)."""
    check_positive("num_vertices", num_vertices)
    check_probability("p", p)
    rng = make_rng(child_seed(seed, "gnp"))
    return _pairs_within(list(range(num_vertices)), p, rng)


def sbm_stream(
    num_vertices: int,
    num_communities: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Tuple[List[EdgeEvent], Partition]:
    """Planted-partition graph as a shuffled insert-only event stream."""
    graph = planted_partition(num_vertices, num_communities, p_in, p_out, seed)
    rng = make_rng(child_seed(seed, "order"))
    edges = list(graph.edges)
    rng.shuffle(edges)
    return [add_edge(u, v) for u, v in edges], graph.truth


@dataclass(frozen=True)
class DriftPhase:
    """One phase of a drifting stream: events plus truth *after* them."""

    events: List[EdgeEvent]
    truth: Partition


def drifting_sbm_stream(
    num_vertices: int,
    num_communities: int,
    p_in: float,
    p_out: float,
    num_phases: int,
    migrate_fraction: float = 0.2,
    seed: int = 0,
) -> List[DriftPhase]:
    """A churning community structure (experiment E6's workload).

    Phase 0 builds a planted-partition graph. Each later phase picks
    ``migrate_fraction`` of the vertices, moves them to a different
    community, deletes their now-stale edges, and adds fresh edges
    consistent with the new membership. Every phase reports the planted
    truth that holds after its events, so a tracker can be scored
    phase by phase.
    """
    check_positive("num_phases", num_phases)
    check_probability("migrate_fraction", migrate_fraction)
    rng = make_rng(child_seed(seed, "drift"))
    membership: Dict[int, int] = {
        v: v % num_communities for v in range(num_vertices)
    }
    live_edges: set = set()

    def sample_vertex_edges(v: int, phase: int) -> List[Edge]:
        """Edges incident to ``v`` under the current membership."""
        local = make_rng(child_seed(seed, "vertex", phase, v))
        mine = membership[v]
        result = []
        for w in range(num_vertices):
            if w == v:
                continue
            p = p_in if membership[w] == mine else p_out
            if local.random() < p:
                result.append(canonical_edge(v, w))
        return result

    phases: List[DriftPhase] = []
    for phase in range(num_phases):
        events: List[EdgeEvent] = []
        if phase == 0:
            graph = planted_partition(
                num_vertices, num_communities, p_in, p_out, seed=child_seed(seed, "base")
            )
            membership = dict(graph.truth.labels())  # type: ignore[arg-type]
            for edge in graph.edges:
                live_edges.add(edge)
                events.append(add_edge(*edge))
            rng.shuffle(events)
        else:
            movers = rng.sample(range(num_vertices), max(1, int(migrate_fraction * num_vertices)))
            for v in movers:
                old = membership[v]
                membership[v] = rng.choice(
                    [c for c in range(num_communities) if c != old]
                )
            stale: List[Edge] = [
                e for e in live_edges if e[0] in set(movers) or e[1] in set(movers)
            ]
            for edge in stale:
                live_edges.discard(edge)
                events.append(delete_edge(*edge))
            fresh: List[Edge] = []
            for v in movers:
                for edge in sample_vertex_edges(v, phase):
                    if edge not in live_edges:
                        live_edges.add(edge)
                        fresh.append(edge)
            rng.shuffle(fresh)
            events.extend(add_edge(*e) for e in fresh)
        truth = Partition(
            {v: membership[v] for v in range(num_vertices)}
        )
        phases.append(DriftPhase(events=events, truth=truth))
    return phases
