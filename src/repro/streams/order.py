"""Stream-order transforms.

The same final graph can arrive in many orders; these helpers build the
orders the experiments (and adversarial tests) need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventColumns,
    EventKind,
    RawEvent,
    add_edge,
    delete_edge,
)
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_probability

__all__ = [
    "shuffled",
    "insert_only_stream",
    "insert_only_stream_raw",
    "insert_only_columns",
    "insert_delete_stream",
    "adversarial_bridge_first",
]


def shuffled(events: Sequence[EdgeEvent], seed: int = 0) -> List[EdgeEvent]:
    """A uniformly shuffled copy of ``events``."""
    result = list(events)
    make_rng(child_seed(seed, "shuffle")).shuffle(result)
    return result


def insert_only_stream(edges: Iterable[Edge], seed: int | None = 0) -> List[EdgeEvent]:
    """ADD_EDGE events for ``edges``, shuffled when ``seed`` is not None."""
    events = [add_edge(u, v) for u, v in edges]
    if seed is not None:
        make_rng(child_seed(seed, "insert_only")).shuffle(events)
    return events


def insert_only_stream_raw(
    edges: Iterable[Edge], seed: int | None = 0
) -> List[RawEvent]:
    """:func:`insert_only_stream` as raw ``(kind, u, v)`` tuples.

    Skips per-event :class:`EdgeEvent` construction for the batched
    ingestion fast path. The shuffle draws the same permutation as
    :func:`insert_only_stream` for the same seed (it depends only on the
    seed and the list length), so both variants describe the *same*
    stream and drive the clusterer to the same state.
    """
    kind = EventKind.ADD_EDGE
    events: List[RawEvent] = [(kind, u, v) for u, v in edges]
    if seed is not None:
        make_rng(child_seed(seed, "insert_only")).shuffle(events)
    return events


def insert_only_columns(
    edges: Iterable[Edge], batch_size: int, seed: int | None = 0
) -> Iterator[EventColumns]:
    """:func:`insert_only_stream_raw` grouped into :class:`EventColumns`.

    Yields column batches with ``kinds=None`` (the stream is ADD_EDGE by
    construction), the shape the numpy batch kernel consumes without
    per-event inspection. Draws the same permutation as the raw variant
    for the same seed, so all three spellings describe the same stream.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    events = insert_only_stream_raw(edges, seed=seed)
    for start in range(0, len(events), batch_size):
        chunk = events[start : start + batch_size]
        yield EventColumns(
            us=[e[1] for e in chunk], vs=[e[2] for e in chunk]
        )


def insert_delete_stream(
    edges: Sequence[Edge],
    churn: float = 0.3,
    seed: int = 0,
) -> List[EdgeEvent]:
    """An add/delete stream whose final graph is exactly ``edges``.

    Every edge is added; additionally a ``churn`` fraction of the edges
    is deleted and re-added once, with the three occurrences interleaved
    randomly but kept in relative order (add < delete < re-add), so the
    stream is always well-formed and the final state is the full edge
    set. Useful for exercising the deletion path while keeping ground
    truth comparable to the insert-only stream.
    """
    check_probability("churn", churn)
    rng = make_rng(child_seed(seed, "churn"))
    num_churned = int(len(edges) * churn)
    churned = set(rng.sample(range(len(edges)), num_churned)) if num_churned else set()
    # Assign each event a random timestamp, forcing order within an edge.
    keyed: List[tuple] = []
    for index, edge in enumerate(edges):
        if index in churned:
            t1, t2, t3 = sorted(rng.random() for _ in range(3))
            keyed.append((t1, add_edge(*edge)))
            keyed.append((t2, delete_edge(*edge)))
            keyed.append((t3, add_edge(*edge)))
        else:
            keyed.append((rng.random(), add_edge(*edge)))
    keyed.sort(key=lambda pair: pair[0])
    return [event for _, event in keyed]


def adversarial_bridge_first(
    intra_edges: Sequence[Edge],
    bridge_edges: Sequence[Edge],
    seed: int = 0,
) -> List[EdgeEvent]:
    """All inter-community bridges first, then intra edges (worst case).

    Early bridges enter an under-full reservoir with probability 1, so
    this order maximally tempts the clusterer into merging communities —
    used to probe robustness, not as a realistic workload.
    """
    rng = make_rng(child_seed(seed, "adversarial"))
    bridges = [add_edge(u, v) for u, v in bridge_edges]
    rng.shuffle(bridges)
    intra = [add_edge(u, v) for u, v in intra_edges]
    rng.shuffle(intra)
    return bridges + intra
