"""Compact binary codec for raw event batches.

The multiprocess pipeline (:mod:`repro.core.pipeline`) ships event
batches from the parsing/routing stage to long-lived shard workers.
Pickling a list of per-event objects costs more than the clustering
work itself at high throughput, so batches travel as *frames*: a small
interned vertex table followed by the events as packed ``uint32``
triplets — one bulk :func:`struct.pack` call per frame, no per-event
object overhead on either side.

Frame layout (all integers little-endian)::

    u8   format version (1)
    u32  vertex-table entry count T
    T×   tagged entry:
           0x00  s64            — int vertex in the signed 64-bit range
           0x01  u32 len, utf-8 — string vertex
           0x02  u32 len, ascii — int vertex outside the 64-bit range
                                  (decimal digits)
    u32  event count N
    N×   u32 kind, u32 u_index, u32 v_index
         (v_index = 0xFFFFFFFF for vertex events)

Supported vertex types are ``int`` and ``str`` — exactly what the
stream readers in :mod:`repro.streams.io` produce. Anything else (and
``bool``, which would silently collapse into ``0``/``1``) raises
``TypeError`` at encode time. Table lookups are by equality, so every
*new* vertex value is type-checked as it is interned.

Round-trip is exact: ``decode_batch(encode_batch(events))`` returns the
same ``(kind, u, v)`` tuples, property-tested in
``tests/test_codec.py``. A corrupt or truncated frame raises
``ValueError`` from :func:`decode_batch`.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.streams.events import EventKind, RawEvent

__all__ = [
    "CODEC_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "decode_batch",
    "encode_batch",
    "encode_batches",
]

CODEC_VERSION = 1

#: Default frame-size ceiling for :func:`encode_batches`. Frames are
#: also pipe messages, so keeping them well under the OS pipe buffer
#: lets the producer's ``send`` return without blocking on the worker.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_NO_VERTEX = 0xFFFFFFFF

# Event kinds are encoded positionally; the tuple below is the closed,
# ordered wire enumeration (a new kind must be appended, never inserted).
_KINDS: Tuple[EventKind, ...] = (
    EventKind.ADD_EDGE,
    EventKind.DELETE_EDGE,
    EventKind.ADD_VERTEX,
    EventKind.DELETE_VERTEX,
)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}
_EDGE_CODES = frozenset(
    (_KIND_CODE[EventKind.ADD_EDGE], _KIND_CODE[EventKind.DELETE_EDGE])
)

_U32 = struct.Struct("<I")
_S64_ENTRY = struct.Struct("<bq")
_HEADER = struct.Struct("<BI")


def _encode_entry(vertex) -> bytes:
    """One tagged vertex-table entry; raises ``TypeError`` for vertex
    types the wire format has no representation for."""
    kind = type(vertex)
    if kind is int:
        if _INT64_MIN <= vertex <= _INT64_MAX:
            return _S64_ENTRY.pack(0, vertex)
        digits = str(vertex).encode("ascii")
        return b"\x02" + _U32.pack(len(digits)) + digits
    if kind is str:
        data = vertex.encode("utf-8")
        return b"\x01" + _U32.pack(len(data)) + data
    raise TypeError(
        f"codec supports int and str vertex ids, got {kind.__name__}: {vertex!r}"
    )


def _event_fields(event) -> Tuple[EventKind, object, object]:
    if type(event) is tuple:
        return event
    return event.kind, event.u, event.v


def encode_batch(events: Sequence) -> bytes:
    """Encode a batch of events (raw tuples or ``EdgeEvent``) as one frame."""
    table: dict = {}
    entries: List[bytes] = []
    flat: List[int] = []
    kind_code = _KIND_CODE
    no_vertex = _NO_VERTEX
    for event in events:
        kind, u, v = _event_fields(event)
        code = kind_code.get(kind)
        if code is None:
            raise ValueError(f"unknown event kind {kind!r}")
        u_index = table.get(u)
        if u_index is None:
            u_index = table[u] = len(entries)
            entries.append(_encode_entry(u))
        if v is None:
            v_index = no_vertex
        else:
            v_index = table.get(v)
            if v_index is None:
                v_index = table[v] = len(entries)
                entries.append(_encode_entry(v))
        flat.append(code)
        flat.append(u_index)
        flat.append(v_index)
    parts = [_HEADER.pack(CODEC_VERSION, len(entries))]
    parts.extend(entries)
    parts.append(_U32.pack(len(flat) // 3))
    parts.append(struct.pack(f"<{len(flat)}I", *flat))
    return b"".join(parts)


def encode_batches(
    events: Iterable, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Iterator[bytes]:
    """Encode events into one or more frames of at most ``max_bytes``.

    Splits greedily on exact size accounting (header + table entries +
    12 bytes per event). A single event whose vertex labels alone exceed
    ``max_bytes`` still gets its own (oversized) frame — the codec never
    drops or truncates an event. Yields nothing for an empty input.
    """
    if max_bytes <= 0:
        raise ValueError(f"max_bytes must be positive, got {max_bytes}")
    batch: List = []
    # Running frame size: 5-byte header + 4-byte event count so far.
    size = _HEADER.size + _U32.size
    seen: set = set()
    for event in events:
        _, u, v = _event_fields(event)
        added = 12  # one packed triplet
        if u not in seen:
            added += len(_encode_entry(u))
        if v is not None and v not in seen and v != u:
            added += len(_encode_entry(v))
        if batch and size + added > max_bytes:
            yield encode_batch(batch)
            batch = []
            seen = set()
            size = _HEADER.size + _U32.size
            added = 12 + len(_encode_entry(u))
            if v is not None and v != u:
                added += len(_encode_entry(v))
        batch.append(event)
        seen.add(u)
        if v is not None:
            seen.add(v)
        size += added
    if batch:
        yield encode_batch(batch)


def decode_batch(data: bytes) -> List[RawEvent]:
    """Decode one frame back into raw ``(kind, u, v)`` event tuples.

    Raises ``ValueError`` for anything structurally wrong: unknown
    format version, truncated data, out-of-range table indexes, or an
    edge event missing its second endpoint.
    """
    try:
        version, table_count = _HEADER.unpack_from(data, 0)
    except struct.error:
        raise ValueError("corrupt event frame: truncated header") from None
    if version != CODEC_VERSION:
        raise ValueError(
            f"corrupt event frame: unsupported codec version {version} "
            f"(this build reads {CODEC_VERSION})"
        )
    offset = _HEADER.size
    vertices: List[object] = []
    try:
        for _ in range(table_count):
            tag = data[offset]
            offset += 1
            if tag == 0:
                (value,) = struct.unpack_from("<q", data, offset)
                offset += 8
            elif tag in (1, 2):
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                raw = data[offset : offset + length]
                if len(raw) != length:
                    raise ValueError("corrupt event frame: truncated vertex entry")
                offset += length
                if tag == 1:
                    value = raw.decode("utf-8")
                else:
                    try:
                        value = int(raw)
                    except ValueError:
                        raise ValueError(
                            "corrupt event frame: malformed bigint entry"
                        ) from None
            else:
                raise ValueError(f"corrupt event frame: unknown vertex entry tag {tag}")
            vertices.append(value)
        (count,) = _U32.unpack_from(data, offset)
        offset += 4
        flat = struct.unpack_from(f"<{3 * count}I", data, offset)
    except (struct.error, IndexError, UnicodeDecodeError) as error:
        raise ValueError(f"corrupt event frame: {error}") from None
    if offset + 12 * count != len(data):
        raise ValueError(
            f"corrupt event frame: {len(data) - offset - 12 * count} "
            "trailing bytes"
        )
    kinds = _KINDS
    edge_codes = _EDGE_CODES
    no_vertex = _NO_VERTEX
    events: List[RawEvent] = []
    append = events.append
    for i in range(0, 3 * count, 3):
        code, u_index, v_index = flat[i], flat[i + 1], flat[i + 2]
        if code >= len(kinds):
            raise ValueError(f"corrupt event frame: unknown kind code {code}")
        if u_index >= table_count:
            raise ValueError(
                f"corrupt event frame: vertex index {u_index} out of range"
            )
        if code in edge_codes:
            if v_index >= table_count:
                raise ValueError(
                    "corrupt event frame: edge event with missing or "
                    f"out-of-range endpoint index {v_index}"
                )
            append((kinds[code], vertices[u_index], vertices[v_index]))
        else:
            if v_index != no_vertex:
                raise ValueError(
                    "corrupt event frame: vertex event carries a second "
                    "endpoint"
                )
            append((kinds[code], vertices[u_index], None))
    return events
