"""Compact binary codec for raw event batches.

The multiprocess pipeline (:mod:`repro.core.pipeline`) ships event
batches from the parsing/routing stage to long-lived shard workers.
Pickling a list of per-event objects costs more than the clustering
work itself at high throughput, so batches travel as *frames*: a small
interned vertex table followed by the events as packed ``uint32``
triplets — one bulk :func:`struct.pack` call per frame, no per-event
object overhead on either side.

Frame layout (all integers little-endian)::

    u8   format version (1)
    u32  vertex-table entry count T
    T×   tagged entry:
           0x00  s64            — int vertex in the signed 64-bit range
           0x01  u32 len, utf-8 — string vertex
           0x02  u32 len, ascii — int vertex outside the 64-bit range
                                  (decimal digits)
    u32  event count N
    N×   u32 kind, u32 u_index, u32 v_index
         (v_index = 0xFFFFFFFF for vertex events)

Supported vertex types are ``int`` and ``str`` — exactly what the
stream readers in :mod:`repro.streams.io` produce. Anything else (and
``bool``, which would silently collapse into ``0``/``1``) raises
``TypeError`` at encode time. Table lookups are by equality, so every
*new* vertex value is type-checked as it is interned.

Round-trip is exact: ``decode_batch(encode_batch(events))`` returns the
same ``(kind, u, v)`` tuples, property-tested in
``tests/test_codec.py``. A corrupt or truncated frame raises
``ValueError`` from :func:`decode_batch`.

Delta frames (version 2)
------------------------
:class:`FrameEncoder` / :class:`FrameDecoder` implement the stateful
variant the persistent pipeline uses: the vertex table lives for the
*connection*, not the frame. Each frame ships only the entries the
receiver has not seen yet (``u32`` indexes address the cumulative
table), so a long-lived shard stops paying label bytes for its working
set almost immediately::

    u8   format version (2)
    u32  NEW vertex-table entry count T (appended to the table)
    T×   tagged entry (same tags as version 1)
    u32  event count N
    N×   u32 kind, u32 u_index, u32 v_index  (cumulative-table indexes)

The decoder additionally *interns* vertices straight into a
:class:`~repro.graph.intern.VertexInterner` — edge endpoints and
ADD_VERTEX labels are assigned dense ids at decode time, in exactly the
order the sequential batch path would assign them, so a pipeline worker
applies edge runs as already-interned id tuples with zero label
rehydration on its hot path (see
``StreamingGraphClusterer.apply_interned_many``).

:class:`DeltaBatchDecoder` is the interner-free sibling for consumers
that live *outside* a clusterer process — the streaming service
(:mod:`repro.serve`) decodes client frames at the socket boundary into
plain raw ``(kind, u, v)`` label tuples and only then routes them onto
a tenant session.

Columnar frames (version 3)
---------------------------
The batched kernels want arrays, not tuples. A version-3 frame carries
one maximal ``ADD_EDGE`` run in column layout against the same
cumulative vertex table the version-2 delta frames grow::

    u8   format version (3)
    u8   flags (bit 0: ALL_ADD — required; other bits reserved)
    u32  NEW vertex-table entry count T (appended to the table)
    T×   tagged entry (same tags as version 1)
    u32  event count N
    N×   u32 u_index   (one contiguous block)
    N×   u32 v_index   (one contiguous block)

Eight bytes per event instead of twelve (the kind word is implied by
the flag), and — decisively — the index blocks are ``np.frombuffer``
*views* over the receive buffer: decoding a frame is two views, one
vectorized gather through the cumulative label table, zero per-event
Python. Both stateful decoders dispatch on the version byte, so v2 and
v3 frames interleave freely on one connection; anything that is not an
all-int ``ADD_EDGE`` run (deletions, vertex events, self-loops kept
for error reporting) still travels as v2 tuples. Decoded columns come
back as :class:`~repro.streams.events.EventColumns` and keep the exact
apply-time semantics of the equivalent tuples (property-tested in
``tests/test_codec_columnar.py``). Without numpy the same frames decode
through a pure-``struct`` fallback, so the wire format never depends on
an optional import.

Wire layer
----------
The same frames also travel over sockets (:mod:`repro.serve`). The wire
layer below adds what a byte stream needs that a pipe does not: an
explicit **length prefix** per message and a **handshake** that pins the
protocol version and names the tenant before any frame is accepted::

    message   := u32 length | u8 opcode | payload        (length = 1 + len(payload))
    handshake := HELLO payload: 4-byte magic "RPRW", u8 wire version,
                 u16 tenant-id byte length, tenant id (utf-8)

:func:`pack_wire_message` / :func:`split_wire_message` and
:func:`encode_hello` / :func:`decode_hello` are transport-agnostic pure
byte functions; blocking and asyncio readers live in
:mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.streams.events import EventColumns, EventKind, RawEvent

try:  # numpy powers the vectorized columnar paths; pure-struct otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

__all__ = [
    "CODEC_VERSION",
    "COLUMNAR_CODEC_VERSION",
    "DELTA_CODEC_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_MAX_WIRE_BYTES",
    "DeltaBatchDecoder",
    "FrameDecoder",
    "FrameEncoder",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "decode_batch",
    "decode_hello",
    "encode_batch",
    "encode_batches",
    "encode_hello",
    "pack_wire_message",
    "split_wire_message",
    "wire_message_parts",
]

CODEC_VERSION = 1
DELTA_CODEC_VERSION = 2
COLUMNAR_CODEC_VERSION = 3

#: Version-3 flag bit: every event in the frame is an ``ADD_EDGE``.
#: The only flag this build defines — and it is mandatory, so a decoder
#: can reject frames claiming semantics it does not implement.
_COL_FLAG_ALL_ADD = 0x01

#: First bytes of every service handshake — lets a server refuse a
#: client speaking the wrong protocol before parsing anything else.
WIRE_MAGIC = b"RPRW"
WIRE_VERSION = 1

#: Default per-message ceiling a service enforces on the wire. Larger
#: than the pipe-frame default (a TCP client may batch aggressively)
#: but still small enough that one hostile length prefix cannot make
#: the server allocate gigabytes.
DEFAULT_MAX_WIRE_BYTES = 4 * 1024 * 1024

#: Default frame-size ceiling for :func:`encode_batches`. Frames are
#: also pipe messages, so keeping them well under the OS pipe buffer
#: lets the producer's ``send`` return without blocking on the worker.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_NO_VERTEX = 0xFFFFFFFF

# Event kinds are encoded positionally; the tuple below is the closed,
# ordered wire enumeration (a new kind must be appended, never inserted).
_KINDS: Tuple[EventKind, ...] = (
    EventKind.ADD_EDGE,
    EventKind.DELETE_EDGE,
    EventKind.ADD_VERTEX,
    EventKind.DELETE_VERTEX,
)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}
_EDGE_CODES = frozenset(
    (_KIND_CODE[EventKind.ADD_EDGE], _KIND_CODE[EventKind.DELETE_EDGE])
)

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_S64_ENTRY = struct.Struct("<bq")
_HEADER = struct.Struct("<BI")
_COL_HEADER = struct.Struct("<BBI")

#: HELLO kernel byte ↔ kernel name. Absent byte means "server default".
_KERNEL_CODES = {"scalar": 0, "numpy": 1}
_KERNEL_NAMES = {code: name for name, code in _KERNEL_CODES.items()}


def _encode_entry(vertex) -> bytes:
    """One tagged vertex-table entry; raises ``TypeError`` for vertex
    types the wire format has no representation for."""
    kind = type(vertex)
    if kind is int:
        if _INT64_MIN <= vertex <= _INT64_MAX:
            return _S64_ENTRY.pack(0, vertex)
        digits = str(vertex).encode("ascii")
        return b"\x02" + _U32.pack(len(digits)) + digits
    if kind is str:
        data = vertex.encode("utf-8")
        return b"\x01" + _U32.pack(len(data)) + data
    raise TypeError(
        f"codec supports int and str vertex ids, got {kind.__name__}: {vertex!r}"
    )


def _event_fields(event) -> Tuple[EventKind, object, object]:
    if type(event) is tuple:
        return event
    return event.kind, event.u, event.v


def encode_batch(events: Sequence) -> bytes:
    """Encode a batch of events (raw tuples or ``EdgeEvent``) as one frame."""
    table: dict = {}
    entries: List[bytes] = []
    flat: List[int] = []
    kind_code = _KIND_CODE
    no_vertex = _NO_VERTEX
    for event in events:
        kind, u, v = _event_fields(event)
        code = kind_code.get(kind)
        if code is None:
            raise ValueError(f"unknown event kind {kind!r}")
        u_index = table.get(u)
        if u_index is None:
            u_index = table[u] = len(entries)
            entries.append(_encode_entry(u))
        if v is None:
            v_index = no_vertex
        else:
            v_index = table.get(v)
            if v_index is None:
                v_index = table[v] = len(entries)
                entries.append(_encode_entry(v))
        flat.append(code)
        flat.append(u_index)
        flat.append(v_index)
    parts = [_HEADER.pack(CODEC_VERSION, len(entries))]
    parts.extend(entries)
    parts.append(_U32.pack(len(flat) // 3))
    parts.append(struct.pack(f"<{len(flat)}I", *flat))
    return b"".join(parts)


def encode_batches(
    events: Iterable, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Iterator[bytes]:
    """Encode events into one or more frames of at most ``max_bytes``.

    Splits greedily on exact size accounting (header + table entries +
    12 bytes per event). A single event whose vertex labels alone exceed
    ``max_bytes`` still gets its own (oversized) frame — the codec never
    drops or truncates an event. Yields nothing for an empty input.
    """
    if max_bytes <= 0:
        raise ValueError(f"max_bytes must be positive, got {max_bytes}")
    batch: List = []
    # Running frame size: 5-byte header + 4-byte event count so far.
    size = _HEADER.size + _U32.size
    seen: set = set()
    for event in events:
        _, u, v = _event_fields(event)
        added = 12  # one packed triplet
        if u not in seen:
            added += len(_encode_entry(u))
        if v is not None and v not in seen and v != u:
            added += len(_encode_entry(v))
        if batch and size + added > max_bytes:
            yield encode_batch(batch)
            batch = []
            seen = set()
            size = _HEADER.size + _U32.size
            added = 12 + len(_encode_entry(u))
            if v is not None and v != u:
                added += len(_encode_entry(v))
        batch.append(event)
        seen.add(u)
        if v is not None:
            seen.add(v)
        size += added
    if batch:
        yield encode_batch(batch)


def _decode_entries(data, offset: int, count: int, out: List[object]) -> int:
    """Parse ``count`` tagged vertex-table entries into ``out``.

    Shared by the stateless version-1 reader and the delta decoders;
    ``data`` is any bytes-like object (the wire readers hand in
    memoryviews over the receive buffer). Returns the offset past the
    last entry. Structural problems raise ``ValueError`` (callers add no
    further context — the messages are already frame-specific).
    """
    for _ in range(count):
        tag = data[offset]
        offset += 1
        if tag == 0:
            (value,) = struct.unpack_from("<q", data, offset)
            offset += 8
        elif tag in (1, 2):
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            raw = bytes(data[offset : offset + length])
            if len(raw) != length:
                raise ValueError("corrupt event frame: truncated vertex entry")
            offset += length
            if tag == 1:
                value = raw.decode("utf-8")
            else:
                try:
                    value = int(raw)
                except ValueError:
                    raise ValueError(
                        "corrupt event frame: malformed bigint entry"
                    ) from None
        else:
            raise ValueError(f"corrupt event frame: unknown vertex entry tag {tag}")
        out.append(value)
    return offset


def decode_batch(data: bytes) -> List[RawEvent]:
    """Decode one frame back into raw ``(kind, u, v)`` event tuples.

    Raises ``ValueError`` for anything structurally wrong: unknown
    format version, truncated data, out-of-range table indexes, or an
    edge event missing its second endpoint.
    """
    try:
        version, table_count = _HEADER.unpack_from(data, 0)
    except struct.error:
        raise ValueError("corrupt event frame: truncated header") from None
    if version != CODEC_VERSION:
        raise ValueError(
            f"corrupt event frame: unsupported codec version {version} "
            f"(this build reads {CODEC_VERSION})"
        )
    offset = _HEADER.size
    vertices: List[object] = []
    try:
        offset = _decode_entries(data, offset, table_count, vertices)
        (count,) = _U32.unpack_from(data, offset)
        offset += 4
        flat = struct.unpack_from(f"<{3 * count}I", data, offset)
    except (struct.error, IndexError, UnicodeDecodeError) as error:
        raise ValueError(f"corrupt event frame: {error}") from None
    if offset + 12 * count != len(data):
        raise ValueError(
            f"corrupt event frame: {len(data) - offset - 12 * count} "
            "trailing bytes"
        )
    kinds = _KINDS
    edge_codes = _EDGE_CODES
    no_vertex = _NO_VERTEX
    events: List[RawEvent] = []
    append = events.append
    for i in range(0, 3 * count, 3):
        code, u_index, v_index = flat[i], flat[i + 1], flat[i + 2]
        if code >= len(kinds):
            raise ValueError(f"corrupt event frame: unknown kind code {code}")
        if u_index >= table_count:
            raise ValueError(
                f"corrupt event frame: vertex index {u_index} out of range"
            )
        if code in edge_codes:
            if v_index >= table_count:
                raise ValueError(
                    "corrupt event frame: edge event with missing or "
                    f"out-of-range endpoint index {v_index}"
                )
            append((kinds[code], vertices[u_index], vertices[v_index]))
        else:
            if v_index != no_vertex:
                raise ValueError(
                    "corrupt event frame: vertex event carries a second "
                    "endpoint"
                )
            append((kinds[code], vertices[u_index], None))
    return events


class FrameEncoder:
    """Stateful version-2 frame writer (one per pipeline shard).

    The vertex table is cumulative: a label is shipped (as a tagged
    entry) in the first frame that mentions it and addressed by its
    ``u32`` table index forever after. The matching :class:`FrameDecoder`
    must be primed with the same base table (``table()`` snapshots it
    for checkpoint/respawn resynchronization).

    A failed :meth:`encode_batch` (unsupported vertex type, unknown
    kind) rolls the table back to its pre-call state, so the encoder
    stays in sync with the decoder even when the caller recovers from
    the error.
    """

    __slots__ = ("_index", "_labels")

    def __init__(self, labels: Optional[Iterable] = None) -> None:
        self._labels: List = []
        self._index: Dict = {}
        if labels is not None:
            for label in labels:
                if label in self._index:
                    raise ValueError(f"duplicate vertex-table label {label!r}")
                self._index[label] = len(self._labels)
                self._labels.append(label)

    @property
    def table_size(self) -> int:
        """Cumulative vertex-table entry count."""
        return len(self._labels)

    def table(self) -> List:
        """Copy of the cumulative label table, in index order."""
        return list(self._labels)

    def encode_batch(self, events: Sequence) -> bytes:
        """Encode a batch as one delta frame, growing the table."""
        index = self._index
        labels = self._labels
        staged: List = []  # labels added by this frame (rolled back on error)
        entries: List[bytes] = []
        flat: List[int] = []
        kind_code = _KIND_CODE
        no_vertex = _NO_VERTEX
        try:
            for event in events:
                kind, u, v = _event_fields(event)
                code = kind_code.get(kind)
                if code is None:
                    raise ValueError(f"unknown event kind {kind!r}")
                u_index = index.get(u)
                if u_index is None:
                    entry = _encode_entry(u)
                    u_index = index[u] = len(labels)
                    labels.append(u)
                    staged.append(u)
                    entries.append(entry)
                if v is None:
                    v_index = no_vertex
                else:
                    v_index = index.get(v)
                    if v_index is None:
                        entry = _encode_entry(v)
                        v_index = index[v] = len(labels)
                        labels.append(v)
                        staged.append(v)
                        entries.append(entry)
                flat.append(code)
                flat.append(u_index)
                flat.append(v_index)
        except Exception:
            for label in reversed(staged):
                del index[label]
                labels.pop()
            raise
        parts = [_HEADER.pack(DELTA_CODEC_VERSION, len(entries))]
        parts.extend(entries)
        parts.append(_U32.pack(len(flat) // 3))
        parts.append(struct.pack(f"<{len(flat)}I", *flat))
        return b"".join(parts)

    def encode_batches(
        self, events: Iterable, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> Iterator[bytes]:
        """Delta-frame counterpart of :func:`encode_batches`.

        Size accounting charges a label's entry bytes only the first
        time the *connection* (not the frame) mentions it, so a warm
        table packs far more events per frame.
        """
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        index = self._index
        batch: List = []
        size = _HEADER.size + _U32.size
        pending: set = set()  # labels new in the current, uncommitted batch
        for event in events:
            _, u, v = _event_fields(event)
            added = 12  # one packed triplet
            if u not in index and u not in pending:
                added += len(_encode_entry(u))
            if v is not None and v != u and v not in index and v not in pending:
                added += len(_encode_entry(v))
            if batch and size + added > max_bytes:
                yield self.encode_batch(batch)
                batch = []
                pending = set()
                size = _HEADER.size + _U32.size
                added = 12
                if u not in index:
                    added += len(_encode_entry(u))
                if v is not None and v != u and v not in index:
                    added += len(_encode_entry(v))
            batch.append(event)
            pending.add(u)
            if v is not None:
                pending.add(v)
            size += added
        if batch:
            yield self.encode_batch(batch)

    def encode_columns(
        self,
        us: Sequence,
        vs: Sequence,
        *,
        max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> Iterator[bytes]:
        """Encode an all-``ADD_EDGE`` run as version-3 columnar frames.

        ``us``/``vs`` are parallel endpoint columns (lists or numpy
        arrays); every event is an ``ADD_EDGE``, so no kind column
        travels. All-int columns take a fully vectorized path
        (``np.unique`` for first mentions, one bulk index pack); other
        label types fall back to a per-event encoder with the same
        rollback-on-error contract as :meth:`encode_batch`. Frames split
        at ``max_bytes`` on exact size accounting, like
        :meth:`encode_batches`.
        """
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        n = len(us)
        if len(vs) != n:
            raise ValueError(
                f"column length mismatch: {n} u labels, {len(vs)} v labels"
            )
        if not n:
            return
        if _np is not None:
            au = av = None
            if isinstance(us, _np.ndarray) and isinstance(vs, _np.ndarray):
                if us.dtype.kind == "i" and vs.dtype.kind == "i":
                    au = us.astype(_np.int64, copy=False)
                    av = vs.astype(_np.int64, copy=False)
            elif set(map(type, us)) == {int} and set(map(type, vs)) == {int}:
                try:
                    au = _np.array(us, dtype=_np.int64)
                    av = _np.array(vs, dtype=_np.int64)
                except (OverflowError, ValueError):
                    au = av = None  # bigint labels: generic path
            if au is not None:
                yield from self._encode_columns_int(au, av, max_bytes)
                return
        yield from self._encode_columns_generic(list(us), list(vs), max_bytes)

    def _encode_columns_int(self, au, av, max_bytes: int) -> Iterator[bytes]:
        """Vectorized columnar encode for in-range int64 label arrays."""
        index = self._index
        labels = self._labels
        worklist = [(au, av)]
        while worklist:
            au, av = worklist.pop()
            n = int(au.size)
            # One pass over the interleaved label stream gives both the
            # distinct labels and the per-event positions into them.
            flat = _np.empty(2 * n, dtype=_np.int64)
            flat[0::2] = au
            flat[1::2] = av
            uniq, inverse = _np.unique(flat, return_inverse=True)
            uniq_labels = uniq.tolist()
            uniq_ids = _np.empty(len(uniq_labels), dtype=_np.int64)
            new_positions: List[int] = []
            for pos, label in enumerate(uniq_labels):
                known = index.get(label)
                if known is None:
                    new_positions.append(pos)
                else:
                    uniq_ids[pos] = known
            # int64 labels always pack as 9-byte s64 entries.
            size = (
                _COL_HEADER.size
                + 9 * len(new_positions)
                + _U32.size
                + 8 * n
            )
            if size > max_bytes and n > 1:
                half = n // 2
                worklist.append((au[half:], av[half:]))
                worklist.append((au[:half], av[:half]))
                continue
            entries: List[bytes] = []
            for pos in new_positions:
                label = uniq_labels[pos]
                uniq_ids[pos] = index[label] = len(labels)
                labels.append(label)
                entries.append(_S64_ENTRY.pack(0, label))
            ids_flat = uniq_ids[inverse.reshape(-1)]
            parts = [
                _COL_HEADER.pack(
                    COLUMNAR_CODEC_VERSION, _COL_FLAG_ALL_ADD, len(entries)
                )
            ]
            parts.extend(entries)
            parts.append(_U32.pack(n))
            parts.append(ids_flat[0::2].astype("<u4").tobytes())
            parts.append(ids_flat[1::2].astype("<u4").tobytes())
            yield b"".join(parts)

    def _encode_columns_generic(
        self, us: List, vs: List, max_bytes: int
    ) -> Iterator[bytes]:
        """Per-event columnar encode for str/bigint (or mixed) labels."""
        index = self._index
        labels = self._labels
        n = len(us)
        start = 0
        while start < n:
            staged: List = []
            entries: List[bytes] = []
            u_indexes: List[int] = []
            v_indexes: List[int] = []
            size = _COL_HEADER.size + _U32.size
            i = start
            try:
                while i < n:
                    u = us[i]
                    v = vs[i]
                    added = 8  # one u32 per index block
                    u_index = index.get(u)
                    u_entry = v_entry = None
                    if u_index is None:
                        u_entry = _encode_entry(u)
                        added += len(u_entry)
                    if v == u and type(v) is type(u):
                        v_index = u_index
                    else:
                        v_index = index.get(v)
                        if v_index is None:
                            v_entry = _encode_entry(v)
                            added += len(v_entry)
                    if u_indexes and size + added > max_bytes:
                        break  # frame full; event restarts the next one
                    if u_index is None:
                        u_index = index[u] = len(labels)
                        labels.append(u)
                        staged.append(u)
                        entries.append(u_entry)
                        if v_entry is None and v_index is None:
                            v_index = u_index  # v == u, committed above
                    if v_index is None:
                        v_index = index[v] = len(labels)
                        labels.append(v)
                        staged.append(v)
                        entries.append(v_entry)
                    u_indexes.append(u_index)
                    v_indexes.append(v_index)
                    size += added
                    i += 1
            except Exception:
                for label in reversed(staged):
                    del index[label]
                    labels.pop()
                raise
            count = len(u_indexes)
            parts = [
                _COL_HEADER.pack(
                    COLUMNAR_CODEC_VERSION, _COL_FLAG_ALL_ADD, len(entries)
                )
            ]
            parts.extend(entries)
            parts.append(_U32.pack(count))
            parts.append(struct.pack(f"<{count}I", *u_indexes))
            parts.append(struct.pack(f"<{count}I", *v_indexes))
            yield b"".join(parts)
            start = i


class _ColumnarDecodeMixin:
    """Version-3 columnar decode shared by the stateful frame readers.

    Grows the same cumulative ``_labels`` table the version-2 path
    grows, so v2 and v3 frames interleave freely on one connection. The
    hot path keeps a lazily grown ``int64`` mirror of the label table;
    as long as every label is an in-range int (the overwhelmingly common
    case) the endpoint columns decode as two ``np.frombuffer`` views
    plus one vectorized gather. The first non-int label permanently
    drops the connection to a list gather — still columnar, just not
    array-backed.
    """

    __slots__ = ()

    def _init_column_cache(self) -> None:
        self._table_arr = None  # cached int64 mirror of _labels
        self._table_mirrored = 0  # labels mirrored so far
        self._table_all_int = True

    def _register_fresh(self, fresh: List[object]) -> None:
        self._labels.extend(fresh)

    def _sync_table_array(self) -> bool:
        """Mirror new labels into the int64 cache; False once any label
        cannot live in an int64 array (vector gather no longer valid)."""
        labels = self._labels
        n = len(labels)
        start = self._table_mirrored
        if start == n:
            return self._table_all_int
        self._table_mirrored = n
        if not self._table_all_int:
            return False
        arr = self._table_arr
        if arr is None or arr.size < n:
            capacity = 256 if arr is None else arr.size
            while capacity < n:
                capacity *= 2
            grown = _np.empty(capacity, dtype=_np.int64)
            if arr is not None and start:
                grown[:start] = arr[:start]
            self._table_arr = arr = grown
        for i in range(start, n):
            label = labels[i]
            if type(label) is int and _INT64_MIN <= label <= _INT64_MAX:
                arr[i] = label
            else:
                self._table_all_int = False
                return False
        return True

    def _decode_columns(self, data) -> EventColumns:
        """Decode one version-3 frame into ``EventColumns`` (table grows)."""
        try:
            _, flags, new_count = _COL_HEADER.unpack_from(data, 0)
        except struct.error:
            raise ValueError("corrupt event frame: truncated header") from None
        if flags != _COL_FLAG_ALL_ADD:
            raise ValueError(
                f"corrupt event frame: unsupported columnar flags 0x{flags:02x}"
            )
        offset = _COL_HEADER.size
        fresh: List[object] = []
        try:
            offset = _decode_entries(data, offset, new_count, fresh)
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
        except (struct.error, IndexError, UnicodeDecodeError) as error:
            raise ValueError(f"corrupt event frame: {error}") from None
        if offset + 8 * count != len(data):
            raise ValueError(
                f"corrupt event frame: {len(data) - offset - 8 * count} "
                "trailing bytes"
            )
        self._register_fresh(fresh)
        table_count = len(self._labels)
        if not count:
            return EventColumns(us=[], vs=[])
        if _np is not None:
            u_idx = _np.frombuffer(data, dtype="<u4", count=count, offset=offset)
            v_idx = _np.frombuffer(
                data, dtype="<u4", count=count, offset=offset + 4 * count
            )
            if int(u_idx.max()) >= table_count or int(v_idx.max()) >= table_count:
                raise ValueError(
                    "corrupt event frame: vertex index out of range"
                )
            if self._sync_table_array():
                table = self._table_arr
                return EventColumns(us=table[u_idx], vs=table[v_idx])
            labels = self._labels
            us = [labels[i] for i in u_idx.tolist()]
            vs = [labels[i] for i in v_idx.tolist()]
            return EventColumns(us=us, vs=vs)
        u_idx = struct.unpack_from(f"<{count}I", data, offset)
        v_idx = struct.unpack_from(f"<{count}I", data, offset + 4 * count)
        if max(u_idx) >= table_count or max(v_idx) >= table_count:
            raise ValueError("corrupt event frame: vertex index out of range")
        labels = self._labels
        return EventColumns(
            us=[labels[i] for i in u_idx],
            vs=[labels[i] for i in v_idx],
        )


class FrameDecoder(_ColumnarDecodeMixin):
    """Stateful version-2 frame reader (one per pipeline worker).

    Mirrors a :class:`FrameEncoder`'s cumulative table and *interns*
    vertices into the worker clusterer's
    :class:`~repro.graph.intern.VertexInterner` at decode time.

    :meth:`decode` returns *segments*: maximal runs of edge events as
    lists of already-interned ``(kind, uid, vid)`` id tuples — fed
    straight to ``StreamingGraphClusterer.apply_interned_many`` with
    zero label rehydration — interleaved with single label-space
    ``(kind, u, None)``/``(kind, u, v)`` tuples for everything that must
    take the per-event path: vertex events, plus self-loop edge events,
    which the decoder deliberately leaves uninterned so the per-event
    path rejects them exactly as sequential ingestion would.

    Intern order follows the sequential contract — walking the frame's
    events in order, edge endpoints intern in label-canonical order and
    ADD_VERTEX labels intern on sight (DELETE_VERTEX never interns) —
    so a worker's intern table, and therefore its checkpoint bytes, are
    identical to what the same shard stream would build inline.
    """

    __slots__ = (
        "_interner",
        "_labels",
        "_ids",
        "_table_arr",
        "_table_mirrored",
        "_table_all_int",
    )

    def __init__(self, interner, labels: Optional[Iterable] = None) -> None:
        self._interner = interner
        self._labels: List = []
        self._ids: List[int] = []  # parallel to _labels; -1 = not interned yet
        self._init_column_cache()
        if labels is not None:
            self._labels.extend(labels)
            self._ids.extend([-1] * len(self._labels))

    @property
    def table_size(self) -> int:
        """Cumulative vertex-table entry count."""
        return len(self._labels)

    def _register_fresh(self, fresh: List[object]) -> None:
        self._labels.extend(fresh)
        self._ids.extend([-1] * len(fresh))

    def decode(self, data) -> List:
        """Decode one delta frame into apply-ready segments.

        A version-3 columnar frame decodes to a single
        :class:`EventColumns` segment (the worker clusterer's batch
        kernel interns those itself); version-2 frames decode to the
        interned-run/label-tuple segments described above.
        """
        if len(data) and data[0] == COLUMNAR_CODEC_VERSION:
            return [self._decode_columns(data)]
        try:
            version, new_count = _HEADER.unpack_from(data, 0)
        except struct.error:
            raise ValueError("corrupt event frame: truncated header") from None
        if version != DELTA_CODEC_VERSION:
            raise ValueError(
                f"corrupt event frame: unsupported delta codec version "
                f"{version} (this decoder reads {DELTA_CODEC_VERSION})"
            )
        labels = self._labels
        ids = self._ids
        offset = _HEADER.size
        fresh: List[object] = []
        try:
            offset = _decode_entries(data, offset, new_count, fresh)
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            flat = struct.unpack_from(f"<{3 * count}I", data, offset)
        except (struct.error, IndexError, UnicodeDecodeError) as error:
            raise ValueError(f"corrupt event frame: {error}") from None
        if offset + 12 * count != len(data):
            raise ValueError(
                f"corrupt event frame: {len(data) - offset - 12 * count} "
                "trailing bytes"
            )
        labels.extend(fresh)
        ids.extend([-1] * len(fresh))
        table_count = len(labels)
        intern = self._interner.intern
        kinds = _KINDS
        edge_codes = _EDGE_CODES
        no_vertex = _NO_VERTEX
        add_vertex = EventKind.ADD_VERTEX
        segments: List = []
        run: List[Tuple[EventKind, int, int]] = []
        for i in range(0, 3 * count, 3):
            code, u_index, v_index = flat[i], flat[i + 1], flat[i + 2]
            if code >= len(kinds):
                raise ValueError(f"corrupt event frame: unknown kind code {code}")
            if u_index >= table_count:
                raise ValueError(
                    f"corrupt event frame: vertex index {u_index} out of range"
                )
            if code in edge_codes:
                if v_index >= table_count:
                    raise ValueError(
                        "corrupt event frame: edge event with missing or "
                        f"out-of-range endpoint index {v_index}"
                    )
                u = labels[u_index]
                v = labels[v_index]
                if u == v:
                    # Self-loop: emit label-space; the per-event path
                    # raises the canonical ValueError at the right
                    # stream position, and nothing is interned.
                    if run:
                        segments.append(run)
                        run = []
                    segments.append((kinds[code], u, v))
                    continue
                try:
                    swap = v < u
                except TypeError:
                    swap = repr(v) < repr(u)
                if swap:
                    u_index, v_index = v_index, u_index
                    u, v = v, u
                uid = ids[u_index]
                if uid < 0:
                    uid = ids[u_index] = intern(u)
                vid = ids[v_index]
                if vid < 0:
                    vid = ids[v_index] = intern(v)
                run.append((kinds[code], uid, vid))
                continue
            if v_index != no_vertex:
                raise ValueError(
                    "corrupt event frame: vertex event carries a second "
                    "endpoint"
                )
            if run:
                segments.append(run)
                run = []
            kind = kinds[code]
            label = labels[u_index]
            if kind is add_vertex and ids[u_index] < 0:
                ids[u_index] = intern(label)
            segments.append((kind, label, None))
        if run:
            segments.append(run)
        return segments


class DeltaBatchDecoder(_ColumnarDecodeMixin):
    """Stateful version-2/3 frame reader that yields raw label batches.

    The interner-free counterpart of :class:`FrameDecoder`: it mirrors a
    :class:`FrameEncoder`'s cumulative vertex table but performs no
    interning and no segmentation — :meth:`decode` returns a version-2
    frame's events as plain ``(kind, u, v)`` label tuples, exactly what
    ``StreamingGraphClusterer.apply_many`` ingests, and a version-3
    columnar frame as one :class:`EventColumns` batch (``apply_many``
    takes either). The streaming service decodes client frames with one
    of these per connection, so the session layer never sees wire bytes.
    """

    __slots__ = ("_labels", "_table_arr", "_table_mirrored", "_table_all_int")

    def __init__(self, labels: Optional[Iterable] = None) -> None:
        self._labels: List = list(labels) if labels is not None else []
        self._init_column_cache()

    @property
    def table_size(self) -> int:
        """Cumulative vertex-table entry count."""
        return len(self._labels)

    def decode(self, data) -> Union[List[RawEvent], EventColumns]:
        """Decode one delta frame (table grows)."""
        if len(data) and data[0] == COLUMNAR_CODEC_VERSION:
            return self._decode_columns(data)
        try:
            version, new_count = _HEADER.unpack_from(data, 0)
        except struct.error:
            raise ValueError("corrupt event frame: truncated header") from None
        if version != DELTA_CODEC_VERSION:
            raise ValueError(
                f"corrupt event frame: unsupported delta codec version "
                f"{version} (this decoder reads {DELTA_CODEC_VERSION})"
            )
        labels = self._labels
        offset = _HEADER.size
        fresh: List[object] = []
        try:
            offset = _decode_entries(data, offset, new_count, fresh)
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            flat = struct.unpack_from(f"<{3 * count}I", data, offset)
        except (struct.error, IndexError, UnicodeDecodeError) as error:
            raise ValueError(f"corrupt event frame: {error}") from None
        if offset + 12 * count != len(data):
            raise ValueError(
                f"corrupt event frame: {len(data) - offset - 12 * count} "
                "trailing bytes"
            )
        labels.extend(fresh)
        table_count = len(labels)
        kinds = _KINDS
        edge_codes = _EDGE_CODES
        no_vertex = _NO_VERTEX
        events: List[RawEvent] = []
        append = events.append
        for i in range(0, 3 * count, 3):
            code, u_index, v_index = flat[i], flat[i + 1], flat[i + 2]
            if code >= len(kinds):
                raise ValueError(f"corrupt event frame: unknown kind code {code}")
            if u_index >= table_count:
                raise ValueError(
                    f"corrupt event frame: vertex index {u_index} out of range"
                )
            if code in edge_codes:
                if v_index >= table_count:
                    raise ValueError(
                        "corrupt event frame: edge event with missing or "
                        f"out-of-range endpoint index {v_index}"
                    )
                append((kinds[code], labels[u_index], labels[v_index]))
            else:
                if v_index != no_vertex:
                    raise ValueError(
                        "corrupt event frame: vertex event carries a second "
                        "endpoint"
                    )
                append((kinds[code], labels[u_index], None))
        return events


# ----------------------------------------------------------------------
# Wire layer (length-prefixed messages + handshake)
# ----------------------------------------------------------------------
def pack_wire_message(op: bytes, payload: bytes = b"") -> bytes:
    """One length-prefixed wire message: ``u32 length | op | payload``.

    ``op`` must be a single byte; the length counts the opcode plus the
    payload, so a reader can bound its allocation before reading either.
    """
    if len(op) != 1:
        raise ValueError(f"wire opcode must be a single byte, got {op!r}")
    return _U32.pack(1 + len(payload)) + op + payload


def wire_message_parts(op: bytes, payload: bytes = b"") -> Tuple[bytes, bytes]:
    """:func:`pack_wire_message` in scatter-gather form.

    Returns ``(prefix, payload)`` where the prefix is the length word
    plus the opcode. Callers hand both parts to ``writelines`` /
    ``sendmsg`` so a large payload is never copied into a fresh
    contiguous message buffer just to prepend five bytes.
    """
    if len(op) != 1:
        raise ValueError(f"wire opcode must be a single byte, got {op!r}")
    return _U32.pack(1 + len(payload)) + op, payload


def split_wire_message(body) -> Tuple[bytes, memoryview]:
    """Split a received message body into ``(opcode, payload)``.

    ``body`` is everything after the length prefix. The payload comes
    back as a memoryview over ``body`` — frame decoders and
    ``np.frombuffer`` consume it without another copy of the receive
    buffer. An empty body is a framing error (the length prefix promised
    at least the opcode).
    """
    if not len(body):
        raise ValueError("corrupt wire message: empty body")
    view = memoryview(body)
    return bytes(view[:1]), view[1:]


def encode_hello(tenant_id: str, kernel: Optional[str] = None) -> bytes:
    """The HELLO handshake payload naming ``tenant_id``.

    ``kernel`` (``"scalar"`` / ``"numpy"``) appends the optional kernel
    byte declaring which batch kernel the tenant's session must run;
    ``None`` omits the byte and leaves the choice to the server default.
    Old servers reject the extra byte cleanly (length mismatch), old
    clients never send it — the handshake stays wire-version 1.
    """
    raw = tenant_id.encode("utf-8")
    if not raw or len(raw) > 0xFFFF:
        raise ValueError(
            f"tenant id must encode to 1..65535 utf-8 bytes, got {len(raw)}"
        )
    head = WIRE_MAGIC + bytes((WIRE_VERSION,)) + _U16.pack(len(raw)) + raw
    if kernel is None:
        return head
    code = _KERNEL_CODES.get(kernel)
    if code is None:
        raise ValueError(
            f"unknown kernel {kernel!r} (expected one of "
            f"{sorted(_KERNEL_CODES)})"
        )
    return head + bytes((code,))


def decode_hello(payload) -> Tuple[str, Optional[str]]:
    """Validate a HELLO payload; returns ``(tenant_id, kernel)``.

    ``kernel`` is ``None`` when the client left the choice to the
    server. Raises ``ValueError`` for a wrong magic, an unsupported wire
    version, a malformed/truncated tenant id, or an unknown kernel code
    — the server rejects the connection before touching any session
    state.
    """
    prefix = len(WIRE_MAGIC)
    if payload[:prefix] != WIRE_MAGIC:
        raise ValueError(
            f"bad handshake: expected magic {WIRE_MAGIC!r}, "
            f"got {bytes(payload[:prefix])!r}"
        )
    if len(payload) < prefix + 3:
        raise ValueError("bad handshake: truncated header")
    version = payload[prefix]
    if version != WIRE_VERSION:
        raise ValueError(
            f"bad handshake: unsupported wire version {version} "
            f"(this build speaks {WIRE_VERSION})"
        )
    (length,) = _U16.unpack_from(payload, prefix + 1)
    raw = payload[prefix + 3 : prefix + 3 + length]
    trailer = payload[prefix + 3 + length :]
    if len(raw) != length or not length or len(trailer) > 1:
        raise ValueError(
            f"bad handshake: tenant id length {length} does not match "
            f"{len(payload) - prefix - 3} payload bytes"
        )
    kernel = None
    if len(trailer):
        kernel = _KERNEL_NAMES.get(trailer[0])
        if kernel is None:
            raise ValueError(
                f"bad handshake: unknown kernel code {trailer[0]}"
            )
    try:
        return bytes(raw).decode("utf-8"), kernel
    except UnicodeDecodeError:
        raise ValueError("bad handshake: tenant id is not valid utf-8") from None
