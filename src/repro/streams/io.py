"""Reading and writing edge lists and event streams.

Formats
-------
*Edge list* — one edge per line, two whitespace-separated vertex ids;
``#`` comments and blank lines ignored (the SNAP convention).

*Event stream* — one event per line::

    + u v      # add edge
    - u v      # delete edge
    +v u       # add vertex
    -v u       # delete vertex

Vertex ids are parsed as ints when possible, kept as strings otherwise.

Error handling mirrors the clusterer's ``strict`` semantics: by default
a malformed line raises :class:`~repro.errors.StreamError` with
``file:line`` context; with ``strict=False`` malformed lines are skipped
and (optionally) collected, so a long ingest survives a few bad records.

Self-loop policy
----------------
The clustering model has no use for self-loops (an edge cannot merge a
vertex with itself), so a self-loop line is *malformed input*, exactly
like a line with too few fields: every reader in this module —
:func:`read_edge_list`, :func:`read_event_stream`,
:func:`read_event_stream_raw` — raises :class:`StreamError` on one when
``strict`` and skips/collects it when not. No reader drops self-loops
silently; a clean run means the input contained none.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import StreamError
from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventColumns,
    EventKind,
    RawEvent,
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
)

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_event_stream",
    "read_event_stream_raw",
    "read_event_batches",
    "read_event_columns",
    "write_event_stream",
]

PathOrFile = Union[str, Path, TextIO]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _source_name(source: PathOrFile) -> str:
    if isinstance(source, (str, Path)):
        return str(source)
    return getattr(source, "name", "<stream>")


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(
    source: PathOrFile,
    *,
    strict: bool = True,
    errors: Optional[List[str]] = None,
) -> List[Edge]:
    """Parse an edge-list file; skips comments and blank lines.

    A malformed line — too few fields, or a self-loop (see the module
    docstring) — raises :class:`StreamError` with ``file:line`` context
    when ``strict`` (the default). With ``strict=False`` it is skipped
    instead; pass a list as ``errors`` to collect one message per
    skipped line (``len(errors)`` is the malformed-line count).
    """
    name = _source_name(source)
    handle, owned = _open_for_read(source)
    try:
        edges: List[Edge] = []
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                message = f"{name}:{line_number}: expected two vertex ids: {stripped!r}"
            else:
                u, v = _parse_vertex(parts[0]), _parse_vertex(parts[1])
                if u != v:
                    edges.append((u, v))
                    continue
                message = (
                    f"{name}:{line_number}: self-loop edges are not "
                    f"allowed: ({u!r}, {v!r})"
                )
            if strict:
                raise StreamError(message)
            if errors is not None:
                errors.append(message)
        return edges
    finally:
        if owned:
            handle.close()


def write_edge_list(edges: Iterable[Edge], target: PathOrFile) -> int:
    """Write edges one per line; returns the number written."""
    handle, owned = _open_for_write(target)
    try:
        count = 0
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
        return count
    finally:
        if owned:
            handle.close()


_EVENT_PREFIX = {
    EventKind.ADD_EDGE: "+",
    EventKind.DELETE_EDGE: "-",
    EventKind.ADD_VERTEX: "+v",
    EventKind.DELETE_VERTEX: "-v",
}


def write_event_stream(events: Iterable[EdgeEvent], target: PathOrFile) -> int:
    """Serialize an event stream; returns the number of events written."""
    handle, owned = _open_for_write(target)
    try:
        count = 0
        for event in events:
            prefix = _EVENT_PREFIX[event.kind]
            if event.is_edge_event:
                handle.write(f"{prefix} {event.u} {event.v}\n")
            else:
                handle.write(f"{prefix} {event.u}\n")
            count += 1
        return count
    finally:
        if owned:
            handle.close()


def read_event_stream(
    source: PathOrFile,
    *,
    strict: bool = True,
    errors: Optional[List[str]] = None,
) -> Iterator[EdgeEvent]:
    """Parse an event-stream file lazily (one event per line).

    A malformed line raises :class:`StreamError` with ``file:line``
    context when ``strict`` (the default). With ``strict=False`` it is
    skipped instead; pass a list as ``errors`` to collect one message
    per skipped line — mirroring the clusterer's own ``strict`` knob, so
    a long-running ingest can tolerate occasional bad records.
    """
    name = _source_name(source)
    handle, owned = _open_for_read(source)
    try:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            op = parts[0]
            try:
                if op == "+" and len(parts) == 3:
                    yield add_edge(_parse_vertex(parts[1]), _parse_vertex(parts[2]))
                elif op == "-" and len(parts) == 3:
                    yield delete_edge(_parse_vertex(parts[1]), _parse_vertex(parts[2]))
                elif op == "+v" and len(parts) == 2:
                    yield add_vertex(_parse_vertex(parts[1]))
                elif op == "-v" and len(parts) == 2:
                    yield delete_vertex(_parse_vertex(parts[1]))
                else:
                    raise ValueError(f"unrecognized event syntax: {stripped!r}")
            except ValueError as error:
                message = f"{name}:{line_number}: {error}"
                if strict:
                    raise StreamError(message) from None
                if errors is not None:
                    errors.append(message)
    finally:
        if owned:
            handle.close()


_RAW_KIND = {
    "+": EventKind.ADD_EDGE,
    "-": EventKind.DELETE_EDGE,
    "+v": EventKind.ADD_VERTEX,
    "-v": EventKind.DELETE_VERTEX,
}


#: Token-cache bound for ``intern=True`` readers: caps parser memory on
#: adversarial streams where every token is distinct (the cache restarts
#: once this many distinct tokens have been seen).
_INTERN_CACHE_LIMIT = 1 << 20


def read_event_stream_raw(
    source: PathOrFile,
    *,
    strict: bool = True,
    errors: Optional[List[str]] = None,
    intern: bool = False,
) -> Iterator[RawEvent]:
    """:func:`read_event_stream` yielding raw ``(kind, u, v)`` tuples.

    The single-pass parse skips :class:`EdgeEvent` construction (and its
    per-event canonicalization) entirely — the batched ingestion path
    (``apply_many``) canonicalizes in bulk. Errors carry the same
    ``file:line`` context as :func:`read_event_stream`, including
    self-loop edges, which the :class:`EdgeEvent` constructor would have
    rejected and are therefore still reported here rather than deep in
    the clusterer.

    ``intern=True`` caches parsed vertex tokens, so a token seen before
    skips re-parsing and repeated occurrences share one object. Values
    are identical either way — this only trades a bounded dict (cleared
    after ``2**20`` distinct tokens) for parse time, which pays off on
    real streams where each vertex id recurs many times. The pipeline
    producer (:mod:`repro.core.pipeline`) reads with it on.
    """
    name = _source_name(source)
    handle, owned = _open_for_read(source)
    raw_kind = _RAW_KIND
    add_edge_kind = EventKind.ADD_EDGE
    delete_edge_kind = EventKind.DELETE_EDGE
    cache: Optional[dict] = {} if intern else None
    try:
        for line_number, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            kind = raw_kind.get(parts[0])
            if kind is add_edge_kind or kind is delete_edge_kind:
                if len(parts) == 3:
                    if cache is None:
                        u = _parse_vertex(parts[1])
                        v = _parse_vertex(parts[2])
                    else:
                        token = parts[1]
                        u = cache.get(token)
                        if u is None:
                            u = cache[token] = _parse_vertex(token)
                        token = parts[2]
                        v = cache.get(token)
                        if v is None:
                            v = cache[token] = _parse_vertex(token)
                        if len(cache) > _INTERN_CACHE_LIMIT:
                            cache = {}
                    if u != v:
                        yield (kind, u, v)
                        continue
                    message = (
                        f"{name}:{line_number}: self-loop edges are not "
                        f"allowed: ({u!r}, {v!r})"
                    )
                else:
                    message = (
                        f"{name}:{line_number}: unrecognized event syntax: "
                        f"{line.strip()!r}"
                    )
            elif kind is not None and len(parts) == 2:
                # Vertex events are rare relative to edges; not cached.
                yield (kind, _parse_vertex(parts[1]), None)
                continue
            else:
                message = (
                    f"{name}:{line_number}: unrecognized event syntax: "
                    f"{line.strip()!r}"
                )
            if strict:
                raise StreamError(message)
            if errors is not None:
                errors.append(message)
    finally:
        if owned:
            handle.close()


def read_event_batches(
    source: PathOrFile,
    batch_size: int,
    *,
    strict: bool = True,
    errors: Optional[List[str]] = None,
    intern: bool = False,
) -> Iterator[List[RawEvent]]:
    """Read an event stream as batches of raw tuples.

    Groups :func:`read_event_stream_raw` output into lists of up to
    ``batch_size`` events, sized for ``apply_many``. The final batch may
    be shorter; empty streams yield nothing. ``intern`` is forwarded to
    the raw reader (cache parsed vertex tokens).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: List[RawEvent] = []
    append = batch.append
    for event in read_event_stream_raw(
        source, strict=strict, errors=errors, intern=intern
    ):
        append(event)
        if len(batch) == batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def read_event_columns(
    source: PathOrFile,
    batch_size: int,
    *,
    strict: bool = True,
    errors: Optional[List[str]] = None,
    intern: bool = False,
) -> Iterator[EventColumns]:
    """Read an event stream as :class:`EventColumns` batches.

    Column (struct-of-arrays) counterpart of :func:`read_event_batches`,
    sized for the numpy batch kernel: a batch that is ``ADD_EDGE``
    throughout is emitted with ``kinds=None``, which ``apply_many``
    vectorizes as a single run without inspecting per-event kinds.
    Mixed batches carry their kind column and are segmented by the
    kernel. Parsing, error handling, and ``intern`` are exactly
    :func:`read_event_stream_raw`'s.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    add_edge = EventKind.ADD_EDGE
    kinds: list = []
    us: list = []
    vs: list = []
    all_add = True
    for kind, u, v in read_event_stream_raw(
        source, strict=strict, errors=errors, intern=intern
    ):
        kinds.append(kind)
        us.append(u)
        vs.append(v)
        if kind is not add_edge:
            all_add = False
        if len(us) == batch_size:
            yield EventColumns(us=us, vs=vs, kinds=None if all_add else kinds)
            kinds, us, vs = [], [], []
            all_add = True
    if us:
        yield EventColumns(us=us, vs=vs, kinds=None if all_add else kinds)
