"""Streaming-graph event model, generators, orders, and I/O."""

from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventColumns,
    EventKind,
    RawEvent,
    Vertex,
    add_edge,
    add_vertex,
    canonical_edge,
    count_kinds,
    delete_edge,
    delete_vertex,
    events_from_edges,
)
from repro.streams.codec import (
    decode_batch,
    encode_batch,
    encode_batches,
)
from repro.streams.generators import (
    DriftPhase,
    PlantedPartitionGraph,
    drifting_sbm_stream,
    erdos_renyi_edges,
    planted_partition,
    sbm_stream,
)
from repro.streams.io import (
    read_edge_list,
    read_event_batches,
    read_event_columns,
    read_event_stream,
    read_event_stream_raw,
    write_edge_list,
    write_event_stream,
)
from repro.streams.lfr import LFRGraph, lfr_graph, power_law_sequence
from repro.streams.rmat import rmat_edges
from repro.streams.timestamped import (
    TimestampedEvent,
    validate_timestamps,
    with_poisson_timestamps,
)
from repro.streams.order import (
    adversarial_bridge_first,
    insert_delete_stream,
    insert_only_columns,
    insert_only_stream,
    insert_only_stream_raw,
    shuffled,
)

__all__ = [
    "DriftPhase",
    "Edge",
    "EdgeEvent",
    "EventColumns",
    "EventKind",
    "LFRGraph",
    "PlantedPartitionGraph",
    "RawEvent",
    "TimestampedEvent",
    "Vertex",
    "add_edge",
    "add_vertex",
    "adversarial_bridge_first",
    "canonical_edge",
    "count_kinds",
    "decode_batch",
    "delete_edge",
    "delete_vertex",
    "drifting_sbm_stream",
    "encode_batch",
    "encode_batches",
    "erdos_renyi_edges",
    "events_from_edges",
    "insert_delete_stream",
    "insert_only_columns",
    "insert_only_stream",
    "insert_only_stream_raw",
    "lfr_graph",
    "planted_partition",
    "power_law_sequence",
    "read_edge_list",
    "read_event_batches",
    "read_event_columns",
    "read_event_stream",
    "read_event_stream_raw",
    "rmat_edges",
    "sbm_stream",
    "shuffled",
    "write_edge_list",
    "validate_timestamps",
    "with_poisson_timestamps",
    "write_event_stream",
]
