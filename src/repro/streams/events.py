"""Stream event model.

A streaming graph is a (possibly infinite) sequence of :class:`EdgeEvent`
values. Following the paper, the stream may contain **vertex or edge
additions and deletions**; the clusterer consumes them one at a time in an
online, incremental fashion.

Vertices are arbitrary hashable identifiers (ints in all our generators).
Edges are undirected and are canonicalized so that ``(u, v)`` and
``(v, u)`` denote the same edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional, Tuple

__all__ = [
    "Vertex",
    "Edge",
    "EventKind",
    "EdgeEvent",
    "EventColumns",
    "RawEvent",
    "canonical_edge",
    "add_edge",
    "delete_edge",
    "add_vertex",
    "delete_vertex",
    "events_from_edges",
    "count_kinds",
    "concat_event_batches",
]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: Lightweight event representation for the batched fast path: a plain
#: ``(kind, u, v)`` tuple (``v=None`` for vertex events). Unlike
#: :class:`EdgeEvent` it is *not* validated or canonicalized at
#: construction — ``StreamingGraphClusterer.apply_many`` does both in
#: bulk, raising the same errors an :class:`EdgeEvent` would.
RawEvent = Tuple["EventKind", Vertex, Optional[Vertex]]


class EventKind(enum.Enum):
    """The four update kinds the paper's stream model supports."""

    ADD_EDGE = "add_edge"
    DELETE_EDGE = "delete_edge"
    ADD_VERTEX = "add_vertex"
    DELETE_VERTEX = "delete_vertex"


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Self-loops are rejected: the clustering model has no use for them and
    allowing them would complicate connectivity bookkeeping silently.
    """
    if u == v:
        raise ValueError(f"self-loop edges are not allowed: ({u!r}, {v!r})")
    # Sort by repr as a total order over heterogeneous hashables; for the
    # homogeneous int/str vertices used in practice this is the natural order.
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True, slots=True)
class EdgeEvent:
    """One update in a streaming graph.

    For edge events both ``u`` and ``v`` are set; for vertex events only
    ``u`` is meaningful and ``v`` is ``None``.
    """

    kind: EventKind
    u: Vertex
    v: Vertex | None = None

    def __post_init__(self) -> None:
        if self.kind in (EventKind.ADD_EDGE, EventKind.DELETE_EDGE):
            if self.v is None:
                raise ValueError(f"{self.kind.value} event requires two endpoints")
            cu, cv = canonical_edge(self.u, self.v)
            object.__setattr__(self, "u", cu)
            object.__setattr__(self, "v", cv)
        else:
            if self.v is not None:
                raise ValueError(f"{self.kind.value} event takes a single vertex")

    @property
    def edge(self) -> Edge:
        """The canonical edge for edge events; raises for vertex events."""
        if self.v is None:
            raise ValueError(f"{self.kind.value} event has no edge")
        return (self.u, self.v)

    @property
    def is_edge_event(self) -> bool:
        """True for ADD_EDGE / DELETE_EDGE events."""
        return self.v is not None


@dataclass(slots=True)
class EventColumns:
    """A batch of raw events in column (struct-of-arrays) form.

    The batch readers (:func:`repro.streams.io.read_event_columns`,
    :func:`repro.streams.io.insert_only_columns`) emit these so the
    numpy batch kernel can consume a whole batch without building a
    tuple per event. ``kinds`` is ``None`` when *every* event in the
    batch is an ``ADD_EDGE`` — the overwhelmingly common case, which
    the kernel then vectorizes in a single run. Like :data:`RawEvent`
    tuples, columns are neither validated nor canonicalized here;
    ``apply_many`` does both in bulk.

    Columns are lists from the stream readers but may be numpy int64
    arrays when they come off the columnar wire decode
    (:mod:`repro.streams.codec`, version-3 frames); every consumer of
    ``us``/``vs`` must handle both.
    """

    us: list
    vs: list
    kinds: Optional[list] = None

    def __len__(self) -> int:
        return len(self.us)

    def to_events(self) -> list:
        """The same batch as a list of raw ``(kind, u, v)`` tuples.

        Array-backed columns convert through ``tolist()`` so the tuples
        carry plain Python ints — scalar-path consumers (and checkpoint
        byte-identity) never see numpy scalar types.
        """
        us = self.us if type(self.us) is list else self.us.tolist()
        vs = self.vs if type(self.vs) is list else self.vs.tolist()
        if self.kinds is None:
            add = EventKind.ADD_EDGE
            return [(add, u, v) for u, v in zip(us, vs)]
        return list(zip(self.kinds, us, vs))

    def slice(self, start: int, stop: int) -> "EventColumns":
        """The sub-batch ``[start:stop)`` (zero-copy for array columns)."""
        if start == 0 and stop >= len(self.us):
            return self
        kinds = None if self.kinds is None else self.kinds[start:stop]
        return EventColumns(
            us=self.us[start:stop], vs=self.vs[start:stop], kinds=kinds
        )


def concat_event_batches(batches: list):
    """Merge decoded event batches into one apply-ready batch.

    Input items are raw-tuple lists and/or :class:`EventColumns` (the
    two shapes a frame decode produces); the service drain loop uses
    this to coalesce adjacent small client frames into one kernel-sized
    ``apply_many``. All-``ADD_EDGE`` columns concatenate column-wise
    (staying vectorizable); any mix falls back to one flat tuple list,
    which preserves event order exactly.
    """
    if len(batches) == 1:
        return batches[0]
    if all(type(b) is EventColumns and b.kinds is None for b in batches):
        us_parts = [b.us for b in batches]
        vs_parts = [b.vs for b in batches]
        if all(type(p) is list for p in us_parts) and all(
            type(p) is list for p in vs_parts
        ):
            us: list = []
            vs: list = []
            for up, vp in zip(us_parts, vs_parts):
                us.extend(up)
                vs.extend(vp)
            return EventColumns(us=us, vs=vs)
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - arrays imply numpy exists
            np = None
        if np is not None and all(
            isinstance(p, np.ndarray) for p in us_parts + vs_parts
        ):
            return EventColumns(
                us=np.concatenate(us_parts), vs=np.concatenate(vs_parts)
            )
    merged: list = []
    for batch in batches:
        merged.extend(
            batch.to_events() if type(batch) is EventColumns else batch
        )
    return merged


def add_edge(u: Vertex, v: Vertex) -> EdgeEvent:
    """Shorthand constructor for an ADD_EDGE event."""
    return EdgeEvent(EventKind.ADD_EDGE, u, v)


def delete_edge(u: Vertex, v: Vertex) -> EdgeEvent:
    """Shorthand constructor for a DELETE_EDGE event."""
    return EdgeEvent(EventKind.DELETE_EDGE, u, v)


def add_vertex(u: Vertex) -> EdgeEvent:
    """Shorthand constructor for an ADD_VERTEX event."""
    return EdgeEvent(EventKind.ADD_VERTEX, u)


def delete_vertex(u: Vertex) -> EdgeEvent:
    """Shorthand constructor for a DELETE_VERTEX event.

    Deleting a vertex implicitly deletes all its incident edges; the
    clusterer expands this internally.
    """
    return EdgeEvent(EventKind.DELETE_VERTEX, u)


def events_from_edges(edges: Iterable[Edge]) -> Iterator[EdgeEvent]:
    """Turn a plain edge list into an insert-only event stream."""
    for u, v in edges:
        yield add_edge(u, v)


def count_kinds(events: Iterable[EdgeEvent]) -> dict:
    """Count events per kind (consumes the iterable); useful in tests."""
    counts: dict = {kind: 0 for kind in EventKind}
    for event in events:
        counts[event.kind] += 1
    return counts
