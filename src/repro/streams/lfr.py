"""LFR-style benchmark graphs (power-law degrees and community sizes).

Real social/web graphs — the paper's evaluation substrate — have heavy-
tailed degree distributions and heterogeneous community sizes, which the
equal-block SBM lacks. This module implements a generator in the spirit
of Lancichinetti–Fortunato–Radicchi (LFR) benchmarks:

* vertex degrees ~ truncated discrete power law (exponent ``tau_degree``),
* community sizes ~ truncated discrete power law (exponent ``tau_size``),
* each vertex spends a ``1 − mu`` fraction of its degree inside its
  community and ``mu`` outside (the *mixing parameter*).

Edges are realized with configuration-model stub matching per community
(intra) and globally (inter), rejecting self-loops, duplicates, and
inter-stubs that land inside a community. The result is an *LFR-style*
graph: it matches the benchmark's degree/size/mixing statistics without
reproducing the reference implementation bit-for-bit — sufficient for
the clustering-quality experiments, which only depend on those
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.quality.partition import Partition
from repro.streams.events import Edge, canonical_edge
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_positive, check_probability

__all__ = ["LFRGraph", "lfr_graph", "power_law_sequence"]


def power_law_sequence(
    count: int, exponent: float, minimum: int, maximum: int, rng
) -> List[int]:
    """``count`` draws from a discrete power law P(x) ∝ x^(−exponent).

    Inverse-CDF sampling over the truncated support [minimum, maximum].
    """
    check_positive("count", count)
    check_positive("minimum", minimum)
    if maximum < minimum:
        raise ValueError(f"maximum {maximum} < minimum {minimum}")
    support = range(minimum, maximum + 1)
    weights = [x ** (-exponent) for x in support]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    values = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        values.append(minimum + lo)
    return values


@dataclass(frozen=True)
class LFRGraph:
    """An LFR-style graph with its planted communities."""

    edges: List[Edge]
    truth: Partition
    degrees: Dict[int, int]
    mixing: float

    @property
    def num_vertices(self) -> int:
        """Vertices covered by the planted partition."""
        return self.truth.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of realized edges."""
        return len(self.edges)


def _community_sizes(
    num_vertices: int, exponent: float, minimum: int, maximum: int, rng
) -> List[int]:
    """Power-law community sizes summing exactly to ``num_vertices``."""
    sizes: List[int] = []
    remaining = num_vertices
    while remaining > 0:
        size = power_law_sequence(1, exponent, minimum, maximum, rng)[0]
        if size > remaining:
            size = remaining
        if size < minimum and sizes:
            # Too small a tail: fold it into the previous community.
            sizes[-1] += size
            remaining = 0
            break
        sizes.append(size)
        remaining -= size
    return sizes


def _match_stubs(stubs: List[int], rng, forbidden_same: Dict[int, int] | None) -> List[Edge]:
    """Randomly pair stubs into edges, rejecting loops and duplicates.

    ``forbidden_same`` maps vertex → community; a pair whose endpoints
    share a community is rejected (used for the inter-community pass).
    Rejected stubs are re-shuffled a bounded number of times, then
    dropped — LFR generators routinely discard a small stub remainder.
    """
    edges: List[Edge] = []
    seen: set = set()
    pool = list(stubs)
    rng.shuffle(pool)
    for _ in range(3):  # a few repair rounds over the leftover pool
        leftover: List[int] = []
        for k in range(0, len(pool) - 1, 2):
            u, v = pool[k], pool[k + 1]
            if u == v:
                leftover.extend((u, v))
                continue
            if forbidden_same is not None and forbidden_same[u] == forbidden_same[v]:
                leftover.extend((u, v))
                continue
            edge = canonical_edge(u, v)
            if edge in seen:
                leftover.extend((u, v))
                continue
            seen.add(edge)
            edges.append(edge)
        if len(pool) % 2 == 1:
            leftover.append(pool[-1])
        if len(leftover) < 2:
            break
        pool = leftover
        rng.shuffle(pool)
    return edges


def lfr_graph(
    num_vertices: int,
    mu: float = 0.1,
    tau_degree: float = 2.5,
    tau_size: float = 1.5,
    min_degree: int = 4,
    max_degree: int | None = None,
    min_community: int = 10,
    max_community: int | None = None,
    seed: int = 0,
) -> LFRGraph:
    """Generate an LFR-style benchmark graph.

    Parameters mirror the standard LFR knobs; ``mu`` is the fraction of
    each vertex's edges that leave its community (0 = perfectly
    separated, 0.5 = boundary of detectability for many methods).
    """
    check_positive("num_vertices", num_vertices)
    check_probability("mu", mu)
    if max_degree is None:
        max_degree = max(min_degree, int(num_vertices ** 0.5) * 2)
    if max_community is None:
        max_community = max(min_community, num_vertices // 4)
    max_community = min(max_community, num_vertices)
    rng = make_rng(child_seed(seed, "lfr"))

    degrees = power_law_sequence(num_vertices, tau_degree, min_degree, max_degree, rng)
    sizes = _community_sizes(num_vertices, tau_size, min_community, max_community, rng)

    # Assign vertices to communities; a vertex's intra-degree must fit,
    # so process high-degree vertices first and give them big communities.
    order = sorted(range(num_vertices), key=lambda v: -degrees[v])
    community_of: Dict[int, int] = {}
    capacity = list(sizes)
    community_order = sorted(range(len(sizes)), key=lambda c: -sizes[c])
    cursor = 0
    for v in order:
        intra = int(round((1.0 - mu) * degrees[v]))
        placed = False
        for attempt in range(len(sizes)):
            c = community_order[(cursor + attempt) % len(sizes)]
            if capacity[c] > 0 and sizes[c] - 1 >= intra:
                community_of[v] = c
                capacity[c] -= 1
                cursor += 1
                placed = True
                break
        if not placed:
            # Degree too large for any community: cap its intra-degree by
            # dropping it into the biggest community with room.
            for c in community_order:
                if capacity[c] > 0:
                    community_of[v] = c
                    capacity[c] -= 1
                    placed = True
                    break
        if not placed:  # pragma: no cover - capacities sum to n
            raise AssertionError("community capacities exhausted early")

    members: Dict[int, List[int]] = {}
    for v, c in community_of.items():
        members.setdefault(c, []).append(v)

    # Intra-community stub matching per community.
    edges: List[Edge] = []
    for c, group in members.items():
        stubs: List[int] = []
        for v in group:
            intra = min(int(round((1.0 - mu) * degrees[v])), len(group) - 1)
            stubs.extend([v] * intra)
        local = make_rng(child_seed(seed, "intra", c))
        edges.extend(_match_stubs(stubs, local, forbidden_same=None))

    # Inter-community stub matching globally.
    inter_stubs: List[int] = []
    for v in range(num_vertices):
        inter = degrees[v] - int(round((1.0 - mu) * degrees[v]))
        inter_stubs.extend([v] * inter)
    inter_rng = make_rng(child_seed(seed, "inter"))
    inter_edges = _match_stubs(inter_stubs, inter_rng, forbidden_same=community_of)

    # Deduplicate across the two passes (an intra edge cannot repeat as
    # inter because inter pairs never share a community, but be safe).
    seen = set(edges)
    for edge in inter_edges:
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)

    truth = Partition(community_of)
    realized = {v: 0 for v in range(num_vertices)}
    for u, v in edges:
        realized[u] += 1
        realized[v] += 1
    return LFRGraph(edges=edges, truth=truth, degrees=realized, mixing=mu)
