"""R-MAT (recursive matrix) graph generator (Chakrabarti et al. 2004).

The standard massive-graph generator of the paper's era (it is what
Graph500 uses): each edge picks its endpoints by recursively descending
into one of the four quadrants of the adjacency matrix with
probabilities (a, b, c, d). Skewed probabilities produce the power-law
degrees and self-similar structure of real web/social graphs — the
right *scalability* workload, complementing SBM/LFR which carry planted
communities.

Parameter noise (±`noise` per level, standard practice) breaks the
generator's grid artifacts.
"""

from __future__ import annotations

from typing import List, Set

from repro.streams.events import Edge, canonical_edge
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_non_negative, check_positive

__all__ = ["rmat_edges"]


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    noise: float = 0.1,
    seed: int = 0,
    max_attempts_factor: int = 20,
) -> List[Edge]:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Duplicate edges and self-loops are rejected and re-drawn, so exactly
    ``num_edges`` distinct undirected edges are returned unless the
    parameter corner makes that impossible within
    ``max_attempts_factor * num_edges`` draws (then a ``RuntimeError``
    names the shortfall — better than silently under-delivering).

    Defaults are the Graph500 parameters (a=0.57, b=c=0.19, d=0.05).
    """
    check_positive("scale", scale)
    check_positive("num_edges", num_edges)
    check_non_negative("noise", noise)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError(f"a + b + c must be <= 1, got {a + b + c}")
    n = 1 << scale
    if num_edges > n * (n - 1) // 2:
        raise ValueError(
            f"num_edges={num_edges} exceeds the {n * (n - 1) // 2} possible edges"
        )
    rng = make_rng(child_seed(seed, "rmat"))
    edges: Set[Edge] = set()
    attempts = 0
    budget = max_attempts_factor * num_edges
    while len(edges) < num_edges:
        attempts += 1
        if attempts > budget:
            raise RuntimeError(
                f"R-MAT rejection budget exhausted: produced {len(edges)} of "
                f"{num_edges} edges in {budget} draws (parameters too skewed "
                f"for this density)"
            )
        u, v = 0, 0
        for _ in range(scale):
            # Jitter the quadrant probabilities per level.
            ja = a * (1.0 + noise * (2.0 * rng.random() - 1.0))
            jb = b * (1.0 + noise * (2.0 * rng.random() - 1.0))
            jc = c * (1.0 + noise * (2.0 * rng.random() - 1.0))
            jd = d * (1.0 + noise * (2.0 * rng.random() - 1.0))
            total = ja + jb + jc + jd
            roll = rng.random() * total
            u <<= 1
            v <<= 1
            if roll < ja:
                pass  # top-left
            elif roll < ja + jb:
                v |= 1  # top-right
            elif roll < ja + jb + jc:
                u |= 1  # bottom-left
            else:
                u |= 1
                v |= 1
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge not in edges:
            edges.add(edge)
    return sorted(edges)
