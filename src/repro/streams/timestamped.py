"""Timestamped stream events.

Real deployments window by *time* ("the last hour"), not by event
count. A timestamped stream is a sequence of ``(timestamp, event)``
pairs with non-decreasing timestamps; helpers here build them from
plain streams and validate monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.streams.events import EdgeEvent
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_positive

__all__ = ["TimestampedEvent", "with_poisson_timestamps", "validate_timestamps"]


@dataclass(frozen=True)
class TimestampedEvent:
    """A stream event paired with its arrival time (seconds)."""

    timestamp: float
    event: EdgeEvent


def with_poisson_timestamps(
    events: Iterable[EdgeEvent],
    rate: float,
    start: float = 0.0,
    seed: int = 0,
) -> List[TimestampedEvent]:
    """Attach Poisson-process arrival times at ``rate`` events/second.

    The standard arrival model for interaction streams; inter-arrival
    gaps are i.i.d. exponential(rate).
    """
    check_positive("rate", rate)
    rng = make_rng(child_seed(seed, "poisson"))
    now = start
    result: List[TimestampedEvent] = []
    for event in events:
        now += rng.expovariate(rate)
        result.append(TimestampedEvent(now, event))
    return result


def validate_timestamps(stream: Sequence[TimestampedEvent]) -> None:
    """Raise ``ValueError`` unless timestamps are non-decreasing."""
    for index in range(1, len(stream)):
        if stream[index].timestamp < stream[index - 1].timestamp:
            raise ValueError(
                f"timestamps regress at position {index}: "
                f"{stream[index - 1].timestamp} -> {stream[index].timestamp}"
            )
