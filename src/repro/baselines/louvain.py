"""Louvain modularity optimization (Blondel et al. 2008), from scratch.

The strongest general-purpose offline comparator: two alternating
phases — greedy local moving of vertices between communities to improve
modularity, then aggregation of communities into super-vertices —
repeated until modularity stops improving.

Implemented over an internal weighted adjacency map so aggregation
levels reuse the same moving routine.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.streams.events import Vertex
from repro.util.rng import child_seed, make_rng

__all__ = ["louvain"]


class _WeightedGraph:
    """Weighted undirected graph with self-loops (aggregation levels)."""

    def __init__(self) -> None:
        self.adj: Dict[int, Dict[int, float]] = {}
        self.loops: Dict[int, float] = {}
        self.total_weight = 0.0  # sum of edge weights, loops included once

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            self.loops[u] = self.loops.get(u, 0.0) + weight
            self.adj.setdefault(u, {})
        else:
            self.adj.setdefault(u, {})[v] = self.adj.setdefault(u, {}).get(v, 0.0) + weight
            self.adj.setdefault(v, {})[u] = self.adj[v].get(u, 0.0) + weight
        self.total_weight += weight

    def degree(self, u: int) -> float:
        """Weighted degree; a self-loop contributes twice (standard)."""
        return sum(self.adj.get(u, {}).values()) + 2.0 * self.loops.get(u, 0.0)

    def nodes(self) -> List[int]:
        return list(self.adj.keys())


def _one_level(
    graph: _WeightedGraph, rng, resolution: float
) -> tuple[Dict[int, int], bool]:
    """Greedy local moving; returns (node→community, improved?)."""
    community: Dict[int, int] = {u: u for u in graph.adj}
    degree = {u: graph.degree(u) for u in graph.adj}
    community_total: Dict[int, float] = dict(degree)  # Σ of degrees per community
    two_m = 2.0 * graph.total_weight
    if two_m == 0:
        return community, False
    nodes = graph.nodes()
    rng.shuffle(nodes)
    improved = False
    moved = True
    while moved:
        moved = False
        for u in nodes:
            cu = community[u]
            # Weights from u to each neighboring community.
            to_community: Dict[int, float] = {}
            for v, w in graph.adj[u].items():
                to_community[community[v]] = to_community.get(community[v], 0.0) + w
            # Remove u from its community.
            community_total[cu] -= degree[u]
            best_c = cu
            best_gain = to_community.get(cu, 0.0) - resolution * community_total[cu] * degree[u] / two_m
            for c, w_uc in to_community.items():
                if c == cu:
                    continue
                gain = w_uc - resolution * community_total[c] * degree[u] / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_c = c
            community[u] = best_c
            community_total[best_c] = community_total.get(best_c, 0.0) + degree[u]
            if best_c != cu:
                moved = True
                improved = True
    return community, improved


def _aggregate(graph: _WeightedGraph, community: Dict[int, int]) -> tuple[_WeightedGraph, Dict[int, int]]:
    """Collapse communities into super-vertices; returns (graph, renumber)."""
    renumber: Dict[int, int] = {}
    for c in community.values():
        if c not in renumber:
            renumber[c] = len(renumber)
    coarse = _WeightedGraph()
    for u in graph.adj:
        coarse.adj.setdefault(renumber[community[u]], {})
    # Walk each undirected edge once (u < v); intra-community edges
    # become self-loops of the super-vertex.
    for u, neighbours in graph.adj.items():
        cu = renumber[community[u]]
        for v, w in neighbours.items():
            if u > v:
                continue
            cv = renumber[community[v]]
            coarse.add_edge(cu, cv, w)
    for u, w in graph.loops.items():
        c = renumber[community[u]]
        coarse.add_edge(c, c, w)
    return coarse, renumber


def louvain(
    graph: AdjacencyGraph,
    seed: int = 0,
    resolution: float = 1.0,
    max_levels: int = 32,
) -> Partition:
    """Louvain community detection on an unweighted graph.

    Returns a :class:`Partition` over all vertices of ``graph``
    (isolated vertices become singleton communities).
    """
    # Map vertices to dense ints for the internal levels.
    ids = list(graph.vertices())
    index_of = {v: i for i, v in enumerate(ids)}
    level_graph = _WeightedGraph()
    for v in ids:
        level_graph.adj.setdefault(index_of[v], {})
    for u, v in graph.edges():
        level_graph.add_edge(index_of[u], index_of[v], 1.0)

    rng = make_rng(child_seed(seed, "louvain"))
    # assignment[i] = community of original vertex i at the current level.
    assignment = {i: i for i in range(len(ids))}
    for _ in range(max_levels):
        community, improved = _one_level(level_graph, rng, resolution)
        if not improved:
            break
        level_graph, renumber = _aggregate(level_graph, community)
        assignment = {
            i: renumber[community[assignment[i]]] for i in assignment
        }
        if len(level_graph.adj) <= 1:
            break
    labels: Dict[Vertex, object] = {ids[i]: c for i, c in assignment.items()}
    return Partition(labels)
