"""Multilevel k-way graph partitioning (METIS-style), from scratch.

The classical offline partitioner of the paper's era: (1) *coarsen* the
graph by heavy-edge matching until it is small, (2) compute a balanced
*initial partition* on the coarsest graph by greedy region growing, and
(3) *uncoarsen*, refining at every level with boundary
Fiduccia–Mattheyses-style moves that improve the edge cut under a
balance constraint.

Produces exactly ``k`` parts of bounded imbalance — the shape that
partitioning-based clustering baselines report.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_positive

__all__ = ["multilevel_partition"]

_Weights = List[Dict[int, int]]


class _Level:
    """One level of the multilevel hierarchy (dense-index weighted graph)."""

    def __init__(self, adjacency: _Weights, vertex_weight: List[int]) -> None:
        self.adjacency = adjacency
        self.vertex_weight = vertex_weight

    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)


def _coarsen(level: _Level, rng) -> Tuple[_Level, List[int]]:
    """Heavy-edge matching; returns (coarse level, fine→coarse map)."""
    n = level.num_vertices
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for u in order:
        if match[u] != -1:
            continue
        best, best_weight = -1, -1
        for v, w in level.adjacency[u].items():
            if match[v] == -1 and v != u and w > best_weight:
                best, best_weight = v, w
        if best != -1:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    coarse_of = [-1] * n
    next_id = 0
    for u in range(n):
        if coarse_of[u] != -1:
            continue
        coarse_of[u] = next_id
        if match[u] != u:
            coarse_of[match[u]] = next_id
        next_id += 1
    coarse_adj: _Weights = [dict() for _ in range(next_id)]
    coarse_weight = [0] * next_id
    for u in range(n):
        cu = coarse_of[u]
        coarse_weight[cu] += level.vertex_weight[u]
        for v, w in level.adjacency[u].items():
            cv = coarse_of[v]
            if cu == cv:
                continue
            coarse_adj[cu][cv] = coarse_adj[cu].get(cv, 0) + w
    # Each fine edge contributes once to cu→cv (from u's list) and once to
    # cv→cu (from v's list), so the coarse weights are already symmetric.
    return _Level(coarse_adj, coarse_weight), coarse_of


def _initial_partition(level: _Level, k: int, rng, max_part: float) -> List[int]:
    """Greedy balanced region growing from k random seeds."""
    n = level.num_vertices
    part = [-1] * n
    part_weight = [0] * k
    seeds = rng.sample(range(n), min(k, n))
    frontiers: List[List[int]] = [[] for _ in range(k)]
    for p, s in enumerate(seeds):
        part[s] = p
        part_weight[p] += level.vertex_weight[s]
        frontiers[p].extend(level.adjacency[s].keys())
    assigned = len(seeds)
    while assigned < n:
        # Grow the lightest part next.
        grew = False
        for p in sorted(range(k), key=lambda q: part_weight[q]):
            while frontiers[p]:
                u = frontiers[p].pop()
                if part[u] == -1:
                    part[u] = p
                    part_weight[p] += level.vertex_weight[u]
                    frontiers[p].extend(
                        v for v in level.adjacency[u] if part[v] == -1
                    )
                    assigned += 1
                    grew = True
                    break
            if grew:
                break
        if not grew:
            # Disconnected remainder: seed the lightest part somewhere new.
            u = next(i for i in range(n) if part[i] == -1)
            p = min(range(k), key=lambda q: part_weight[q])
            part[u] = p
            part_weight[p] += level.vertex_weight[u]
            frontiers[p].extend(v for v in level.adjacency[u] if part[v] == -1)
            assigned += 1
    return part


def _refine(level: _Level, part: List[int], k: int, max_part: float, passes: int = 4) -> None:
    """Boundary FM-lite: greedy gain moves under the balance constraint."""
    n = level.num_vertices
    part_weight = [0] * k
    for u in range(n):
        part_weight[part[u]] += level.vertex_weight[u]
    for _ in range(passes):
        moved = 0
        for u in range(n):
            pu = part[u]
            # Connection weight to each adjacent part.
            link: Dict[int, int] = {}
            for v, w in level.adjacency[u].items():
                link[part[v]] = link.get(part[v], 0) + w
            internal = link.get(pu, 0)
            best_part, best_gain = pu, 0
            for p, w in link.items():
                if p == pu:
                    continue
                if part_weight[p] + level.vertex_weight[u] > max_part:
                    continue
                gain = w - internal
                if gain > best_gain:
                    best_gain, best_part = gain, p
            if best_part != pu:
                part_weight[pu] -= level.vertex_weight[u]
                part_weight[best_part] += level.vertex_weight[u]
                part[u] = best_part
                moved += 1
        if moved == 0:
            break


def _edge_cut(level: _Level, part: List[int]) -> int:
    """Total weight of edges crossing parts (each edge counted once)."""
    cut = 0
    for u, neighbours in enumerate(level.adjacency):
        for v, w in neighbours.items():
            if u < v and part[u] != part[v]:
                cut += w
    return cut


def multilevel_partition(
    graph: AdjacencyGraph,
    k: int,
    seed: int = 0,
    imbalance: float = 1.1,
    coarsen_threshold: int = 200,
) -> Partition:
    """Partition ``graph`` into ``k`` balanced parts, METIS-style."""
    check_positive("k", k)
    if imbalance < 1.0:
        raise ValueError(f"imbalance must be >= 1.0, got {imbalance}")
    ids = list(graph.vertices())
    n = len(ids)
    if n == 0:
        return Partition({})
    if k >= n:
        return Partition.singletons(ids)
    index_of = {v: i for i, v in enumerate(ids)}
    adjacency: _Weights = [dict() for _ in range(n)]
    for u, v in graph.edges():
        iu, iv = index_of[u], index_of[v]
        adjacency[iu][iv] = 1
        adjacency[iv][iu] = 1
    rng = make_rng(child_seed(seed, "multilevel"))

    levels: List[_Level] = [_Level(adjacency, [1] * n)]
    maps: List[List[int]] = []
    target = max(coarsen_threshold, 8 * k)
    while levels[-1].num_vertices > target:
        coarse, coarse_of = _coarsen(levels[-1], rng)
        if coarse.num_vertices >= levels[-1].num_vertices * 0.95:
            break  # matching stalled (e.g. star graphs); stop coarsening
        levels.append(coarse)
        maps.append(coarse_of)

    total_weight = n
    max_part = imbalance * total_weight / k
    # Several restarts at the (cheap) coarsest level; keep the best cut.
    part, best_cut = None, None
    for _ in range(8):
        candidate = _initial_partition(levels[-1], k, rng, max_part)
        _refine(levels[-1], candidate, k, max_part)
        cut = _edge_cut(levels[-1], candidate)
        if best_cut is None or cut < best_cut:
            part, best_cut = candidate, cut
    assert part is not None
    # Uncoarsen with refinement at every level.
    for level_index in range(len(levels) - 2, -1, -1):
        coarse_of = maps[level_index]
        part = [part[coarse_of[u]] for u in range(levels[level_index].num_vertices)]
        _refine(levels[level_index], part, k, max_part)
    return Partition({ids[i]: part[i] for i in range(n)})
