"""Girvan–Newman divisive clustering (2002), from scratch.

The classical (and classically slow) community-detection algorithm:
repeatedly compute edge betweenness (Brandes' algorithm) and remove the
highest-betweenness edge; the components along the way form a
dendrogram, and the level with maximal modularity is returned.

O(n·m) per betweenness pass and up to m passes — the poster child for
"incurs an excessive computational overhead" among the offline
algorithms the paper positions against. Included for completeness on
small graphs; the harness only runs it on karate-scale inputs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.graph.adjacency import AdjacencyGraph
from repro.quality.modularity import modularity
from repro.quality.partition import Partition
from repro.streams.events import Edge, Vertex, canonical_edge

__all__ = ["edge_betweenness", "girvan_newman"]


def edge_betweenness(graph: AdjacencyGraph) -> Dict[Edge, float]:
    """Exact edge betweenness centrality (Brandes 2001, edge variant)."""
    betweenness: Dict[Edge, float] = {edge: 0.0 for edge in graph.edges()}
    for source in graph.vertices():
        # BFS phase: shortest-path counts and predecessor lists.
        sigma: Dict[Vertex, float] = {source: 1.0}
        distance: Dict[Vertex, int] = {source: 0}
        predecessors: Dict[Vertex, List[Vertex]] = {source: []}
        order: List[Vertex] = []
        queue = deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbour in graph.iter_neighbors(node):
                if neighbour not in distance:
                    distance[neighbour] = distance[node] + 1
                    sigma[neighbour] = 0.0
                    predecessors[neighbour] = []
                    queue.append(neighbour)
                if distance[neighbour] == distance[node] + 1:
                    sigma[neighbour] += sigma[node]
                    predecessors[neighbour].append(node)
        # Accumulation phase (reverse BFS order).
        dependency: Dict[Vertex, float] = {node: 0.0 for node in order}
        for node in reversed(order):
            for predecessor in predecessors[node]:
                share = sigma[predecessor] / sigma[node] * (1.0 + dependency[node])
                betweenness[canonical_edge(predecessor, node)] += share
                dependency[predecessor] += share
    # Each unordered pair was counted from both endpoints.
    for edge in betweenness:
        betweenness[edge] /= 2.0
    return betweenness


def girvan_newman(
    graph: AdjacencyGraph, max_removals: int | None = None
) -> Partition:
    """Divisive clustering; returns the max-modularity dendrogram level.

    ``max_removals`` caps the number of edge removals (default: all m),
    trading dendrogram depth for time on larger graphs.
    """
    working = graph.copy()
    best_partition = Partition.from_clusters(working.connected_components())
    best_q = modularity(graph, best_partition)
    removals = max_removals if max_removals is not None else graph.num_edges
    previous_components = working.connected_components()
    for _ in range(removals):
        if working.num_edges == 0:
            break
        betweenness = edge_betweenness(working)
        edge = max(betweenness, key=lambda e: (betweenness[e], e))
        working.remove_edge(*edge)
        components = working.connected_components()
        if len(components) == len(previous_components):
            continue  # no split yet: same partition, skip re-scoring
        previous_components = components
        candidate = Partition.from_clusters(components)
        q = modularity(graph, candidate)
        if q > best_q:
            best_q = q
            best_partition = candidate
    return best_partition
