"""Asynchronous label propagation (Raghavan et al. 2007).

The cheapest offline comparator: every vertex starts with its own label
and repeatedly adopts the most frequent label among its neighbours
(random order, random tie-breaks) until labels stabilize. Near-linear
per sweep, but requires the whole graph in memory and full re-runs on
change — which is exactly the throughput gap the paper exploits.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.util.rng import child_seed, make_rng

__all__ = ["label_propagation"]


def label_propagation(
    graph: AdjacencyGraph, seed: int = 0, max_sweeps: int = 100
) -> Partition:
    """Cluster ``graph`` by asynchronous label propagation."""
    rng = make_rng(child_seed(seed, "lpa"))
    label: Dict[object, int] = {v: i for i, v in enumerate(graph.vertices())}
    nodes = list(graph.vertices())
    for _ in range(max_sweeps):
        rng.shuffle(nodes)
        changed = False
        for v in nodes:
            counts: Dict[int, int] = {}
            for w in graph.iter_neighbors(v):
                counts[label[w]] = counts.get(label[w], 0) + 1
            if not counts:
                continue
            best = max(counts.values())
            candidates: List[int] = [lab for lab, c in counts.items() if c == best]
            new_label = candidates[0] if len(candidates) == 1 else rng.choice(candidates)
            if new_label != label[v] and label[v] not in candidates:
                changed = True
            label[v] = new_label
        if not changed:
            break
    return Partition(label)
