"""Static connected components — the degenerate clustering baselines.

* :func:`connected_components` — components of the full graph (what the
  streaming algorithm degenerates to with an unbounded reservoir).
* :func:`sampled_components` — components of a uniform one-shot edge
  sample: the *offline* analogue of graph reservoir sampling, used to
  sanity-check that the streaming reservoir matches its batch
  counterpart in distribution.
"""

from __future__ import annotations

from typing import List

from repro.connectivity.union_find import UnionFind
from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.streams.events import Edge
from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_positive

__all__ = ["connected_components", "sampled_components"]


def connected_components(graph: AdjacencyGraph) -> Partition:
    """Components of the full graph as a partition."""
    union = UnionFind(graph.vertices())
    for u, v in graph.edges():
        union.union(u, v)
    return Partition.from_clusters(union.groups())


def sampled_components(
    graph: AdjacencyGraph, sample_size: int, seed: int = 0
) -> Partition:
    """Components of a uniform ``sample_size``-edge sample of ``graph``.

    All graph vertices appear in the result (unsampled ones as
    singletons), mirroring the streaming clusterer's snapshot.
    """
    check_positive("sample_size", sample_size)
    rng = make_rng(child_seed(seed, "sampled_components"))
    edges: List[Edge] = graph.edge_list()
    if sample_size < len(edges):
        edges = rng.sample(edges, sample_size)
    union = UnionFind(graph.vertices())
    for u, v in edges:
        union.union(u, v)
    return Partition.from_clusters(union.groups())
