"""Markov Cluster algorithm (van Dongen 2000), from scratch on scipy sparse.

MCL simulates flow: alternate *expansion* (matrix squaring — flow
spreads) and *inflation* (element-wise powering + column normalization —
strong flows strengthen, weak ones decay) until the matrix reaches a
(near-)idempotent state whose connected structure gives the clusters.

A whole-graph iterative matrix algorithm — another representative of
the offline comparators the paper reports orders-of-magnitude
throughput gains over.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.connectivity.union_find import UnionFind
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.csr import CSRGraph
from repro.quality.partition import Partition

__all__ = ["mcl"]


def _normalize_columns(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    sums = np.asarray(matrix.sum(axis=0)).ravel()
    sums[sums == 0] = 1.0
    scale = sparse.diags(1.0 / sums)
    return (matrix @ scale).tocsr()


def _prune(matrix: sparse.csr_matrix, threshold: float) -> sparse.csr_matrix:
    matrix = matrix.tocsr()
    matrix.data[matrix.data < threshold] = 0.0
    matrix.eliminate_zeros()
    return matrix


def mcl(
    graph: AdjacencyGraph,
    inflation: float = 2.0,
    expansion: int = 2,
    max_iterations: int = 60,
    prune_threshold: float = 1e-4,
    tolerance: float = 1e-6,
) -> Partition:
    """Cluster ``graph`` with MCL.

    ``inflation`` controls granularity (higher → more, smaller clusters).
    Clusters are read off as connected components of the converged flow
    matrix's non-zero pattern.
    """
    if inflation <= 1.0:
        raise ValueError(f"inflation must exceed 1.0, got {inflation}")
    if expansion < 2:
        raise ValueError(f"expansion must be >= 2, got {expansion}")
    csr = CSRGraph.from_adjacency(graph)
    n = csr.num_vertices
    if n == 0:
        return Partition({})
    # Self-loops stabilize the flow (standard MCL preprocessing).
    matrix = (csr.to_scipy() + sparse.identity(n, format="csr")).tocsr()
    matrix = _normalize_columns(matrix)
    for _ in range(max_iterations):
        previous = matrix.copy()
        expanded = matrix
        for _ in range(expansion - 1):
            expanded = (expanded @ matrix).tocsr()
        expanded = _prune(expanded, prune_threshold)
        inflated = expanded.copy()
        inflated.data = np.power(inflated.data, inflation)
        matrix = _normalize_columns(inflated)
        matrix = _prune(matrix, prune_threshold)
        difference = abs(matrix - previous)
        if difference.nnz == 0 or difference.max() < tolerance:
            break
    # Clusters: connected components of the (symmetrized) flow support.
    union = UnionFind(range(n))
    rows, cols = matrix.nonzero()
    for r, c in zip(rows, cols):
        union.union(int(r), int(c))
    labels = {csr.ids[i]: union.find(i) for i in range(n)}
    return Partition(labels)
