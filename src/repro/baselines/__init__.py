"""Offline clustering baselines, all implemented from scratch.

These are the comparators for the paper's quality and throughput
experiments. Every algorithm takes the full graph and returns a
:class:`~repro.quality.partition.Partition`; none of them is
incremental — rebuilding on change is exactly the cost the streaming
algorithm avoids.

``BASELINES`` maps short names to ready-to-call single-argument
functions (sensible default parameters) for harness sweeps; algorithms
needing a cluster count ``k`` are exposed via factories.
"""

from typing import Dict

from repro.baselines.components import connected_components, sampled_components
from repro.baselines.girvan_newman import edge_betweenness, girvan_newman
from repro.baselines.label_propagation import label_propagation
from repro.baselines.louvain import louvain
from repro.baselines.mcl import mcl
from repro.baselines.multilevel import multilevel_partition
from repro.baselines.recompute import OfflineAlgorithm, PeriodicRecomputeClusterer
from repro.baselines.spectral import spectral_clustering
from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition

__all__ = [
    "BASELINES",
    "OfflineAlgorithm",
    "PeriodicRecomputeClusterer",
    "connected_components",
    "edge_betweenness",
    "girvan_newman",
    "label_propagation",
    "louvain",
    "make_multilevel",
    "make_spectral",
    "mcl",
    "multilevel_partition",
    "sampled_components",
    "spectral_clustering",
]


def make_spectral(k: int, seed: int = 0) -> OfflineAlgorithm:
    """Spectral clustering with a fixed ``k`` as a one-argument algorithm."""
    return lambda graph: spectral_clustering(graph, k, seed=seed)


def make_multilevel(k: int, seed: int = 0) -> OfflineAlgorithm:
    """Multilevel partitioning with a fixed ``k`` as a one-argument algorithm."""
    return lambda graph: multilevel_partition(graph, k, seed=seed)


BASELINES: Dict[str, OfflineAlgorithm] = {
    "louvain": louvain,
    "label_propagation": label_propagation,
    "mcl": mcl,
    "components": connected_components,
}
