"""Minimal k-means with k-means++ seeding (used by spectral clustering)."""

from __future__ import annotations

import numpy as np

from repro.util.rng import child_seed, make_rng
from repro.util.validation import check_positive

__all__ = ["kmeans"]


def _kmeanspp_init(points: np.ndarray, k: int, rng) -> np.ndarray:
    """k-means++ initial centers."""
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = rng.randrange(n)
    centers[0] = points[first]
    distances = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = distances.sum()
        if total <= 0:
            # All remaining points coincide with a center; pick arbitrarily.
            centers[i] = points[rng.randrange(n)]
            continue
        threshold = rng.random() * total
        index = int(np.searchsorted(np.cumsum(distances), threshold))
        index = min(index, n - 1)
        centers[i] = points[index]
        distances = np.minimum(distances, np.sum((points - centers[i]) ** 2, axis=1))
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Cluster ``points`` (n × d) into ``k`` groups; returns labels (n,).

    Lloyd's algorithm with k-means++ seeding; empty clusters are
    re-seeded with the point farthest from its center.
    """
    check_positive("k", k)
    n = len(points)
    if k >= n:
        return np.arange(n)
    rng = make_rng(child_seed(seed, "kmeans"))
    centers = _kmeanspp_init(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        # Assignment step (vectorized squared distances).
        distances = (
            np.sum(points**2, axis=1)[:, None]
            - 2 * points @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        new_labels = np.argmin(distances, axis=1)
        # Update step.
        new_centers = centers.copy()
        for c in range(k):
            mask = new_labels == c
            if mask.any():
                new_centers[c] = points[mask].mean(axis=0)
            else:
                farthest = int(np.argmax(np.min(distances, axis=1)))
                new_centers[c] = points[farthest]
        shift = float(np.sum((new_centers - centers) ** 2))
        centers = new_centers
        if np.array_equal(new_labels, labels) or shift < tolerance:
            labels = new_labels
            break
        labels = new_labels
    return labels
