"""Normalized spectral clustering (Ng–Jordan–Weiss 2002), from scratch.

Embeds vertices with the top eigenvectors of the normalized adjacency
``D^{-1/2} A D^{-1/2}`` (equivalently, bottom eigenvectors of the
normalized Laplacian), row-normalizes, and k-means the embedding.

A global eigensolve over the whole graph — the canonical example of a
"needs the entire graph beforehand" algorithm the paper contrasts with.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._kmeans import kmeans
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.csr import CSRGraph
from repro.quality.partition import Partition
from repro.util.validation import check_positive

__all__ = ["spectral_clustering"]


def spectral_clustering(
    graph: AdjacencyGraph, k: int, seed: int = 0
) -> Partition:
    """Partition ``graph`` into ``k`` clusters spectrally.

    Isolated vertices (degree 0) are assigned singleton clusters and
    excluded from the eigenproblem.
    """
    check_positive("k", k)
    csr = CSRGraph.from_adjacency(graph)
    degrees = csr.degrees().astype(np.float64)
    active = np.flatnonzero(degrees > 0)
    labels: dict = {}
    next_label = k  # singleton labels start after the k spectral labels
    for index in np.flatnonzero(degrees == 0):
        labels[csr.ids[index]] = next_label
        next_label += 1
    if len(active) == 0:
        return Partition(labels)

    adjacency = csr.to_scipy()[active][:, active]
    active_degrees = degrees[active]
    inv_sqrt = 1.0 / np.sqrt(active_degrees)
    # Normalized adjacency: D^{-1/2} A D^{-1/2}.
    from scipy.sparse import diags

    normalized = diags(inv_sqrt) @ adjacency @ diags(inv_sqrt)

    effective_k = min(k, len(active))
    if effective_k >= len(active) - 1:
        # eigsh needs k < n-1; tiny graphs get the dense solver.
        dense = normalized.toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        embedding = eigenvectors[:, -effective_k:]
    else:
        from scipy.sparse.linalg import eigsh

        _, embedding = eigsh(normalized, k=effective_k, which="LA")
    norms = np.linalg.norm(embedding, axis=1)
    norms[norms == 0] = 1.0
    embedding = embedding / norms[:, None]

    assignment = kmeans(embedding, effective_k, seed=seed)
    for position, index in enumerate(active):
        labels[csr.ids[index]] = int(assignment[position])
    return Partition(labels)
