"""Offline algorithms wrapped as "streaming" periodic recomputers.

The paper's throughput comparison pits the incremental clusterer
against offline algorithms that must **rebuild from scratch** to
reflect stream updates. :class:`PeriodicRecomputeClusterer` makes that
comparison concrete: it ingests the same event stream, maintains the
full graph, and re-runs an offline algorithm every ``interval`` events
(queries between recomputations see the stale clustering — exactly how
such systems are deployed).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.streams.events import EdgeEvent, EventKind, Vertex
from repro.util.validation import check_positive

__all__ = ["OfflineAlgorithm", "PeriodicRecomputeClusterer"]

#: An offline clustering algorithm: full graph in, partition out.
OfflineAlgorithm = Callable[[AdjacencyGraph], Partition]


class PeriodicRecomputeClusterer:
    """Run an offline algorithm every ``interval`` stream events."""

    def __init__(self, algorithm: OfflineAlgorithm, interval: int) -> None:
        check_positive("interval", interval)
        self.algorithm = algorithm
        self.interval = interval
        self._graph = AdjacencyGraph()
        self._since_recompute = 0
        self._partition: Optional[Partition] = None
        self.recomputations = 0
        self.events = 0

    def apply(self, event: EdgeEvent) -> None:
        """Ingest one event; recomputes when the interval elapses."""
        self.events += 1
        kind = event.kind
        if kind is EventKind.ADD_EDGE:
            self._graph.add_edge(event.u, event.v)
        elif kind is EventKind.DELETE_EDGE:
            self._graph.remove_edge(event.u, event.v)
        elif kind is EventKind.ADD_VERTEX:
            self._graph.add_vertex(event.u)
        else:
            self._graph.remove_vertex(event.u)
        self._since_recompute += 1
        if self._since_recompute >= self.interval:
            self.recompute()

    def process(self, events: Iterable[EdgeEvent]) -> "PeriodicRecomputeClusterer":
        """Ingest a whole stream; returns self for chaining."""
        for event in events:
            self.apply(event)
        return self

    def recompute(self) -> Partition:
        """Force a recomputation now and return the fresh partition."""
        self._partition = self.algorithm(self._graph.copy())
        self._since_recompute = 0
        self.recomputations += 1
        return self._partition

    def snapshot(self) -> Partition:
        """The latest clustering (computing one if none exists yet)."""
        if self._partition is None:
            return self.recompute()
        return self._partition

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """Stale-view query against the latest recomputation."""
        snapshot = self.snapshot()
        return u in snapshot and v in snapshot and snapshot.same_cluster(u, v)

    @property
    def graph(self) -> AdjacencyGraph:
        """The fully-materialized graph the offline algorithm sees."""
        return self._graph

    def __repr__(self) -> str:
        return (
            f"PeriodicRecomputeClusterer(interval={self.interval}, "
            f"events={self.events}, recomputations={self.recomputations})"
        )
