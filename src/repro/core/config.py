"""Configuration for the streaming graph clusterer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.constraints import ConstraintPolicy, Unconstrained
from repro.util.validation import check_positive, check_probability

__all__ = ["DeletionPolicy", "ClustererConfig", "normalize_config"]


class DeletionPolicy(enum.Enum):
    """How the reservoir compensates for edge deletions.

    * ``RANDOM_PAIRING`` — the paper-faithful default: deletions are
      paired with later insertions (uniform sample, no access to the full
      edge set required).
    * ``RESAMPLE`` — when the sample shrinks below
      ``resample_threshold × capacity``, rebuild it by drawing uniformly
      from the *tracked* full edge set (requires ``track_graph=True``).
      Restores sample size immediately at an O(m) cost — the ablation
      comparator in experiment E9.
    """

    RANDOM_PAIRING = "random_pairing"
    RESAMPLE = "resample"


@dataclass
class ClustererConfig:
    """All knobs of :class:`repro.core.clusterer.StreamingGraphClusterer`.

    Parameters
    ----------
    reservoir_capacity:
        Number of edges the reservoir may hold — the memory budget.
        The paper's headline knob: larger reservoirs give finer-grained,
        higher-quality clusterings at slightly lower throughput.
    constraint:
        Admission policy enforcing cluster-shape properties
        (:mod:`repro.core.constraints`).
    connectivity_backend:
        ``"hdt"`` (default, poly-log worst-case updates), ``"naive"``
        (BFS; best constants for small bounded clusters), or ``"lazy"``
        (union-find rebuilt at query time; fastest for query-sparse
        unconstrained ingestion — merge/split *statistics* become
        conservative upper bounds under it).
    track_graph:
        Keep the full graph in memory. Required for vertex deletions,
        duplicate detection under ``strict``, the RESAMPLE policy, and
        quality metrics against the live graph. Disable for the lean,
        reservoir-only memory mode.
    strict:
        Raise on malformed streams (duplicate edge adds, deletes of
        absent edges). When False such events are counted and ignored.
        Requires ``track_graph`` to be detectable; without tracking,
        malformed edge events raise ``ValueError`` at configuration time
        only if ``strict`` is set.
    deletion_policy / resample_threshold:
        See :class:`DeletionPolicy`.
    seed:
        Master seed; all internal randomness derives from it.
    batch_fast_path:
        Allow ``apply_many`` to use the deferred-connectivity batch
        ingestion path (unconstrained random-pairing configurations
        only). The result is identical either way; disable only to
        force the per-event reference path, e.g. when benchmarking it.
    kernel:
        Which sampling kernel drives batched ingestion. ``"scalar"``
        (default) is the Mersenne-Twister reference path — bit-identical
        to per-event processing and to every previous release.
        ``"numpy"`` processes whole event batches as arrays
        (:mod:`repro.core.batchkernel`) for ~3x batched throughput; its
        PCG64 draws are *distribution*-equivalent, not bit-identical, so
        checkpoints record which kernel wrote them and a run must stick
        with one kernel end to end (see docs/performance.md).
    """

    reservoir_capacity: int
    constraint: ConstraintPolicy = field(default_factory=Unconstrained)
    connectivity_backend: str = "hdt"
    track_graph: bool = True
    strict: bool = True
    deletion_policy: DeletionPolicy = DeletionPolicy.RANDOM_PAIRING
    resample_threshold: float = 0.5
    seed: int = 0
    batch_fast_path: bool = True
    kernel: str = "scalar"

    def __post_init__(self) -> None:
        check_positive("reservoir_capacity", self.reservoir_capacity)
        check_probability("resample_threshold", self.resample_threshold)
        if self.connectivity_backend not in ("hdt", "naive", "lazy"):
            raise ValueError(
                "connectivity_backend must be 'hdt', 'naive', or 'lazy', "
                f"got {self.connectivity_backend!r}"
            )
        if not isinstance(self.constraint, ConstraintPolicy):
            raise TypeError(
                "constraint must be a ConstraintPolicy instance, "
                f"got {type(self.constraint).__name__}"
            )
        if not isinstance(self.deletion_policy, DeletionPolicy):
            raise TypeError(
                "deletion_policy must be a DeletionPolicy, "
                f"got {type(self.deletion_policy).__name__}"
            )
        if self.deletion_policy is DeletionPolicy.RESAMPLE and not self.track_graph:
            raise ValueError("DeletionPolicy.RESAMPLE requires track_graph=True")
        if self.strict and not self.track_graph:
            raise ValueError(
                "strict stream validation requires track_graph=True; "
                "set strict=False for the lean memory mode"
            )
        if self.kernel not in ("scalar", "numpy"):
            raise ValueError(
                f"kernel must be 'scalar' or 'numpy', got {self.kernel!r}"
            )


def normalize_config(config: ClustererConfig) -> ClustererConfig:
    """Backfill fields on configs pickled before they existed.

    Checkpoints embed the pickled dataclass; one written before the
    ``kernel`` field was added unpickles without the attribute (which
    would break attribute access *and* dataclass equality). Such a
    checkpoint was by construction written by the scalar kernel.
    """
    if not hasattr(config, "kernel"):
        config.kernel = "scalar"
    return config
