"""Sliding-window clustering over an insert-only stream.

Deployments of streaming clustering frequently want the clustering of
the *recent* graph — e.g. interactions in the last hour — rather than of
everything ever seen. :class:`SlidingWindowClusterer` turns an
insert-only edge stream into an add+delete stream over the last
``window`` edge arrivals and feeds it to a
:class:`~repro.core.clusterer.StreamingGraphClusterer`. This is also the
natural large-scale exercise of the reservoir's deletion path
(experiment E6).

Semantics: an edge is present iff it occurred among the last ``window``
ADD_EDGE events. Re-occurrences refresh the edge (multiset counting), so
expiring an older copy of a still-recent edge does not drop it.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, FrozenSet, Iterable

from repro.core.clusterer import StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.errors import UnsupportedOperationError
from repro.quality.partition import Partition
from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventKind,
    Vertex,
    delete_edge,
)
from repro.util.validation import check_positive

__all__ = ["SlidingWindowClusterer"]


class SlidingWindowClusterer:
    """Cluster the graph induced by the last ``window`` edge arrivals."""

    def __init__(self, config: ClustererConfig, window: int) -> None:
        check_positive("window", window)
        self.window = window
        self._inner = StreamingGraphClusterer(config)
        self._recent: Deque[Edge] = deque()
        self._multiplicity: Counter = Counter()

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Process one event of the insert-only stream."""
        kind = event.kind
        if kind is EventKind.ADD_EDGE:
            self._on_add(event.edge)
        elif kind is EventKind.ADD_VERTEX:
            self._inner.apply(event)
        else:
            raise UnsupportedOperationError(
                "SlidingWindowClusterer consumes insert-only streams; "
                f"got {kind.value}. Feed deletions directly to "
                "StreamingGraphClusterer instead."
            )

    def process(self, events: Iterable[EdgeEvent]) -> "SlidingWindowClusterer":
        """Process a whole stream; returns self for chaining."""
        for event in events:
            self.apply(event)
        return self

    def _on_add(self, edge: Edge) -> None:
        self._recent.append(edge)
        self._multiplicity[edge] += 1
        if self._multiplicity[edge] == 1:
            self._inner.apply(EdgeEvent(EventKind.ADD_EDGE, *edge))
        while len(self._recent) > self.window:
            expired = self._recent.popleft()
            self._multiplicity[expired] -= 1
            if self._multiplicity[expired] == 0:
                del self._multiplicity[expired]
                self._inner.apply(delete_edge(*expired))

    # ------------------------------------------------------------------
    # Delegated queries
    # ------------------------------------------------------------------
    @property
    def inner(self) -> StreamingGraphClusterer:
        """The underlying streaming clusterer (stats, reservoir, …)."""
        return self._inner

    @property
    def window_fill(self) -> int:
        """Number of edge arrivals currently inside the window."""
        return len(self._recent)

    @property
    def num_live_edges(self) -> int:
        """Number of distinct edges currently in the window."""
        return len(self._multiplicity)

    def snapshot(self) -> Partition:
        """Clustering of the windowed graph."""
        return self._inner.snapshot()

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are currently clustered together."""
        return self._inner.same_cluster(u, v)

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices clustered with ``v``."""
        return self._inner.cluster_members(v)

    @property
    def num_clusters(self) -> int:
        """Number of clusters over the windowed graph."""
        return self._inner.num_clusters

    def __repr__(self) -> str:
        return (
            f"SlidingWindowClusterer(window={self.window}, "
            f"fill={self.window_fill}, live_edges={self.num_live_edges})"
        )
