"""Multi-resolution streaming clustering.

A single reservoir fixes one granularity: more sampled edges percolate
into coarser, larger components; fewer sampled edges leave finer
fragments. :class:`MultiResolutionClusterer` runs a small bank of
clusterers with geometrically decreasing reservoir capacities over the
*same* stream, giving a resolution hierarchy of clusterings that is
maintained fully online — the natural extension of the paper's
"bounding the number of clusters" property to every granularity at
once, at a constant-factor (number of levels) cost per event.

Levels are independent samples, so the hierarchy is *statistically*
nested (a sparser sample's components refine a denser one's in
expectation) but not deterministically — :meth:`coarsest_split_level`
reports where a vertex pair separates, which is the hierarchy query
deployments actually ask ("how tightly are these two related?").
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional

from repro.core.clusterer import StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.quality.partition import Partition
from repro.streams.events import EdgeEvent, Vertex
from repro.util.rng import child_seed
from repro.util.validation import check_positive

__all__ = ["MultiResolutionClusterer"]


class MultiResolutionClusterer:
    """A bank of clusterers at geometrically decreasing reservoir sizes.

    Level 0 holds ``config.reservoir_capacity`` edges (coarsest);
    each subsequent level holds a ``1/ratio`` fraction (finer).
    """

    def __init__(
        self, config: ClustererConfig, num_levels: int = 4, ratio: float = 4.0
    ) -> None:
        check_positive("num_levels", num_levels)
        if ratio <= 1.0:
            raise ValueError(f"ratio must exceed 1.0, got {ratio}")
        self.config = config
        self.ratio = ratio
        self.levels: List[StreamingGraphClusterer] = []
        capacity = float(config.reservoir_capacity)
        for level in range(num_levels):
            level_config = replace(
                config,
                reservoir_capacity=max(1, int(round(capacity))),
                seed=child_seed(config.seed, "resolution", level),
            )
            self.levels.append(StreamingGraphClusterer(level_config))
            capacity /= ratio

    @property
    def num_levels(self) -> int:
        """Number of resolution levels."""
        return len(self.levels)

    def capacities(self) -> List[int]:
        """Reservoir capacity per level, coarsest first."""
        return [level.config.reservoir_capacity for level in self.levels]

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Feed one event to every level."""
        for level in self.levels:
            level.apply(event)

    def process(self, events: Iterable[EdgeEvent]) -> "MultiResolutionClusterer":
        """Feed a whole stream; returns self for chaining."""
        for event in events:
            self.apply(event)
        return self

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------
    def snapshot(self, level: int = 0) -> Partition:
        """The clustering at ``level`` (0 = coarsest)."""
        return self.levels[level].snapshot()

    def snapshots(self) -> List[Partition]:
        """All levels' clusterings, coarsest first."""
        return [level.snapshot() for level in self.levels]

    def same_cluster(self, u: Vertex, v: Vertex, level: int = 0) -> bool:
        """Co-clustered at the given level?"""
        return self.levels[level].same_cluster(u, v)

    def coarsest_split_level(self, u: Vertex, v: Vertex) -> Optional[int]:
        """The first (coarsest) level at which ``u`` and ``v`` separate.

        Returns 0 if they are apart even at the coarsest resolution,
        ``None`` if they stay together through the finest level. Higher
        values mean a tighter relationship.
        """
        for index, level in enumerate(self.levels):
            if not level.same_cluster(u, v):
                return index
        return None

    def affinity(self, u: Vertex, v: Vertex) -> float:
        """Fraction of levels at which ``u`` and ``v`` are co-clustered.

        A smooth 0..1 relatedness score (1.0 = together everywhere).
        """
        if not self.levels:
            return 0.0
        together = sum(1 for level in self.levels if level.same_cluster(u, v))
        return together / len(self.levels)

    def __repr__(self) -> str:
        return (
            f"MultiResolutionClusterer(levels={self.num_levels}, "
            f"capacities={self.capacities()})"
        )
