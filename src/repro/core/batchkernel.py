"""Array-at-a-time batch kernel (``--kernel numpy``).

The scalar batch loop in :meth:`StreamingGraphClusterer._apply_edge_batch`
already defers connectivity, but still canonicalizes, interns, packs,
and draws every reservoir decision one event at a time in Python.
:class:`NumpyBatchKernel` replaces that per-event work for maximal runs
of ``ADD_EDGE`` events with whole-array phases:

1. **Intern** — labels are canonicalized with ``np.minimum/maximum``
   and deduplicated with ``np.unique``; the interner's dict is touched
   once per batch-unique label, in exactly the scalar path's
   first-touch order (lo-then-hi per event, event order), so both
   kernels build the identical label table for the same stream.
2. **Graph + duplicate filter** — the tracked adjacency is updated in a
   tight Python loop (dict-of-dict updates do not vectorize); duplicate
   adds are dropped (or raise under ``strict``) with the scalar path's
   exact error and partial-batch semantics.
3. **Register** — endpoints not yet known to connectivity are found by
   one boolean gather against a registration bitmap and appended to the
   deferred first-touch registration list.
4. **Pack + sample** — ``(min_id << 32) | max_id`` keys feed
   :meth:`NumpyPackedEdgeReservoir.insert_many`, which draws the whole
   steady-state accept/evict run from a PCG64 generator in two
   vectorized calls.
5. **Net diff** — admissions and evictions fold into the existing
   deferred-connectivity diff (``_conn_diff``); the live structure is
   only reconciled when something actually needs it, exactly as on the
   scalar batch path.

Statistics granularity
----------------------
The scalar kernel resolves every merge/split exactly (incremental
labels + budgeted BFS probes). Per-admission component maintenance is
the dominant cost of that loop, and the partition itself never depends
on it — clusters are extracted from the reservoir directly. The numpy
kernel therefore reports ``component_merges``/``component_splits`` as
**interval-granular estimates**: pending batches are settled lazily (on
stats access, metrics sync, checkpoint, or any per-event fallback) by
three vectorized connected-components passes over the sampled edge set
(before / before+admitted / after). Merges are exact for the interval
treated as one bulk update; splits are a lower bound (a component that
splits and re-merges within one interval is not observed). This mirrors
the documented conservative statistics of the lazy backend. All other
counters (events, admissions, evictions, malformed, ...) are exact.

Error-path caveat: on a strict-mode :class:`StreamError` the kernel has
already interned labels from later events in the same run (interning is
phase 1, validation phase 2). Ids are internal, and a run aborted by a
stream error is corrupt input anyway; partitions and equivalence are
unaffected.
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import StreamError
from repro.sampling.vectorized import edge_components
from repro.streams.events import EdgeEvent, EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.clusterer import StreamingGraphClusterer

__all__ = ["NumpyBatchKernel"]

_MASK32 = 0xFFFFFFFF
_U32 = np.uint64(32)

_GET_KIND = itemgetter(0)
_GET_U = itemgetter(1)
_GET_V = itemgetter(2)


class NumpyBatchKernel:
    """Vectorized ADD_EDGE executor bound to one clusterer.

    Everything it touches is the clusterer's own state — reservoir,
    interner, tracked graph, deferred-connectivity bookkeeping — so
    per-event processing (deletions, vertex events, ``apply``) can
    interleave freely: :meth:`sync` reconciles the two lazily-maintained
    pieces (sample adjacency, pending merge/split estimates) before any
    scalar code that needs them runs.
    """

    __slots__ = (
        "_c",
        "_registered",
        "_reg_epoch",
        "_label_map",
        "adj_stale",
        "stats_pending",
        "_pending_before",
        "_pending_admitted",
    )

    #: Dense label→id cache ceiling: int labels in [0, 2**22) gather their
    #: ids straight out of a numpy array instead of the interner's dict
    #: (≤32 MiB of int64 at full size, grown geometrically on demand).
    _LABEL_MAP_LIMIT = 1 << 22

    def __init__(self, clusterer: "StreamingGraphClusterer") -> None:
        self._c = clusterer
        self._registered = np.zeros(256, dtype=bool)
        self._reg_epoch = -1  # force a rebuild on first use
        self._label_map = np.full(256, -1, dtype=np.int64)
        self.adj_stale = False
        self.stats_pending = False
        self._pending_before: Optional[np.ndarray] = None
        self._pending_admitted: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # Reconciliation with the per-event path
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Bring lazily-maintained state current (cheap when it already is)."""
        if self.stats_pending:
            self.settle_stats()
        if self.adj_stale:
            self._rebuild_sample_adj()

    def settle_stats(self) -> None:
        """Fold pending batches into ``component_merges``/``component_splits``.

        One settlement covers every kernel run since the last one; see
        the module docstring for the estimate's semantics.
        """
        if not self.stats_pending:
            return
        self.stats_pending = False
        before = self._pending_before
        admitted_runs = self._pending_admitted
        self._pending_before = None
        self._pending_admitted = []
        admitted = (
            np.concatenate(admitted_runs)
            if admitted_runs
            else np.empty(0, dtype=np.uint64)
        )
        stats = self._c._stats
        if admitted.size == 0:
            # No admissions: nothing merged, and nothing left the sample
            # (evictions only happen on admission; deletions run on the
            # per-event path, which settles first).
            return
        assert before is not None
        c_before, verts_before, _ = edge_components(before)
        mid = np.concatenate([before, admitted])
        c_mid, verts_mid, labels_mid = edge_components(mid)
        n_vb = 0 if verts_before is None else verts_before.size
        merges = c_before + (verts_mid.size - n_vb) - c_mid
        if merges > 0:
            stats.component_merges += int(merges)
        after = np.frombuffer(self._c._reservoir._slots, dtype=np.uint64)
        c_after, verts_after, _ = edge_components(after)
        if c_after:
            # Every edge in `after` is in `mid`, so its endpoints are too.
            pos = np.searchsorted(verts_mid, verts_after)
            survivors = int(np.unique(labels_mid[pos]).size)
            splits = c_after - survivors
            if splits > 0:
                stats.component_splits += splits

    def _rebuild_sample_adj(self) -> None:
        """Rebuild ``_sample_adj`` from the reservoir slots (O(sample))."""
        self.adj_stale = False
        c = self._c
        adj = c._sample_adj
        adj.clear()
        for key in c._reservoir._slots:
            ku = key >> 32
            kv = key & _MASK32
            adj.setdefault(ku, set()).add(kv)
            adj.setdefault(kv, set()).add(ku)
        c._comp_dirty = True

    def _registration_bitmap(self) -> np.ndarray:
        """Bitmap of ids registered with connectivity, epoch-validated."""
        c = self._c
        size = max(256, len(c._intern) + 1024)
        if self._reg_epoch != c._conn_epoch:
            self._reg_epoch = c._conn_epoch
            self._registered = np.zeros(size, dtype=bool)
            if c._conn_ids:
                self._registered[np.fromiter(c._conn_ids, dtype=np.int64)] = True
        elif self._registered.size < len(c._intern):
            grown = np.zeros(size, dtype=bool)
            grown[: self._registered.size] = self._registered
            self._registered = grown
        return self._registered

    # ------------------------------------------------------------------
    # Stream entry points
    # ------------------------------------------------------------------
    def apply_stream(self, events: Iterable) -> None:
        """Apply a mixed batch: vectorize ADD_EDGE runs, fall back per
        event for everything else (deletions, vertex events)."""
        c = self._c
        add_edge = EventKind.ADD_EDGE
        if type(events) is not list:
            events = list(events)
        # Fast path for the dominant shape: a batch of raw tuples that is
        # ADD_EDGE throughout. itemgetter gathers columns at C speed
        # (cheaper than a zip(*...) transpose); list.count compares
        # identity-first, so checking "all ADD_EDGE" never routes through
        # Enum.__hash__. EdgeEvent objects are not subscriptable, so a
        # mixed batch falls through to the segmenting loop below.
        if events and type(events[0]) is tuple:
            try:
                kinds = list(map(_GET_KIND, events))
            except TypeError:
                kinds = None
            if kinds is not None and kinds.count(add_edge) == len(kinds):
                self.run_add(list(map(_GET_U, events)), list(map(_GET_V, events)))
                return
        run_u: list = []
        run_v: list = []
        for event in events:
            if type(event) is tuple:
                kind, u, v = event
                obj = None
            else:
                kind, u, v = event.kind, event.u, event.v
                obj = event
            if kind is add_edge:
                run_u.append(u)
                run_v.append(v)
                continue
            if run_u:
                self.run_add(run_u, run_v)
                run_u = []
                run_v = []
            c.kernel_fallback_events += 1
            c.apply(obj if obj is not None else EdgeEvent(kind, u, v))
        if run_u:
            self.run_add(run_u, run_v)

    def apply_columns(self, kinds, us, vs) -> None:
        """Column-form entry (``EventColumns``); ``kinds`` may be None
        when every event is an ADD_EDGE. Columns arrive as lists from
        the stream readers or as int64 arrays off the columnar wire
        decode — array columns skip the per-label type gate entirely."""
        if kinds is None:
            if isinstance(us, np.ndarray):
                self.run_add_arrays(us, vs)
            elif us:
                self.run_add(us, vs)
            return
        if type(us) is not list:
            us = us.tolist()
        if type(vs) is not list:
            vs = vs.tolist()
        self.apply_stream(list(zip(kinds, us, vs)))

    def apply_interned(self, events: Iterable[Tuple[EventKind, int, int]]) -> None:
        """Pre-interned ``(kind, uid, vid)`` edge tuples (pipeline workers)."""
        c = self._c
        add_edge = EventKind.ADD_EDGE
        label_of = c._intern.label_of
        run_u: list = []
        run_v: list = []
        for kind, uid, vid in events:
            if kind is add_edge:
                run_u.append(uid)
                run_v.append(vid)
                continue
            if run_u:
                self._run(
                    np.asarray(run_u, dtype=np.int64),
                    np.asarray(run_v, dtype=np.int64),
                )
                run_u = []
                run_v = []
            c.apply(EdgeEvent(kind, label_of(uid), label_of(vid)))
        if run_u:
            self._run(
                np.asarray(run_u, dtype=np.int64),
                np.asarray(run_v, dtype=np.int64),
            )

    # ------------------------------------------------------------------
    # ADD_EDGE runs
    # ------------------------------------------------------------------
    def run_add(self, us: list, vs: list) -> None:
        """Intern a run of label pairs and execute it.

        The int fast path requires every label to be exactly ``int``
        (bools are excluded, like the routing layers, because ``True``
        and ``1`` are distinct labels to a dict but not to an array);
        anything else falls back to per-event interning with identical
        semantics.
        """
        if set(map(type, us)) == {int} == set(map(type, vs)):
            try:
                au = np.asarray(us, dtype=np.int64)
                av = np.asarray(vs, dtype=np.int64)
            except OverflowError:
                self._run_add_generic(us, vs)
                return
            pending_error: Optional[BaseException] = None
            loops = au == av
            if loops.any():
                p = int(np.argmax(loops))
                pending_error = ValueError(
                    f"self-loop edges are not allowed: ({us[p]!r}, {vs[p]!r})"
                )
                au = au[:p]
                av = av[:p]
            if au.size:
                lo, hi = self._intern_int_pairs(au, av)
                self._run(lo, hi)
            if pending_error is not None:
                raise pending_error
        else:
            self._run_add_generic(us, vs)

    def run_add_arrays(self, au, av) -> None:
        """Array-native ADD_EDGE run: endpoint columns already int64.

        The wire decode hands label columns straight from the frame's
        gather — no per-label type gate, no list round-trip. Semantics
        match :meth:`run_add` exactly, including the truncate-at-first-
        self-loop error contract.
        """
        au = np.asarray(au, dtype=np.int64)
        av = np.asarray(av, dtype=np.int64)
        if not au.size:
            return
        pending_error: Optional[BaseException] = None
        loops = au == av
        if loops.any():
            p = int(np.argmax(loops))
            pending_error = ValueError(
                f"self-loop edges are not allowed: "
                f"({int(au[p])!r}, {int(av[p])!r})"
            )
            au = au[:p]
            av = av[:p]
        if au.size:
            lo, hi = self._intern_int_pairs(au, av)
            self._run(lo, hi)
        if pending_error is not None:
            raise pending_error

    def _intern_int_pairs(
        self, au: np.ndarray, av: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bulk label→id interning for int labels, first-touch ordered.

        Labels in ``[0, _LABEL_MAP_LIMIT)`` resolve through a dense numpy
        label→id cache — one gather for a fully warmed-up batch, a small
        first-touch-ordered intern loop for the stragglers. The cache is
        only ever *missing* an entry, never wrong: labels interned by the
        scalar path leave a ``-1`` that falls through to the interner's
        get-or-add. Out-of-range labels take the per-unique dict path.
        """
        intern = self._c._intern
        flat = np.empty(au.size * 2, dtype=np.int64)
        flat[0::2] = np.minimum(au, av)
        flat[1::2] = np.maximum(au, av)
        mn = int(flat.min())
        mx = int(flat.max())
        if 0 <= mn and mx < self._LABEL_MAP_LIMIT:
            lmap = self._label_map
            if lmap.size <= mx:
                size = lmap.size
                while size <= mx:
                    size *= 2
                grown = np.full(min(size, self._LABEL_MAP_LIMIT), -1, np.int64)
                grown[: lmap.size] = lmap
                self._label_map = lmap = grown
            ids_flat = lmap[flat]
            unknown = ids_flat < 0
            if unknown.any():
                # Assign new ids in the order the scalar loop would: by
                # the label's first appearance in the lo/hi-interleaved
                # stream (np.unique's return_index preserves that order
                # within the unknown subset).
                fresh, first_idx = np.unique(flat[unknown], return_index=True)
                order = np.argsort(first_idx, kind="stable")
                iadd = intern.intern
                for label in fresh[order].tolist():
                    lmap[label] = iadd(label)
                ids_flat[unknown] = lmap[flat[unknown]]
            return ids_flat[0::2], ids_flat[1::2]
        ids_map = intern._ids
        uniq, first_idx, inverse = np.unique(
            flat, return_index=True, return_inverse=True
        )
        uniq_ids = np.empty(uniq.size, dtype=np.int64)
        missing: list = []
        for pos, label in enumerate(uniq.tolist()):
            vid = ids_map.get(label)
            if vid is None:
                missing.append(pos)
            else:
                uniq_ids[pos] = vid
        if missing:
            # Same first-appearance ordering as above.
            iadd = intern.intern
            missing.sort(key=first_idx.__getitem__)
            labels = uniq.tolist()
            for pos in missing:
                uniq_ids[pos] = iadd(labels[pos])
        ids_flat = uniq_ids[inverse]
        return ids_flat[0::2], ids_flat[1::2]

    def _run_add_generic(self, us: list, vs: list) -> None:
        """Per-event interning fallback for non-int / mixed / big labels."""
        intern = self._c._intern
        iget = intern._ids.get
        iadd = intern.intern
        lo: List[int] = []
        hi: List[int] = []
        pending_error: Optional[BaseException] = None
        for u, v in zip(us, vs):
            if u == v:
                pending_error = ValueError(
                    f"self-loop edges are not allowed: ({u!r}, {v!r})"
                )
                break
            try:
                if v < u:
                    u, v = v, u
            except TypeError:
                if repr(v) < repr(u):
                    u, v = v, u
            uid = iget(u)
            if uid is None:
                uid = iadd(u)
            vid = iget(v)
            if vid is None:
                vid = iadd(v)
            lo.append(uid)
            hi.append(vid)
        if lo:
            self._run(
                np.asarray(lo, dtype=np.int64), np.asarray(hi, dtype=np.int64)
            )
        if pending_error is not None:
            raise pending_error

    def _run(self, lo: np.ndarray, hi: np.ndarray) -> None:
        """Execute one run of interned, label-canonical id pairs."""
        c = self._c
        n = int(lo.size)
        if n == 0:
            return
        if not c._conn_stale:
            # Entering deferred mode: mirror the scalar batch loop's
            # snapshot of the lazy backend's dirty flag.
            c._lazy_dirty = bool(getattr(c._conn, "dirty", False))
        stats = c._stats
        pending_error: Optional[BaseException] = None
        n_malformed = 0
        # --- tracked graph + duplicate filter -------------------------
        if c._graph is not None:
            lo, hi, n_events, n_malformed, pending_error = self._graph_pass(lo, hi)
        else:
            n_events = n
        stats.events += n_events
        stats.edge_adds += n_events
        stats.malformed_events += n_malformed
        admitted: List[int] = []
        evicted: List[int] = []
        structural = False
        try:
            if lo.size:
                # --- deferred connectivity registration ---------------
                flat = np.empty(lo.size * 2, dtype=np.int64)
                flat[0::2] = lo
                flat[1::2] = hi
                registered = self._registration_bitmap()
                known = registered[flat]
                if not known.all():
                    new_flat = flat[~known]
                    uniq, first_idx = np.unique(new_flat, return_index=True)
                    order = np.argsort(first_idx, kind="stable")
                    fresh_ids = uniq[order]
                    conn_ids = c._conn_ids
                    fresh_append = c._conn_fresh.append
                    for vid in fresh_ids.tolist():
                        conn_ids.add(vid)
                        fresh_append(vid)
                    registered[fresh_ids] = True
                    structural = True
                # --- pack + vectorized reservoir admission ------------
                keys = (
                    np.minimum(lo, hi).astype(np.uint64) << _U32
                ) | np.maximum(lo, hi).astype(np.uint64)
                reservoir = c._reservoir
                if not self.stats_pending:
                    self._pending_before = np.frombuffer(
                        reservoir._slots, dtype=np.uint64
                    ).copy()
                reservoir.insert_many(keys, admitted=admitted, evicted=evicted)
        finally:
            if admitted:
                stats.admissions += len(admitted)
                structural = True
                self.adj_stale = True
                c._comp_dirty = True
                self.stats_pending = True
                self._pending_admitted.append(
                    np.asarray(admitted, dtype=np.uint64)
                )
            if evicted:
                stats.evictions += len(evicted)
            # --- net edge diff into deferred connectivity -------------
            diff = c._conn_diff
            diff_get = diff.get
            for key in admitted:
                delta = diff_get(key, 0) + 1
                if delta:
                    diff[key] = delta
                else:
                    del diff[key]
            for key in evicted:
                delta = diff_get(key, 0) - 1
                if delta:
                    diff[key] = delta
                else:
                    del diff[key]
            c._conn_stale = bool(diff) or bool(c._conn_fresh)
            if (
                not c._conn_stale
                and c._lazy_dirty
                and hasattr(c._conn, "mark_dirty")
            ):
                c._conn.mark_dirty()
            if structural:
                c._invalidate()
            c.kernel_batches += 1
            c.kernel_events += n_events
        if pending_error is not None:
            raise pending_error

    def _graph_pass(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, int, Optional[BaseException]]:
        """Update the tracked adjacency; drop (or fail on) duplicates.

        Returns the possibly-filtered id arrays, the number of events
        actually consumed (a strict-mode error truncates the run to the
        scalar path's partial-batch semantics), the malformed count, and
        the pending StreamError (raised by the caller after the
        surviving prefix is fully applied).
        """
        c = self._c
        graph = c._graph
        gadj = graph._adj
        strict = c.config.strict
        g_vertices = g_edges = 0
        dropped: List[int] = []
        pending_error: Optional[BaseException] = None
        n_events = int(lo.size)
        # Grow the id-indexed adjacency once for the whole run; ids are
        # dense, so the largest endpoint bounds every access below.
        max_id = max(int(lo.max()), int(hi.max()))
        if max_id >= len(gadj):
            gadj.extend([None] * (max_id + 1 - len(gadj)))
        try:
            for i, (uid, vid) in enumerate(zip(lo.tolist(), hi.tolist())):
                nu = gadj[uid]
                if nu is None:
                    gadj[uid] = {vid: None}
                    g_vertices += 1
                elif vid in nu:
                    if strict:
                        label_of = c._intern.label_of
                        pending_error = StreamError(
                            f"duplicate ADD_EDGE "
                            f"({label_of(uid)!r}, {label_of(vid)!r})"
                        )
                        n_events = i + 1
                        dropped.append(i)
                        break
                    dropped.append(i)
                    continue
                else:
                    nu[vid] = None
                nv = gadj[vid]
                if nv is None:
                    gadj[vid] = {uid: None}
                    g_vertices += 1
                else:
                    nv[uid] = None
                g_edges += 1
        finally:
            graph._id_count += g_vertices
            graph._num_edges += g_edges
        if pending_error is not None:
            # Strict mode: the raising event is counted (the scalar loop
            # increments its counters before the duplicate check) but
            # not applied further, and later events are never consumed.
            return lo[: n_events - 1], hi[: n_events - 1], n_events, 0, pending_error
        if dropped:
            lo = np.delete(lo, dropped)
            hi = np.delete(hi, dropped)
        return lo, hi, n_events, len(dropped), None
