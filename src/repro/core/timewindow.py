"""Time-based sliding-window clustering.

:class:`TimeWindowClusterer` keeps the clustering of the edges seen in
the last ``horizon`` seconds of a timestamped insert-only stream —
"interactions in the last hour" — expiring edges by timestamp rather
than by arrival count (:class:`~repro.core.window.SlidingWindowClusterer`
is the count-based sibling). Multiset semantics match the count-window:
an edge is live while *any* of its occurrences is inside the horizon.

Expiry is driven by the stream clock (each arrival advances time) plus
an explicit :meth:`advance_to` for idle periods, so the clustering can
be decayed even when no events arrive.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, FrozenSet, Iterable, Tuple

from repro.core.clusterer import StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.errors import UnsupportedOperationError
from repro.quality.partition import Partition
from repro.streams.events import Edge, EventKind, Vertex, delete_edge
from repro.streams.timestamped import TimestampedEvent
from repro.util.validation import check_positive

__all__ = ["TimeWindowClusterer"]


class TimeWindowClusterer:
    """Cluster the graph induced by the last ``horizon`` seconds."""

    def __init__(self, config: ClustererConfig, horizon: float) -> None:
        check_positive("horizon", horizon)
        self.horizon = float(horizon)
        self._inner = StreamingGraphClusterer(config)
        self._recent: Deque[Tuple[float, Edge]] = deque()
        self._multiplicity: Counter = Counter()
        self._now = float("-inf")

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, item: TimestampedEvent) -> None:
        """Process one timestamped event (timestamps must not regress)."""
        if item.timestamp < self._now:
            raise ValueError(
                f"timestamp regressed: {item.timestamp} < {self._now}"
            )
        self.advance_to(item.timestamp)
        event = item.event
        if event.kind is EventKind.ADD_EDGE:
            edge = event.edge
            self._recent.append((item.timestamp, edge))
            self._multiplicity[edge] += 1
            if self._multiplicity[edge] == 1:
                self._inner.apply(event)
        elif event.kind is EventKind.ADD_VERTEX:
            self._inner.apply(event)
        else:
            raise UnsupportedOperationError(
                "TimeWindowClusterer consumes insert-only streams; "
                f"got {event.kind.value}"
            )

    def process(self, stream: Iterable[TimestampedEvent]) -> "TimeWindowClusterer":
        """Process a whole timestamped stream; returns self."""
        for item in stream:
            self.apply(item)
        return self

    def advance_to(self, timestamp: float) -> int:
        """Move the clock forward, expiring stale edges.

        Returns the number of edge *occurrences* expired. Call this from
        a timer to decay the clustering during quiet periods.
        """
        if timestamp < self._now:
            raise ValueError(f"clock regressed: {timestamp} < {self._now}")
        self._now = timestamp
        cutoff = timestamp - self.horizon
        expired = 0
        while self._recent and self._recent[0][0] <= cutoff:
            _, edge = self._recent.popleft()
            expired += 1
            self._multiplicity[edge] -= 1
            if self._multiplicity[edge] == 0:
                del self._multiplicity[edge]
                self._inner.apply(delete_edge(*edge))
        return expired

    # ------------------------------------------------------------------
    # Delegated queries
    # ------------------------------------------------------------------
    @property
    def inner(self) -> StreamingGraphClusterer:
        """The underlying streaming clusterer."""
        return self._inner

    @property
    def now(self) -> float:
        """The current stream clock."""
        return self._now

    @property
    def num_live_edges(self) -> int:
        """Distinct edges currently inside the horizon."""
        return len(self._multiplicity)

    def snapshot(self) -> Partition:
        """Clustering of the time-windowed graph."""
        return self._inner.snapshot()

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are currently clustered together."""
        return self._inner.same_cluster(u, v)

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices clustered with ``v``."""
        return self._inner.cluster_members(v)

    @property
    def num_clusters(self) -> int:
        """Number of clusters over the windowed graph."""
        return self._inner.num_clusters

    def __repr__(self) -> str:
        return (
            f"TimeWindowClusterer(horizon={self.horizon}, now={self._now}, "
            f"live_edges={self.num_live_edges})"
        )
