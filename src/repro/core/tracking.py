"""Cluster-evolution tracking across snapshots.

A streaming clusterer's labels are component identifiers that change
arbitrarily between snapshots even when the clusters themselves barely
move. Deployments (monitoring, alerting, per-cluster state) need
*stable* identities and explicit lifecycle events. :class:`ClusterTracker`
matches consecutive snapshots by vertex overlap and reports, per
transition:

* ``CONTINUED`` — a cluster carried on (possibly grown/shrunk); keeps
  its stable id,
* ``BORN`` / ``DIED`` — a cluster appeared from / dissolved into
  fragments below the matching threshold,
* ``SPLIT`` — one tracked cluster's vertices now dominate several new
  clusters,
* ``MERGED`` — several tracked clusters' vertices now dominate one new
  cluster.

Matching rule: new cluster N inherits old cluster O's id iff O
contributes the plurality of N's members *and* N holds the plurality of
O's surviving members (mutual-best), with Jaccard ≥ ``threshold``.
This is the standard community-tracking heuristic (Greene et al. style)
and is deterministic.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.quality.external import ari
from repro.quality.partition import Partition
from repro.streams.events import Vertex
from repro.util.validation import check_probability

__all__ = ["ClusterEventKind", "ClusterEvent", "TrackingReport", "ClusterTracker"]


class ClusterEventKind(enum.Enum):
    """Lifecycle transitions a tracked cluster can undergo."""

    BORN = "born"
    DIED = "died"
    CONTINUED = "continued"
    SPLIT = "split"
    MERGED = "merged"


@dataclass(frozen=True)
class ClusterEvent:
    """One lifecycle event between two consecutive snapshots."""

    kind: ClusterEventKind
    stable_ids: Tuple[int, ...]  # the tracked id(s) involved
    size: int  # size of the (surviving/new) cluster, 0 for DIED
    members: FrozenSet[Vertex] = field(repr=False, default=frozenset())


@dataclass
class TrackingReport:
    """Outcome of one :meth:`ClusterTracker.update` call."""

    events: List[ClusterEvent]
    stable_id_of: Dict[object, int]  # snapshot label → stable id
    stability: float  # ARI vs the previous snapshot (1.0 on first)

    def count(self, kind: ClusterEventKind) -> int:
        """Number of events of the given kind."""
        return sum(1 for event in self.events if event.kind is kind)


class ClusterTracker:
    """Assigns stable ids to clusters across a stream of snapshots.

    ``min_size`` filters noise: clusters smaller than it are ignored
    entirely (streaming snapshots contain many singletons).

    >>> tracker = ClusterTracker(min_size=2)
    >>> report = tracker.update(Partition.from_clusters([{1, 2, 3}]))
    >>> report.count(ClusterEventKind.BORN)
    1
    """

    def __init__(self, threshold: float = 0.3, min_size: int = 2) -> None:
        check_probability("threshold", threshold)
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")
        self.threshold = threshold
        self.min_size = min_size
        self._next_id = itertools.count()
        self._tracked: Dict[int, FrozenSet[Vertex]] = {}
        self._previous: Optional[Partition] = None

    @property
    def tracked_clusters(self) -> Dict[int, FrozenSet[Vertex]]:
        """Current stable-id → member-set view (copy)."""
        return dict(self._tracked)

    def update(self, snapshot: Partition) -> TrackingReport:
        """Ingest the next snapshot; returns the lifecycle events."""
        new_clusters = {
            label: members
            for label, members in (
                (label, snapshot.members(label))
                for label in {snapshot.label_of(v) for v in snapshot.vertices()}
            )
            if len(members) >= self.min_size
        }
        stability = 1.0
        if self._previous is not None:
            stability = ari(snapshot, self._previous)

        # Overlap counts between old tracked clusters and new clusters.
        vertex_to_old: Dict[Vertex, int] = {}
        for stable_id, members in self._tracked.items():
            for vertex in members:
                vertex_to_old[vertex] = stable_id
        overlap: Dict[Tuple[int, object], int] = {}
        for label, members in new_clusters.items():
            for vertex in members:
                old = vertex_to_old.get(vertex)
                if old is not None:
                    overlap[(old, label)] = overlap.get((old, label), 0) + 1

        best_new_for_old: Dict[int, Tuple[int, object]] = {}
        best_old_for_new: Dict[object, Tuple[int, int]] = {}
        for (old, label), count in overlap.items():
            if old not in best_new_for_old or count > best_new_for_old[old][0]:
                best_new_for_old[old] = (count, label)
            if label not in best_old_for_new or count > best_old_for_new[label][0]:
                best_old_for_new[label] = (count, old)

        # Old clusters contributing a threshold fraction of *themselves*
        # to a new cluster count as its parents.
        parents_of: Dict[object, List[int]] = {}
        for (old, label), count in overlap.items():
            if count >= self.threshold * len(self._tracked[old]):
                parents_of.setdefault(label, []).append(old)

        events: List[ClusterEvent] = []
        stable_id_of: Dict[object, int] = {}
        accounted_old: set = set()

        for label, members in new_clusters.items():
            parents = tuple(sorted(parents_of.get(label, ())))
            # Continuation candidate: mutual best with Jaccard ≥ threshold.
            count, dominant = best_old_for_new.get(label, (0, None))
            continues = (
                dominant is not None
                and best_new_for_old.get(dominant, (0, None))[1] == label
                and count / len(self._tracked[dominant] | members) >= self.threshold
            )
            if len(parents) > 1:
                # Several old clusters flowed in: a merge. The dominant
                # parent's identity survives when it is a genuine
                # continuation; otherwise the merged cluster is new.
                kept = dominant if continues else next(self._next_id)
                stable_id_of[label] = kept
                accounted_old.update(parents)
                if continues:
                    accounted_old.add(dominant)
                ids = parents + (kept,)
                events.append(
                    ClusterEvent(ClusterEventKind.MERGED, ids, len(members),
                                 frozenset(members))
                )
            elif continues:
                stable_id_of[label] = dominant
                accounted_old.add(dominant)
                events.append(
                    ClusterEvent(ClusterEventKind.CONTINUED, (dominant,),
                                 len(members), frozenset(members))
                )
            elif len(parents) == 1:
                stable_id = next(self._next_id)
                stable_id_of[label] = stable_id
                # The parent is accounted for only if some sibling carries
                # its identity on; a pure shatter also emits DIED below.
                events.append(
                    ClusterEvent(ClusterEventKind.SPLIT,
                                 parents + (stable_id,), len(members),
                                 frozenset(members))
                )
                accounted_old.add(parents[0])
            else:
                stable_id = next(self._next_id)
                stable_id_of[label] = stable_id
                events.append(
                    ClusterEvent(ClusterEventKind.BORN, (stable_id,),
                                 len(members), frozenset(members))
                )

        # Old clusters that neither continued, merged, nor split → DIED.
        for old in self._tracked:
            if old not in accounted_old:
                events.append(ClusterEvent(ClusterEventKind.DIED, (old,), 0))

        self._tracked = {
            stable_id_of[label]: frozenset(members)
            for label, members in new_clusters.items()
        }
        self._previous = snapshot
        return TrackingReport(
            events=events, stable_id_of=stable_id_of, stability=stability
        )
