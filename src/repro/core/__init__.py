"""The paper's primary contribution: clustering by graph reservoir sampling.

Public entry points:

* :class:`StreamingGraphClusterer` — online clusterer over a stream of
  vertex/edge additions and deletions.
* :class:`ClustererConfig` / :class:`DeletionPolicy` — configuration.
* :mod:`repro.core.constraints` — cluster-shape admission policies.
* :class:`ShardedClusterer` / :class:`PipelineClusterer` /
  :func:`cluster_stream_parallel` — the parallelization story (in
  process, persistent worker pool, batch driver).
* :class:`SlidingWindowClusterer` — recency-windowed deployment mode.
"""

from repro.core.clusterer import ClustererStats, StreamingGraphClusterer
from repro.core.config import ClustererConfig, DeletionPolicy
from repro.core.constraints import (
    CompositeConstraint,
    ConstraintPolicy,
    MaxClusterSize,
    MinClusterCount,
    Unconstrained,
)
from repro.core.pipeline import PipelineClusterer
from repro.core.sharded import (
    ShardedClusterer,
    ShardResult,
    SupervisorConfig,
    cluster_stream_parallel,
    merge_shard_samples,
)
from repro.core.tracking import (
    ClusterEvent,
    ClusterEventKind,
    ClusterTracker,
    TrackingReport,
)
from repro.core.hierarchy import MultiResolutionClusterer
from repro.core.timewindow import TimeWindowClusterer
from repro.core.weighted import WeightedStreamingClusterer
from repro.core.window import SlidingWindowClusterer

__all__ = [
    "ClusterEvent",
    "ClusterEventKind",
    "ClusterTracker",
    "ClustererConfig",
    "ClustererStats",
    "CompositeConstraint",
    "ConstraintPolicy",
    "DeletionPolicy",
    "MaxClusterSize",
    "MinClusterCount",
    "MultiResolutionClusterer",
    "PipelineClusterer",
    "ShardResult",
    "TrackingReport",
    "ShardedClusterer",
    "SlidingWindowClusterer",
    "SupervisorConfig",
    "TimeWindowClusterer",
    "StreamingGraphClusterer",
    "Unconstrained",
    "WeightedStreamingClusterer",
    "cluster_stream_parallel",
    "merge_shard_samples",
]
