"""Admission constraints for graph reservoir sampling.

The paper maintains the edge reservoir *"while satisfying certain
desired properties like bounding number of clusters or cluster-sizes"*.
Concretely: when the reservoir sampler wants to admit an edge whose
insertion into the sampled sub-graph would merge two components, a
constraint policy may veto the admission so that the declared clustering
keeps the desired shape.

Policies are stateless predicates over the current connectivity
structure, so a single instance can be shared between clusterers.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.connectivity.base import DynamicConnectivity
from repro.streams.events import Vertex
from repro.util.validation import check_positive

__all__ = [
    "ConstraintPolicy",
    "Unconstrained",
    "MaxClusterSize",
    "MinClusterCount",
    "CompositeConstraint",
]


class ConstraintPolicy(abc.ABC):
    """Decides whether a sampled edge may enter the sampled sub-graph."""

    @abc.abstractmethod
    def allows(self, connectivity: DynamicConnectivity, u: Vertex, v: Vertex) -> bool:
        """True if edge ``{u, v}`` may be added to the sampled sub-graph.

        Called *before* the edge is inserted; implementations typically
        inspect the components of ``u`` and ``v``.
        """


class Unconstrained(ConstraintPolicy):
    """Admit everything — pure graph reservoir sampling."""

    def allows(self, connectivity: DynamicConnectivity, u: Vertex, v: Vertex) -> bool:
        return True

    def __repr__(self) -> str:
        return "Unconstrained()"


class MaxClusterSize(ConstraintPolicy):
    """Bound the size of every declared cluster.

    An edge is vetoed iff it would merge two components whose combined
    size exceeds ``limit``. Edges internal to a component are always
    allowed (they do not change cluster sizes).
    """

    def __init__(self, limit: int) -> None:
        check_positive("limit", limit)
        self.limit = limit

    def allows(self, connectivity: DynamicConnectivity, u: Vertex, v: Vertex) -> bool:
        if connectivity.connected(u, v):
            return True
        return connectivity.component_size(u) + connectivity.component_size(v) <= self.limit

    def __repr__(self) -> str:
        return f"MaxClusterSize(limit={self.limit})"


class MinClusterCount(ConstraintPolicy):
    """Keep at least ``minimum`` clusters (components) alive.

    An edge is vetoed iff it would merge two components while the
    component count is already at the floor. Note the count is over all
    components of the sampled sub-graph, including singleton vertices.
    """

    def __init__(self, minimum: int) -> None:
        check_positive("minimum", minimum)
        self.minimum = minimum

    def allows(self, connectivity: DynamicConnectivity, u: Vertex, v: Vertex) -> bool:
        if connectivity.connected(u, v):
            return True
        return connectivity.num_components > self.minimum

    def __repr__(self) -> str:
        return f"MinClusterCount(minimum={self.minimum})"


class CompositeConstraint(ConstraintPolicy):
    """Logical AND of several policies (all must allow)."""

    def __init__(self, policies: Sequence[ConstraintPolicy]) -> None:
        if not policies:
            raise ValueError("CompositeConstraint requires at least one policy")
        self.policies = tuple(policies)

    def allows(self, connectivity: DynamicConnectivity, u: Vertex, v: Vertex) -> bool:
        return all(policy.allows(connectivity, u, v) for policy in self.policies)

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.policies)
        return f"CompositeConstraint([{inner}])"
