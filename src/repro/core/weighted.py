"""Weighted graph reservoir clustering (insert-only streams).

The paper's stream model is unweighted; real interaction graphs carry
edge weights (message counts, tie strength). This extension samples
edges **proportionally to weight** (Efraimidis–Spirakis weighted
reservoir), so the sampled sub-graph concentrates on strong ties and
its components track the *cohesive cores* rather than treating a
one-off interaction like a daily one.

Scope: insert-only streams (weighted reservoir sampling under deletions
has no bounded-memory uniform solution comparable to random pairing).
Re-offering an edge is supported and treated as *weight accumulation*:
the edge gets another chance to enter the sample with the new
occurrence's weight, which approximates sampling by cumulative weight
without storing per-edge totals.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from repro.connectivity import make_connectivity
from repro.core.config import ClustererConfig
from repro.quality.partition import Partition
from repro.sampling.weighted import WeightedReservoir
from repro.streams.events import Edge, Vertex, canonical_edge
from repro.util.rng import child_seed

__all__ = ["WeightedStreamingClusterer"]


class WeightedStreamingClusterer:
    """Online clustering of a weighted insert-only edge stream.

    >>> from repro.core import ClustererConfig
    >>> clusterer = WeightedStreamingClusterer(ClustererConfig(reservoir_capacity=100))
    >>> clusterer.add_edge("a", "b", weight=5.0)
    >>> clusterer.same_cluster("a", "b")
    True
    """

    def __init__(self, config: ClustererConfig) -> None:
        self.config = config
        self._reservoir: WeightedReservoir[Edge] = WeightedReservoir(
            config.reservoir_capacity, seed=child_seed(config.seed, "wreservoir")
        )
        self._conn = make_connectivity(
            config.connectivity_backend, seed=child_seed(config.seed, "wconnectivity")
        )
        self.edges_offered = 0
        self.vetoes = 0

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Offer one weighted edge occurrence."""
        edge = canonical_edge(u, v)
        self.edges_offered += 1
        self._conn.add_vertex(edge[0])
        self._conn.add_vertex(edge[1])
        if self._conn.has_edge(*edge):
            # Already sampled: a re-occurrence cannot improve the sample
            # (the edge is resident); weight still counts to the totals.
            self._reservoir.account_weight(weight)
            return
        if not self.config.constraint.allows(self._conn, *edge):
            self.vetoes += 1
            return
        admitted, evicted = self._reservoir.offer_detailed(edge, weight)
        if not admitted:
            return
        if evicted is not None and self._conn.has_edge(*evicted):
            self._conn.delete_edge(*evicted)
        if not self._conn.has_edge(*edge):
            self._conn.insert_edge(*edge)

    def add_edges(
        self, weighted_edges: Iterable[Tuple[Vertex, Vertex, float]]
    ) -> "WeightedStreamingClusterer":
        """Offer a stream of (u, v, weight) triples; returns self."""
        for u, v, weight in weighted_edges:
            self.add_edge(u, v, weight)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are currently clustered together."""
        return self._conn.connected(u, v)

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices clustered with ``v``."""
        return frozenset(self._conn.component_members(v))

    def snapshot(self) -> Partition:
        """The current clustering."""
        return Partition.from_clusters(self._conn.components())

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return self._conn.num_components

    @property
    def reservoir_size(self) -> int:
        """Sampled edge count."""
        return len(self._reservoir)

    def sampled_edges(self) -> List[Edge]:
        """The sampled edges (copy)."""
        return self._reservoir.items()

    def __repr__(self) -> str:
        return (
            f"WeightedStreamingClusterer(clusters={self.num_clusters}, "
            f"reservoir={self.reservoir_size}/{self.config.reservoir_capacity})"
        )
