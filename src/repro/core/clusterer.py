"""The streaming graph clusterer — the paper's primary contribution.

:class:`StreamingGraphClusterer` consumes a stream of vertex/edge
additions and deletions and maintains, at all times, a clustering of the
current graph defined as the **connected components of a reservoir
sample of the edges**:

1. A :class:`~repro.sampling.random_pairing.RandomPairingReservoir`
   keeps a bounded uniform sample of the live edge set under additions
   and deletions.
2. Admissions that would merge components may be vetoed by a
   :class:`~repro.core.constraints.ConstraintPolicy` (bounding cluster
   sizes or the number of clusters — the paper's "desired properties").
3. A fully-dynamic connectivity structure
   (:class:`~repro.connectivity.hdt.HDTConnectivity` by default) keeps
   the components of the sampled sub-graph current as sampled edges come
   and go.

Every update is processed online and incrementally in amortized
poly-logarithmic time; no pass over the full graph is ever required
(unless the optional RESAMPLE deletion policy is selected).

Dense-integer hot path
----------------------
Vertex labels are interned once at the ingestion boundary
(:class:`~repro.graph.intern.VertexInterner`): every structure past that
point — reservoir, adjacency, connectivity, caches — works on dense
``u32`` ids, and an edge is a single packed ``(min_id << 32) | max_id``
int. Labels reappear only at the query/persistence boundary
(:meth:`snapshot`, :meth:`cluster_members`, :meth:`get_state`). Interning
order is first-appearance order of the canonicalized event stream, so
all ingestion paths (per-event, batched, pipeline workers decoding
interned frames) build the identical table and make RNG-identical
sampling decisions.

Batched ingestion
-----------------
:meth:`StreamingGraphClusterer.apply_many` is the high-throughput entry
point. For the unconstrained random-pairing configuration it amortizes
the per-event Python overhead across a whole batch: events are consumed
as plain ``(kind, u, v)`` tuples or :class:`EdgeEvent` objects, stats
are accumulated in local counters, and — crucially — the fully-dynamic
connectivity structure is **deferred**: the batch records the sample
mutations it performs and resolves their exact merge/split outcomes
afterwards with offline divide-and-conquer connectivity
(:func:`~repro.connectivity.offline.resolve_sample_timeline`); the live
structure receives only the *net* edge diff, and only when something
actually needs it (a per-event :meth:`apply`, a vertex deletion, or
:meth:`get_state`). Clustering queries between batches are answered from
the reservoir directly via a cached vertex → component labelling, so
the end-to-end result — partition, statistics, reservoir content, and
RNG state — is identical to the per-event path (property-tested in
``tests/test_apply_many_property.py``). See ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from sys import getsizeof
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.connectivity import make_connectivity
from repro.connectivity.offline import resolve_sample_timeline
from repro.obs import metrics as _obs
from repro.connectivity.union_find import UnionFind
from repro.core.config import ClustererConfig, DeletionPolicy, normalize_config
from repro.core.constraints import Unconstrained
from repro.errors import StreamError, UnsupportedOperationError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.intern import VertexInterner
from repro.quality.partition import Partition
from repro.sampling.random_pairing import NOT_ADMITTED, PackedEdgeReservoir
from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventColumns,
    EventKind,
    RawEvent,
    Vertex,
    canonical_edge,
)
from repro.util.rng import child_seed, make_rng

__all__ = ["STATE_FORMAT", "ClustererStats", "StreamingGraphClusterer"]

AnyEvent = Union[EdgeEvent, RawEvent]

#: Checkpoint format emitted by :meth:`StreamingGraphClusterer.get_state`.
#: Format 2 added the intern table and packed reservoir keys; format-1
#: states (no ``"format"`` key) still load via a compatibility path.
#: Format 3 (emitted only by ``kernel="numpy"`` configurations, so the
#: scalar default stays byte-identical) additionally carries the numpy
#: kernel's PCG64 bitstream state inside the reservoir state; the loader
#: accepts all three.
STATE_FORMAT = 2
STATE_FORMAT_NUMPY = 3

_MASK32 = 0xFFFFFFFF


@dataclass
class ClustererStats:
    """Counters describing the work a clusterer has performed."""

    events: int = 0
    edge_adds: int = 0
    edge_deletes: int = 0
    vertex_adds: int = 0
    vertex_deletes: int = 0
    admissions: int = 0
    vetoes: int = 0
    evictions: int = 0
    sample_deletions: int = 0
    component_merges: int = 0
    component_splits: int = 0
    malformed_events: int = 0
    resamples: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging / result records)."""
        return dict(self.__dict__)


class StreamingGraphClusterer:
    """Online, incremental clustering by graph reservoir sampling.

    >>> from repro.core.config import ClustererConfig
    >>> from repro.streams.events import add_edge
    >>> clusterer = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=100))
    >>> for u, v in [(1, 2), (2, 3), (7, 8)]:
    ...     clusterer.apply(add_edge(u, v))
    >>> clusterer.same_cluster(1, 3)
    True
    >>> clusterer.same_cluster(1, 7)
    False
    """

    def __init__(self, config: ClustererConfig) -> None:
        self.config = config = normalize_config(config)
        # The vectorized batch kernel (bound below for kernel="numpy")
        # settles its lazily-maintained pieces through the ``stats``
        # property and the ``apply`` sync hook; scalar configurations
        # never pay more than this None check.
        self._kernel = None
        self._stats = ClustererStats()
        # Label ↔ dense-id table shared by every structure below. Edge
        # keys pack the two endpoint ids into one int, canonical by *id*
        # order internally; label-canonical orientation is recomputed
        # only when edges are externalized.
        self._intern = VertexInterner()
        self._reservoir: PackedEdgeReservoir = self._make_reservoir(
            child_seed(config.seed, "reservoir")
        )
        self._conn = make_connectivity(
            config.connectivity_backend, seed=child_seed(config.seed, "connectivity")
        )
        # Ids registered with the connectivity structure. Membership here
        # replaces a method call per endpoint per event on the hot path;
        # invariant: ``_conn_ids == set(_conn.vertices()) | set(_conn_fresh)``
        # (the second term is the batch loop's deferred registrations).
        self._conn_ids: Set[int] = set()
        self._graph: Optional[AdjacencyGraph] = (
            AdjacencyGraph(interner=self._intern) if config.track_graph else None
        )
        self._rebuild_rng = make_rng(child_seed(config.seed, "rebuild"))
        # Batched-ingestion state: while `_conn_stale` the connectivity
        # structure lags the reservoir by the net edge diff in
        # `_conn_diff` (packed key -> +1 pending insert / -1 pending
        # delete).
        self._conn_stale = False
        self._conn_diff: Dict[int, int] = {}
        # Vertices first seen by a batch, awaiting registration with the
        # connectivity structure (flushed, in first-touch order, before
        # the edge diff). `_conn_ids` is updated immediately, so
        # membership checks never see the deferral.
        self._conn_fresh: List[int] = []
        # Simulates the lazy backend's dirty flag while deferred (other
        # backends ignore it).
        self._lazy_dirty = bool(getattr(self._conn, "dirty", False))
        # Adjacency view of the *sampled* sub-graph (by id), kept in
        # lockstep with the reservoir. The batch loop resolves most
        # merge/split booleans with a budgeted BFS over it, skipping both
        # the live connectivity structure and the offline resolver.
        self._sample_adj: Dict[int, Set[int]] = {}
        # Exact component labels over `_sample_adj` (vertex id -> opaque
        # component id, only for vertices with >= 1 sampled edge), plus
        # component sizes keyed by those ids. Maintained incrementally by
        # the batch loop (merge checks become two dict lookups instead of
        # a BFS; splits relabel the smaller side found by the split BFS);
        # any sample mutation outside that loop just marks them dirty and
        # the next batch rebuilds in one O(sample) pass.
        self._comp: Dict[int, int] = {}
        self._comp_size: Dict[int, int] = {}
        self._comp_next = 0
        self._comp_dirty = False
        # Cached cluster extraction (id -> representative id),
        # invalidated by structural changes.
        self._labels_cache: Optional[Dict[int, int]] = None
        self._partition_cache: Optional[Partition] = None
        #: Number of times a partition was actually (re)built by
        #: :meth:`snapshot` — a probe counter for cache-effectiveness
        #: tests and benchmarks; not part of the persisted state.
        self.partition_builds = 0
        #: Probe counters for the batched fast path's degradation modes
        #: (like ``partition_builds``, not persisted): how often a batch
        #: connectivity probe exhausted its BFS budget, and how often a
        #: batch fell back to the offline divide-and-conquer resolver.
        self.probe_budget_hits = 0
        self.offline_resolves = 0
        #: Probe counters for the numpy batch kernel (not persisted):
        #: vectorized runs executed, events they consumed, and events
        #: that fell back to the per-event path while the kernel was
        #: configured (deletions, vertex events, non-int labels).
        self.kernel_batches = 0
        self.kernel_events = 0
        self.kernel_fallback_events = 0
        # Bumped whenever the connectivity vertex universe changes
        # outside the batch kernel, invalidating its registration
        # bitmap (see batchkernel._registration_bitmap).
        self._conn_epoch = 0
        #: Monotone counter of structural invalidations (sampled edge
        #: set or vertex universe changed since the last extraction
        #: cache build). Ensemble drivers compare version vectors to
        #: skip merged-partition rebuilds when no shard moved; like the
        #: probe counters it is not part of the persisted state.
        self.structure_version = 0
        # Last counter values published to the metrics registry, so
        # sync_metrics() emits exact deltas (see repro.obs).
        self._metrics_last: Dict[str, int] = {}
        if config.kernel == "numpy":
            from repro.core.batchkernel import NumpyBatchKernel

            self._kernel = NumpyBatchKernel(self)

    def _make_reservoir(self, seed: int) -> PackedEdgeReservoir:
        """Reservoir matching the configured kernel (scalar MT / numpy PCG64)."""
        if self.config.kernel == "numpy":
            from repro.sampling.vectorized import NumpyPackedEdgeReservoir

            return NumpyPackedEdgeReservoir(
                self.config.reservoir_capacity, seed=seed
            )
        return PackedEdgeReservoir(self.config.reservoir_capacity, seed=seed)

    @property
    def stats(self) -> ClustererStats:
        """Work counters; reading settles any pending kernel estimates."""
        kernel = self._kernel
        if kernel is not None and kernel.stats_pending:
            kernel.settle_stats()
        return self._stats

    @stats.setter
    def stats(self, value: ClustererStats) -> None:
        self._stats = value

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Process one stream event."""
        if self._conn_stale:
            self._flush_conn()
        if self._kernel is not None:
            self._kernel.sync()
        self.stats.events += 1
        kind = event.kind
        if kind is EventKind.ADD_EDGE:
            self._on_add_edge(event.u, event.v)
        elif kind is EventKind.DELETE_EDGE:
            self._on_delete_edge(event.u, event.v)
        elif kind is EventKind.ADD_VERTEX:
            self._on_add_vertex(event.u)
        elif kind is EventKind.DELETE_VERTEX:
            self._on_delete_vertex(event.u)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unknown event kind {kind!r}")

    def apply_many(self, events: Iterable[AnyEvent]) -> "StreamingGraphClusterer":
        """Process a stream of events through the batched fast path.

        Accepts :class:`EdgeEvent` objects and plain ``(kind, u, v)``
        tuples (``v=None`` for vertex events) interchangeably; the tuple
        form skips per-event object construction entirely. The final
        state — reservoir content and RNG state, statistics, tracked
        graph, and clustering — is identical to calling :meth:`apply`
        per event, for any split of the stream into batches.

        The fast path engages for the unconstrained random-pairing
        configuration; constrained or RESAMPLE configurations fall back
        to per-event processing transparently. Vertex deletions act as
        batch barriers (they need live connectivity), so streams where
        they are rare still batch well. Returns self for chaining.
        """
        config = self.config
        columns = type(events) is EventColumns
        if (
            config.deletion_policy is not DeletionPolicy.RANDOM_PAIRING
            or type(config.constraint) is not Unconstrained
            or not getattr(config, "batch_fast_path", True)
        ):
            if columns:
                events = events.to_events()
            for event in events:
                if type(event) is tuple:
                    event = EdgeEvent(event[0], event[1], event[2])
                self.apply(event)
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        kernel = self._kernel
        if kernel is not None:
            if columns:
                kernel.apply_columns(events.kinds, events.us, events.vs)
            else:
                kernel.apply_stream(events)
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        if columns:
            events = events.to_events()
        iterator = iter(events)
        while True:
            barrier = self._apply_edge_batch(iterator)
            if barrier is None:
                return self
            self.apply(barrier)

    def apply_interned_many(
        self, events: Iterable[Tuple[EventKind, int, int]]
    ) -> "StreamingGraphClusterer":
        """Apply pre-interned **edge** events: ``(kind, uid, vid)`` tuples
        whose endpoints are ids in this clusterer's :attr:`interner`, in
        label-canonical orientation.

        This is the pipeline worker's zero-rehydration entry point: the
        frame decoder interns straight into the worker clusterer's table
        and the ids flow through untouched. The result is identical to
        applying the equivalent label events through :meth:`apply_many`.
        Vertex events are not accepted (their application is conditional
        on label-space state; the pipeline handles them per-event).
        """
        config = self.config
        if (
            config.deletion_policy is not DeletionPolicy.RANDOM_PAIRING
            or type(config.constraint) is not Unconstrained
            or not getattr(config, "batch_fast_path", True)
        ):
            label_of = self._intern.label_of
            for kind, uid, vid in events:
                self.apply(EdgeEvent(kind, label_of(uid), label_of(vid)))
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        if self._kernel is not None:
            self._kernel.apply_interned(events)
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        self._apply_edge_batch(iter(events), interned=True)
        return self

    def process(
        self, events: Iterable[AnyEvent], batch_size: Optional[int] = None
    ) -> "StreamingGraphClusterer":
        """Process a whole stream; returns self for chaining.

        With ``batch_size`` (``None``/``0`` disables batching) the
        stream is consumed in chunks through :meth:`apply_many`; larger
        chunks amortize more per-event overhead at the cost of a longer
        deferred-resolution horizon per chunk.
        """
        if not batch_size:
            for event in events:
                if type(event) is tuple:
                    event = EdgeEvent(event[0], event[1], event[2])
                self.apply(event)
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        iterator = iter(events)
        while True:
            chunk = list(islice(iterator, batch_size))
            if not chunk:
                return self
            self.apply_many(chunk)

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    def _apply_edge_batch(
        self, iterator: Iterator[AnyEvent], interned: bool = False
    ) -> Optional[EdgeEvent]:
        """Consume edge/vertex-add events until exhaustion or a barrier.

        Returns the barrier event (vertex deletion) still to be applied,
        or None when the iterator ran dry. All state the loop defers —
        stat counters, the sample-mutation timeline, cache invalidation —
        is settled in the ``finally`` block, so an exception (strict-mode
        stream error, malformed input) leaves the clusterer exactly as
        the per-event path would.

        With ``interned=True`` the events are ``(kind, uid, vid)`` edge
        tuples over already-interned ids (pipeline workers); labels are
        then never touched, and non-edge kinds are rejected.
        """
        if not self._conn_stale:
            # Entering deferred mode: snapshot what the per-event path
            # would currently report for the lazy backend's dirty flag.
            self._lazy_dirty = bool(getattr(self._conn, "dirty", False))
        reservoir = self._reservoir
        reservoir_delete = reservoir.delete
        # The admission step is inlined below (the loop manipulates the
        # reservoir's slot array and counters directly). The RNG draws
        # replicate random.Random.randrange's accept-reject loop over
        # getrandbits bit-for-bit, so the sampler consumes entropy — and
        # decides — exactly as insert_fast/propose_insert would
        # (property-tested against the per-event path).
        slots = reservoir._slots
        slot_of = reservoir._slot_of
        getrandbits = reservoir._rng.getrandbits
        capacity = reservoir._capacity
        graph = self._graph
        gadj = None if graph is None else graph._adj
        g_vertices = g_edges = 0  # deferred graph counter deltas
        intern = self._intern
        iget = intern._ids.get
        iadd = intern.intern
        label_of = intern.label_of
        conn_ids = self._conn_ids
        fresh_append = self._conn_fresh.append
        strict = self.config.strict
        kind_add = EventKind.ADD_EDGE
        kind_del = EventKind.DELETE_EDGE
        kind_addv = EventKind.ADD_VERTEX
        not_admitted = NOT_ADMITTED
        diff = self._conn_diff
        adj = self._sample_adj
        # Merge/split booleans come from the maintained component labels
        # over the sample adjacency: an insert's merge check is two dict
        # lookups, a deletion's split check is a budgeted bidirectional
        # BFS (`_split_components`) whose exhausted side doubles as the
        # relabel set. The first split check to exceed its budget turns
        # the maintenance off for the rest of the batch; the recorded
        # timeline is then resolved offline in the finally block and the
        # labels are rebuilt at the next batch. The lazy backend never
        # probes (its counters are simulated exactly in _resolve_ops).
        probing = self.config.connectivity_backend != "lazy"
        if probing and self._comp_dirty:
            self._rebuild_components()
        comp = self._comp
        comp_get = comp.get
        comp_size = self._comp_size
        comp_next = self._comp_next
        split_check = self._split_components
        n_merges = n_splits = 0
        base_labels = self._labels_cache  # pre-batch components, if current
        ops: List[Tuple[bool, int, int]] = []
        n_events = n_adds = n_deletes = n_vadds = 0
        n_admitted = n_evicted = n_sample_del = n_malformed = 0
        structural = False
        barrier: Optional[EdgeEvent] = None
        try:
            for event in iterator:
                if type(event) is tuple:
                    kind, u, v = event
                else:
                    kind, u, v = event.kind, event.u, event.v
                if kind is kind_add:
                    if interned:
                        uid = u
                        vid = v
                    else:
                        if u == v:
                            raise ValueError(
                                f"self-loop edges are not allowed: ({u!r}, {v!r})"
                            )
                        try:
                            if v < u:
                                u, v = v, u
                        except TypeError:
                            if repr(v) < repr(u):
                                u, v = v, u
                        # Intern in label-canonical order *before* any
                        # validity checks — the pipeline decoder interns
                        # at decode time, so the inline paths must assign
                        # ids for malformed edge events too.
                        uid = iget(u)
                        if uid is None:
                            uid = iadd(u)
                        vid = iget(v)
                        if vid is None:
                            vid = iadd(v)
                    n_events += 1
                    n_adds += 1
                    if gadj is not None:
                        # Inline graph.add_edge_ids; the _id_count /
                        # _num_edges deltas are settled in finally.
                        n = len(gadj)
                        if uid >= n or vid >= n:
                            gadj.extend(
                                [None] * ((uid if uid > vid else vid) + 1 - n)
                            )
                        nu = gadj[uid]
                        if nu is None:
                            gadj[uid] = {vid: None}
                            g_vertices += 1
                        elif vid in nu:
                            if strict:
                                raise StreamError(
                                    f"duplicate ADD_EDGE "
                                    f"({label_of(uid)!r}, {label_of(vid)!r})"
                                )
                            n_malformed += 1
                            continue
                        else:
                            nu[vid] = None
                        nv = gadj[vid]
                        if nv is None:
                            gadj[vid] = {uid: None}
                            g_vertices += 1
                        else:
                            nv[uid] = None
                        g_edges += 1
                    if uid not in conn_ids:
                        conn_ids.add(uid)
                        fresh_append(uid)
                        structural = True
                    if vid not in conn_ids:
                        conn_ids.add(vid)
                        fresh_append(vid)
                        structural = True
                    if uid < vid:
                        ku = uid
                        kv = vid
                    else:
                        ku = vid
                        kv = uid
                    key = (ku << 32) | kv
                    # --- inline insert_fast(key) ---
                    population = reservoir._population + 1
                    reservoir._population = population
                    c_bad = reservoir._c_bad
                    pending = c_bad + reservoir._c_good
                    if pending:
                        bits = pending.bit_length()
                        r = getrandbits(bits)
                        while r >= pending:
                            r = getrandbits(bits)
                        if r < c_bad:
                            reservoir._c_bad = c_bad - 1
                            evicted = None
                        else:
                            reservoir._c_good -= 1
                            continue
                    elif len(slots) < capacity:
                        evicted = None
                    else:
                        bits = population.bit_length()
                        r = getrandbits(bits)
                        while r >= population:
                            r = getrandbits(bits)
                        if r >= capacity:
                            continue
                        size = len(slots)
                        bits = size.bit_length()
                        r = getrandbits(bits)
                        while r >= size:
                            r = getrandbits(bits)
                        evicted = slots[r]
                        pos = slot_of.pop(evicted)
                        last = slots.pop()
                        if pos < len(slots):
                            slots[pos] = last
                            slot_of[last] = pos
                    if key in slot_of:
                        raise ValueError(f"duplicate sample item {key!r}")
                    slot_of[key] = len(slots)
                    slots.append(key)
                    # --- end inline insert ---
                    n_admitted += 1
                    structural = True
                    if evicted is not None:
                        n_evicted += 1
                        ev_u = evicted >> 32
                        ev_v = evicted & _MASK32
                        adj[ev_u].discard(ev_v)
                        adj[ev_v].discard(ev_u)
                        if probing:
                            cid = comp[ev_u]
                            if not adj[ev_u]:
                                n_splits += 1
                                del comp[ev_u]
                                if not adj[ev_v]:
                                    del comp[ev_v]
                                    del comp_size[cid]
                                else:
                                    comp_size[cid] -= 1
                            elif not adj[ev_v]:
                                n_splits += 1
                                del comp[ev_v]
                                comp_size[cid] -= 1
                            else:
                                side = split_check(ev_u, ev_v)
                                if side is None:
                                    probing = False
                                    self.probe_budget_hits += 1
                                elif side is not True:
                                    n_splits += 1
                                    comp_size[cid] -= len(side)
                                    comp_size[comp_next] = len(side)
                                    for x in side:
                                        comp[x] = comp_next
                                    comp_next += 1
                        ops.append((False, ev_u, ev_v))
                        delta = diff.get(evicted, 0) - 1
                        if delta:
                            diff[evicted] = delta
                        else:
                            del diff[evicted]
                    if probing:
                        cu = comp_get(ku)
                        cv = comp_get(kv)
                        if cu is None:
                            n_merges += 1
                            if cv is None:
                                comp[ku] = comp[kv] = comp_next
                                comp_size[comp_next] = 2
                                comp_next += 1
                            else:
                                comp[ku] = cv
                                comp_size[cv] += 1
                        elif cv is None:
                            n_merges += 1
                            comp[kv] = cu
                            comp_size[cu] += 1
                        elif cu != cv:
                            n_merges += 1
                            # Relabel the smaller component into the
                            # larger before the new edge joins them.
                            if comp_size[cu] < comp_size[cv]:
                                small, into, start = cu, cv, ku
                            else:
                                small, into, start = cv, cu, kv
                            comp[start] = into
                            stack = [start]
                            while stack:
                                x = stack.pop()
                                for y in adj[x]:
                                    if comp[y] != into:
                                        comp[y] = into
                                        stack.append(y)
                            comp_size[into] += comp_size.pop(small)
                    neighbours = adj.get(ku)
                    if neighbours is None:
                        adj[ku] = {kv}
                    else:
                        neighbours.add(kv)
                    neighbours = adj.get(kv)
                    if neighbours is None:
                        adj[kv] = {ku}
                    else:
                        neighbours.add(ku)
                    ops.append((True, ku, kv))
                    delta = diff.get(key, 0) + 1
                    if delta:
                        diff[key] = delta
                    else:
                        del diff[key]
                elif kind is kind_del:
                    if interned:
                        uid = u
                        vid = v
                    else:
                        if u == v:
                            raise ValueError(
                                f"self-loop edges are not allowed: ({u!r}, {v!r})"
                            )
                        try:
                            if v < u:
                                u, v = v, u
                        except TypeError:
                            if repr(v) < repr(u):
                                u, v = v, u
                        uid = iget(u)
                        if uid is None:
                            uid = iadd(u)
                        vid = iget(v)
                        if vid is None:
                            vid = iadd(v)
                    n_events += 1
                    n_deletes += 1
                    if graph is not None and not graph.remove_edge_ids(uid, vid):
                        if strict:
                            raise StreamError(
                                f"DELETE_EDGE of absent edge "
                                f"({label_of(uid)!r}, {label_of(vid)!r})"
                            )
                        n_malformed += 1
                        continue
                    if uid < vid:
                        ku = uid
                        kv = vid
                    else:
                        ku = vid
                        kv = uid
                    key = (ku << 32) | kv
                    if reservoir_delete(key):
                        n_sample_del += 1
                        structural = True
                        adj[ku].discard(kv)
                        adj[kv].discard(ku)
                        if probing:
                            cid = comp[ku]
                            if not adj[ku]:
                                n_splits += 1
                                del comp[ku]
                                if not adj[kv]:
                                    del comp[kv]
                                    del comp_size[cid]
                                else:
                                    comp_size[cid] -= 1
                            elif not adj[kv]:
                                n_splits += 1
                                del comp[kv]
                                comp_size[cid] -= 1
                            else:
                                side = split_check(ku, kv)
                                if side is None:
                                    probing = False
                                    self.probe_budget_hits += 1
                                elif side is not True:
                                    n_splits += 1
                                    comp_size[cid] -= len(side)
                                    comp_size[comp_next] = len(side)
                                    for x in side:
                                        comp[x] = comp_next
                                    comp_next += 1
                        ops.append((False, ku, kv))
                        delta = diff.get(key, 0) - 1
                        if delta:
                            diff[key] = delta
                        else:
                            del diff[key]
                elif kind is kind_addv:
                    if interned:
                        raise ValueError(
                            "interned batches may contain only edge events"
                        )
                    if v is not None:
                        raise ValueError(f"{kind.value} event takes a single vertex")
                    n_events += 1
                    n_vadds += 1
                    uid = iget(u)
                    if uid is None:
                        uid = iadd(u)
                    if graph is not None:
                        graph.add_vertex_id(uid)
                    if uid not in conn_ids:
                        conn_ids.add(uid)
                        fresh_append(uid)
                        structural = True
                else:
                    # DELETE_VERTEX (or an unknown kind, which apply()
                    # rejects): a barrier needing live connectivity.
                    if interned:
                        raise ValueError(
                            "interned batches may contain only edge events"
                        )
                    if type(event) is tuple:
                        event = EdgeEvent(kind, u, v)
                    barrier = event
                    break
        finally:
            if graph is not None:
                graph._id_count += g_vertices
                graph._num_edges += g_edges
            stats = self.stats
            stats.events += n_events
            stats.edge_adds += n_adds
            stats.edge_deletes += n_deletes
            stats.vertex_adds += n_vadds
            stats.admissions += n_admitted
            stats.evictions += n_evicted
            stats.sample_deletions += n_sample_del
            stats.malformed_events += n_malformed
            self._comp_next = comp_next
            if ops and not probing:
                # The labels stopped being maintained (budget hit) or
                # never were (lazy backend): rebuild before next use.
                self._comp_dirty = True
            if ops:
                if probing:
                    merges, splits = n_merges, n_splits
                else:
                    merges, splits = self._resolve_ops(base_labels, ops)
                stats.component_merges += merges
                stats.component_splits += splits
            self._conn_stale = bool(diff) or bool(self._conn_fresh)
            if (
                not self._conn_stale
                and self._lazy_dirty
                and hasattr(self._conn, "mark_dirty")
            ):
                # The net diff cancelled out, so no flush will run — but a
                # deletion still happened, and the per-event path would
                # have dirtied the lazy backend's cache.
                self._conn.mark_dirty()
            if structural:
                self._invalidate()
            if _obs._ENABLED:
                self.sync_metrics()
        return barrier

    def _split_components(
        self, u: int, v: int, budget: int = 1024
    ) -> Union[None, bool, Set[int]]:
        """Did deleting sampled edge ``(u, v)`` split their component?

        Bidirectional BFS over the (already updated) sample adjacency,
        always expanding the smaller frontier. Returns ``True`` if the
        endpoints are still connected, ``None`` once the search has
        visited ``budget`` vertices (the batch loop then falls back to
        offline resolution and rebuilds the component labels), and on a
        split the full vertex set of the side whose frontier exhausted —
        exactly the set the caller must relabel, discovered for free by
        the search that proved the split.
        """
        adj = self._sample_adj
        frontier_a = adj[u]
        frontier_b = adj[v]
        if not frontier_a.isdisjoint(frontier_b):
            # Common neighbour: the endpoints sat on a triangle, so the
            # deletion cannot have split them. Catches most "still
            # connected" answers on clustered graphs for one C-level
            # set intersection test.
            return True
        seen_a = {u}
        seen_b = {v}
        visited = 2
        while frontier_a and frontier_b:
            if visited > budget:
                return None
            if len(frontier_a) > len(frontier_b):
                frontier_a, frontier_b = frontier_b, frontier_a
                seen_a, seen_b = seen_b, seen_a
            if not frontier_a.isdisjoint(seen_b):
                return True
            frontier_a = frontier_a - seen_a
            seen_a |= frontier_a
            visited += len(frontier_a)
            layer: Set[int] = set()
            for x in frontier_a:
                layer |= adj[x]
            frontier_a = layer
        if not frontier_a.isdisjoint(seen_b) or not frontier_b.isdisjoint(
            seen_a
        ):
            return True
        return seen_a if not frontier_a else seen_b

    def _rebuild_components(self) -> None:
        """Recompute the sample component labels in one O(sample) pass.

        Runs at the top of a batch when anything outside the batch loop
        mutated the sample (per-event ingestion, a resample, a restore)
        or a split check ran out of budget mid-batch.
        """
        adj = self._sample_adj
        comp: Dict[int, int] = {}
        sizes: Dict[int, int] = {}
        cid = 0
        for start, neighbours in adj.items():
            if start in comp or not neighbours:
                continue
            members = [start]
            comp[start] = cid
            for x in members:
                for y in adj[x]:
                    if y not in comp:
                        comp[y] = cid
                        members.append(y)
            sizes[cid] = len(members)
            cid += 1
        self._comp = comp
        self._comp_size = sizes
        self._comp_next = cid
        self._comp_dirty = False

    def _pre_batch_sample(self, ops: List[Tuple[bool, int, int]]) -> Set[int]:
        """Reconstruct the pre-batch sample by reversing the op timeline.

        The batch loop never snapshots the reservoir (most batches
        resolve every boolean by probing and never need the base), so
        the rare offline paths rebuild it here: walk the recorded
        mutations backwards from the current (post-batch) sample.
        """
        sample = set(self._reservoir)
        for is_insert, u, v in reversed(ops):
            key = (u << 32) | v
            if is_insert:
                sample.discard(key)
            else:
                sample.add(key)
        return sample

    def _resolve_ops(
        self,
        base_labels: Optional[Dict[int, int]],
        ops: List[Tuple[bool, int, int]],
    ) -> Tuple[int, int]:
        """Exact merge/split counts for a batch's sample mutations.

        For the hdt/naive backends this reproduces the online structure's
        exact booleans via offline divide-and-conquer connectivity (with
        an O(ops) union-find shortcut for deletion-free timelines). For
        the lazy backend it reproduces that backend's documented
        conservative semantics: exact while its cache would be clean,
        "always True" once a deletion would have dirtied it.
        """
        if self.config.connectivity_backend == "lazy":
            merges = splits = 0
            dirty = self._lazy_dirty
            rest = ops
            if not dirty:
                first_delete = len(ops)
                for t, op in enumerate(ops):
                    if not op[0]:
                        first_delete = t
                        break
                if first_delete:
                    merges += self._count_insert_merges(
                        base_labels, ops[:first_delete], ops
                    )
                rest = ops[first_delete:]
            for op in rest:
                if op[0]:
                    merges += 1
                else:
                    splits += 1
                    dirty = True
            self._lazy_dirty = dirty
            return merges, splits
        for op in ops:
            if not op[0]:
                break
        else:
            return self._count_insert_merges(base_labels, ops, ops), 0
        self.offline_resolves += 1
        # The resolver consults the base edge set only when it cannot use
        # the cached component labels — no labels available, or the
        # timeline deletes a base edge (one the batch did not insert).
        need_base = base_labels is None
        if not need_base:
            open_keys: Set[int] = set()
            for is_insert, u, v in ops:
                key = (u << 32) | v
                if is_insert:
                    open_keys.add(key)
                elif key in open_keys:
                    open_keys.discard(key)
                else:
                    need_base = True
                    break
        base_edges: Iterable[Tuple[int, int]] = ()
        if need_base:
            base_edges = [
                (key >> 32, key & _MASK32) for key in self._pre_batch_sample(ops)
            ]
        flags = resolve_sample_timeline(base_edges, ops, base_labels=base_labels)
        merges = splits = 0
        for op, flag in zip(ops, flags):
            if flag:
                if op[0]:
                    merges += 1
                else:
                    splits += 1
        return merges, splits

    def _count_insert_merges(
        self,
        base_labels: Optional[Dict[int, int]],
        inserts: List[Tuple[bool, int, int]],
        all_ops: List[Tuple[bool, int, int]],
    ) -> int:
        """Merge count for a deletion-free insert timeline (plain DSU).

        ``inserts`` may be a prefix of ``all_ops`` (the lazy backend
        counts only up to the first deletion); the full timeline is what
        reconstructs the pre-batch sample when no labels are cached.
        """
        uf = UnionFind()
        union = uf.union
        merges = 0
        if base_labels is None:
            for key in self._pre_batch_sample(all_ops):
                union(key >> 32, key & _MASK32)
            for _, u, v in inserts:
                if union(u, v):
                    merges += 1
        else:
            get_label = base_labels.get
            for _, u, v in inserts:
                if union(get_label(u, u), get_label(v, v)):
                    merges += 1
        return merges

    def _flush_conn(self) -> None:
        """Apply the deferred net edge diff to the connectivity structure.

        Return values are discarded — the exact merge/split outcomes were
        already resolved offline per batch. Deletes go first so an edge
        slot freed by one net change can be refilled by another.
        """
        conn = self._conn
        fresh = self._conn_fresh
        if fresh:
            add = conn.add_vertex
            for vid in fresh:
                add(vid)
            fresh.clear()
        diff = self._conn_diff
        inserts: List[int] = []
        for key, delta in diff.items():
            if delta < 0:
                conn.delete_edge(key >> 32, key & _MASK32)
            else:
                inserts.append(key)
        for key in inserts:
            conn.insert_edge(key >> 32, key & _MASK32)
        diff.clear()
        self._conn_stale = False
        if self._lazy_dirty and hasattr(conn, "mark_dirty"):
            conn.mark_dirty()

    def _invalidate(self) -> None:
        self._labels_cache = None
        self._partition_cache = None
        self.structure_version += 1

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_add_edge(self, u: Vertex, v: Vertex) -> None:
        # u, v arrive in label-canonical order (EdgeEvent canonicalizes);
        # interning u-then-v here matches the batched and pipeline paths.
        self.stats.edge_adds += 1
        intern = self._intern
        uid = intern.intern(u)
        vid = intern.intern(v)
        if self._graph is not None:
            if not self._graph.add_edge_ids(uid, vid):
                self._malformed(f"duplicate ADD_EDGE ({u!r}, {v!r})")
                return
        conn_ids = self._conn_ids
        fresh = False
        if uid not in conn_ids:
            self._conn.add_vertex(uid)
            conn_ids.add(uid)
            fresh = True
        if vid not in conn_ids:
            self._conn.add_vertex(vid)
            conn_ids.add(vid)
            fresh = True
        if fresh:
            self._conn_epoch += 1
            self._invalidate()
        key = (uid << 32) | vid if uid < vid else (vid << 32) | uid
        proposal = self._reservoir.propose_insert(key)
        if not proposal.admit:
            return
        if not self.config.constraint.allows(self._conn, uid, vid):
            self._reservoir.abort(proposal)
            self.stats.vetoes += 1
            return
        self._reservoir.commit(proposal)
        self._invalidate()
        self._comp_dirty = True
        self.stats.admissions += 1
        adj = self._sample_adj
        evicted = proposal.evicted
        if evicted is not None:
            self.stats.evictions += 1
            ev_u = evicted >> 32
            ev_v = evicted & _MASK32
            adj[ev_u].discard(ev_v)
            adj[ev_v].discard(ev_u)
            if self._conn.delete_edge(ev_u, ev_v):
                self.stats.component_splits += 1
        ku = key >> 32
        kv = key & _MASK32
        adj.setdefault(ku, set()).add(kv)
        adj.setdefault(kv, set()).add(ku)
        if self._conn.insert_edge(uid, vid):
            self.stats.component_merges += 1

    def _on_delete_edge(self, u: Vertex, v: Vertex) -> None:
        self.stats.edge_deletes += 1
        intern = self._intern
        uid = intern.intern(u)
        vid = intern.intern(v)
        if self._graph is not None:
            if not self._graph.remove_edge_ids(uid, vid):
                self._malformed(f"DELETE_EDGE of absent edge ({u!r}, {v!r})")
                return
        key = (uid << 32) | vid if uid < vid else (vid << 32) | uid
        if self._reservoir.delete(key):
            self.stats.sample_deletions += 1
            self._invalidate()
            self._comp_dirty = True
            ku = key >> 32
            kv = key & _MASK32
            self._sample_adj[ku].discard(kv)
            self._sample_adj[kv].discard(ku)
            if self._conn.delete_edge(ku, kv):
                self.stats.component_splits += 1
        self._maybe_resample()

    def _on_add_vertex(self, v: Vertex) -> None:
        self.stats.vertex_adds += 1
        uid = self._intern.intern(v)
        if self._graph is not None:
            self._graph.add_vertex_id(uid)
        if uid not in self._conn_ids:
            self._conn.add_vertex(uid)
            self._conn_ids.add(uid)
            self._conn_epoch += 1
            self._invalidate()

    def _on_delete_vertex(self, v: Vertex) -> None:
        self.stats.vertex_deletes += 1
        if self._graph is None:
            raise UnsupportedOperationError(
                "DELETE_VERTEX requires track_graph=True: a pure edge "
                "reservoir cannot enumerate the incident edges to remove"
            )
        # A vertex deletion never interns: the pipeline decoder leaves
        # vertex events in label space for exactly this reason (a
        # DELETE_VERTEX of an unknown vertex must not allocate an id, or
        # inline and pipeline intern tables would diverge).
        uid = self._intern.id_of(v)
        if uid is None or not self._graph.has_vertex_id(uid):
            self._malformed(f"DELETE_VERTEX of absent vertex {v!r}")
            return
        self._invalidate()
        adj = self._sample_adj
        for key in self._graph.remove_vertex_id(uid):
            if self._reservoir.delete(key):
                self.stats.sample_deletions += 1
                self._comp_dirty = True
                ku = key >> 32
                kv = key & _MASK32
                adj[ku].discard(kv)
                adj[kv].discard(ku)
                if self._conn.delete_edge(ku, kv):
                    self.stats.component_splits += 1
        if self._conn.remove_vertex_if_isolated(uid):
            self._conn_ids.discard(uid)
            self._conn_epoch += 1
        self._maybe_resample()

    def _malformed(self, message: str) -> None:
        if self.config.strict:
            raise StreamError(message)
        self.stats.malformed_events += 1

    # ------------------------------------------------------------------
    # Resample policy (ablation comparator)
    # ------------------------------------------------------------------
    def _maybe_resample(self) -> None:
        if self.config.deletion_policy is not DeletionPolicy.RESAMPLE:
            return
        assert self._graph is not None  # enforced by ClustererConfig
        capacity = self.config.reservoir_capacity
        target = min(capacity, self._graph.num_edges)
        if len(self._reservoir) >= self.config.resample_threshold * target:
            return
        self._rebuild_sample()

    def _rebuild_sample(self) -> None:
        """Rebuild reservoir + connectivity from the tracked graph (O(m))."""
        assert self._graph is not None
        self.stats.resamples += 1
        self._invalidate()
        self._conn_stale = False
        self._conn_diff.clear()
        self._conn_fresh.clear()
        self._reservoir = self._make_reservoir(
            child_seed(self.config.seed, "reservoir", self.stats.resamples)
        )
        self._conn = make_connectivity(
            self.config.connectivity_backend,
            seed=child_seed(self.config.seed, "connectivity", self.stats.resamples),
        )
        self._lazy_dirty = bool(getattr(self._conn, "dirty", False))
        self._conn_epoch += 1
        conn_ids = self._conn_ids
        conn_ids.clear()
        for vid in self._graph.vertex_ids():
            self._conn.add_vertex(vid)
            conn_ids.add(vid)
        # Sort before shuffling: edge_list() order reflects adjacency
        # layout, which is not reproducible across processes (string
        # hashing) or checkpoint restores; sorting makes the shuffled
        # order a pure function of the edge set and the rebuild RNG.
        id_of = self._intern.id_of
        edges = sorted(self._graph.edge_list(), key=repr)
        self._rebuild_rng.shuffle(edges)
        for u, v in edges:
            uid = id_of(u)
            vid = id_of(v)
            key = (uid << 32) | vid if uid < vid else (vid << 32) | uid
            proposal = self._reservoir.propose_insert(key)
            if not proposal.admit:
                continue
            if not self.config.constraint.allows(self._conn, uid, vid):
                self._reservoir.abort(proposal)
                self.stats.vetoes += 1
                continue
            self._reservoir.commit(proposal)
            evicted = proposal.evicted
            if evicted is not None:
                self._conn.delete_edge(evicted >> 32, evicted & _MASK32)
            self._conn.insert_edge(uid, vid)
        adj = self._sample_adj
        adj.clear()
        for key in self._reservoir:
            ku = key >> 32
            kv = key & _MASK32
            adj.setdefault(ku, set()).add(kv)
            adj.setdefault(kv, set()).add(ku)
        self._comp_dirty = True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _extern_key(self, key: int) -> Edge:
        """Packed id key → label-canonical edge tuple."""
        label_of = self._intern.label_of
        return canonical_edge(label_of(key >> 32), label_of(key & _MASK32))

    def get_state(self) -> dict:
        """Complete serializable state for checkpointing (format 2).

        The connectivity structure is *not* serialized: it holds exactly
        the sampled edges, so it is rebuilt from the reservoir and the
        vertex set on restore. Component structure (the clustering) is
        an exact function of those, so the rebuilt structure answers
        every query identically; only its internal balancing randomness
        differs, which is unobservable. Any deferred batch diff is
        flushed first, so batched and per-event runs checkpoint
        identically.

        Everything label-facing is externalized: the intern table as a
        label list in id order, the reservoir sample as label-canonical
        edge tuples in slot order, the connectivity vertex set as labels
        in registration order.
        """
        if self._conn_stale:
            self._flush_conn()
        if self._kernel is not None:
            self._kernel.settle_stats()
        extern_key = self._extern_key
        reservoir_state = self._reservoir.get_state()
        reservoir_state["items"] = [
            extern_key(key) for key in reservoir_state["items"]
        ]
        label_of = self._intern.label_of
        return {
            "format": STATE_FORMAT
            if self.config.kernel == "scalar"
            else STATE_FORMAT_NUMPY,
            "config": self.config,
            "stats": self.stats.as_dict(),
            "intern": self._intern.labels(),
            "reservoir": reservoir_state,
            "conn_vertices": [label_of(vid) for vid in self._conn.vertices()],
            "conn_dirty": bool(getattr(self._conn, "dirty", False)),
            "rebuild_rng_state": self._rebuild_rng.getstate(),
            "graph": self._graph.get_state() if self._graph is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingGraphClusterer":
        """Reconstruct a clusterer from :meth:`get_state` output.

        The restored clusterer replays any stream tail to the *identical*
        partition, stats, and reservoir as an uninterrupted run: the
        intern table, reservoir RNG state and slot order, the rebuild
        RNG, and the tracked graph are exact, and connectivity answers
        are exact by construction.

        Format-1 states (pre-interning; no ``"format"`` key) still load:
        the intern table is derived from the persisted label-space
        structures. The restored clusterer is functionally identical —
        ids are internal and unobservable — though its future
        checkpoints are emitted in format 2.
        """
        config: ClustererConfig = normalize_config(state["config"])
        if state.get("format", 1) >= 3 and config.kernel != "numpy":
            raise ValueError(
                "corrupt clusterer state: format-3 checkpoints are only "
                "written by the numpy kernel, but the embedded config "
                f"says kernel={config.kernel!r}"
            )
        clusterer = cls(config)
        clusterer.stats = ClustererStats(**state["stats"])
        intern = clusterer._intern
        if state.get("format", 1) >= 2:
            for label in state["intern"]:
                intern.intern(label)
            if len(intern) != len(state["intern"]):
                raise ValueError("corrupt intern table: duplicate label")
        else:
            # Format 1 carried no table; rebuild one from every persisted
            # label-space structure. Order is arbitrary-but-deterministic
            # (ids are not observable), coverage is what matters.
            for label in state["conn_vertices"]:
                intern.intern(label)
            for u, v in state["reservoir"]["items"]:
                intern.intern(u)
                intern.intern(v)
            graph_state = state["graph"]
            if graph_state is not None:
                for label in graph_state["vertices"]:
                    intern.intern(label)
        id_of = intern.id_of
        reservoir_state = dict(state["reservoir"])
        packed_items: List[int] = []
        for u, v in reservoir_state["items"]:
            uid = id_of(u)
            vid = id_of(v)
            if uid is None or vid is None:
                raise ValueError(
                    f"corrupt clusterer state: sampled edge ({u!r}, {v!r}) "
                    f"is missing from the intern table"
                )
            packed_items.append(
                (uid << 32) | vid if uid < vid else (vid << 32) | uid
            )
        reservoir_state["items"] = packed_items
        if config.kernel == "numpy":
            from repro.sampling.vectorized import NumpyPackedEdgeReservoir

            clusterer._reservoir = NumpyPackedEdgeReservoir.from_state(
                reservoir_state, id_limit=len(intern)
            )
        else:
            clusterer._reservoir = PackedEdgeReservoir.from_state(
                reservoir_state, id_limit=len(intern)
            )
        adj = clusterer._sample_adj
        for key in clusterer._reservoir:
            ku = key >> 32
            kv = key & _MASK32
            adj.setdefault(ku, set()).add(kv)
            adj.setdefault(kv, set()).add(ku)
        clusterer._comp_dirty = True
        resamples = clusterer.stats.resamples
        conn_seed = (
            child_seed(config.seed, "connectivity")
            if resamples == 0
            else child_seed(config.seed, "connectivity", resamples)
        )
        conn = make_connectivity(config.connectivity_backend, seed=conn_seed)
        conn_ids = clusterer._conn_ids
        for label in state["conn_vertices"]:
            vid = id_of(label)
            if vid is None:
                raise ValueError(
                    f"corrupt clusterer state: connectivity vertex {label!r} "
                    f"is missing from the intern table"
                )
            conn.add_vertex(vid)
            conn_ids.add(vid)
        for key in clusterer._reservoir:
            conn.insert_edge(key >> 32, key & _MASK32)
        if state.get("conn_dirty") and hasattr(conn, "mark_dirty"):
            conn.mark_dirty()
        clusterer._conn = conn
        clusterer._conn_epoch += 1
        clusterer._lazy_dirty = bool(getattr(conn, "dirty", False))
        clusterer._rebuild_rng = make_rng(0)
        clusterer._rebuild_rng.setstate(state["rebuild_rng_state"])
        graph_state = state["graph"]
        clusterer._graph = (
            AdjacencyGraph.from_state(graph_state, interner=intern)
            if graph_state is not None
            else None
        )
        return clusterer

    # ------------------------------------------------------------------
    # Clustering queries
    # ------------------------------------------------------------------
    def _labels(self) -> Dict[int, int]:
        """Vertex id → component-representative id over the current sample.

        Built directly from the reservoir and the vertex universe (both
        always current, even while connectivity updates are deferred) and
        cached until the next structural change.
        """
        labels = self._labels_cache
        if labels is None:
            uf = UnionFind()
            union = uf.union
            for key in self._reservoir:
                union(key >> 32, key & _MASK32)
            find = uf.find
            labels = {vid: find(vid) for vid in self._conn.vertices()}
            for vid in self._conn_fresh:
                labels[vid] = find(vid)
            self._labels_cache = labels
        return labels

    def cluster_id(self, v: Vertex) -> object:
        """Opaque id of ``v``'s cluster, valid until the next update."""
        uid = self._intern.id_of(v)
        if uid is None:
            return frozenset({v})
        if self._conn_stale:
            labels = self._labels()
            if uid in labels:
                return labels[uid]
        members = getattr(self._conn, "component_id", None)
        if members is not None:
            return members(uid)
        return frozenset(self._conn.component_members(uid))

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices clustered with ``v`` (including ``v``)."""
        uid = self._intern.id_of(v)
        if uid is None:
            return frozenset({v})
        if self._conn_stale:
            partition = self.snapshot()
            if v in partition:
                return partition.members(partition.label_of(v))
        label_of = self._intern.label_of
        return frozenset(
            label_of(member) for member in self._conn.component_members(uid)
        )

    def cluster_size(self, v: Vertex) -> int:
        """Size of ``v``'s cluster (1 for unseen vertices)."""
        uid = self._intern.id_of(v)
        if uid is None:
            return 1
        if self._conn_stale:
            partition = self.snapshot()
            if v in partition:
                return len(partition.members(partition.label_of(v)))
        return self._conn.component_size(uid)

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are currently in the same cluster."""
        id_of = self._intern.id_of
        uid = id_of(u)
        vid = id_of(v)
        if uid is None or vid is None:
            # Never-seen labels are singletons (the connectivity
            # structures' documented unknown-vertex contract).
            return u == v
        if self._conn_stale:
            labels = self._labels()
            label_u = labels.get(uid)
            label_v = labels.get(vid)
            if label_u is not None and label_v is not None:
                return label_u == label_v
        return self._conn.connected(uid, vid)

    @property
    def num_clusters(self) -> int:
        """Number of clusters (components of the sampled sub-graph)."""
        if self._conn_stale:
            return self.snapshot().num_clusters
        return self._conn.num_components

    @property
    def num_vertices(self) -> int:
        """Number of vertices the clusterer has seen and not deleted."""
        # `_conn_ids` mirrors the connectivity universe and, unlike the
        # structure itself, already includes batch-deferred vertices.
        return len(self._conn_ids)

    def snapshot(self) -> Partition:
        """The current clustering as an immutable :class:`Partition`.

        Cached until the next structural change (admission, sample
        deletion, or vertex-set change), so repeated quality probes
        between updates cost a dict lookup, not a re-extraction.
        """
        partition = self._partition_cache
        if partition is None:
            label_of = self._intern.label_of
            if self._conn_stale:
                partition = Partition(
                    {
                        label_of(vid): label_of(rep)
                        for vid, rep in self._labels().items()
                    }
                )
            else:
                partition = Partition.from_clusters(
                    [
                        {label_of(member) for member in members}
                        for members in self._conn.components()
                    ]
                )
            self._partition_cache = partition
            self.partition_builds += 1
            if _obs._ENABLED:
                self.sync_metrics()
        return partition

    def vertices(self) -> Iterable[Vertex]:
        """Iterate over all vertices the clusterer currently knows."""
        label_of = self._intern.label_of
        ids = list(self._conn.vertices())
        ids.extend(self._conn_fresh)
        return [label_of(vid) for vid in ids]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    _METRIC_STAT_FIELDS = (
        "events",
        "edge_adds",
        "edge_deletes",
        "vertex_adds",
        "vertex_deletes",
        "admissions",
        "vetoes",
        "evictions",
        "sample_deletions",
        "component_merges",
        "component_splits",
        "malformed_events",
        "resamples",
    )
    _METRIC_PROBE_FIELDS = (
        "partition_builds",
        "probe_budget_hits",
        "offline_resolves",
        "kernel_batches",
        "kernel_events",
        "kernel_fallback_events",
    )

    def sync_metrics(self) -> None:
        """Publish this clusterer's counters and gauges to the default
        metrics registry (``clusterer.*`` — see docs/observability.md).

        Counter deltas since the previous sync are added, so several
        clusterers (e.g. shards) aggregate into the same series; gauges
        (reservoir occupancy/fill, vertex count) are overwritten. Called
        automatically at batch and stream boundaries when
        :mod:`repro.obs` is enabled; per-event hot paths never pay more
        than the single enabling branch.
        """
        registry = _obs.default_registry()
        counter = registry.counter
        last = self._metrics_last
        # Read the raw stats, NOT the settling ``stats`` property: forcing
        # the numpy kernel to settle its merge/split estimates on every
        # batch-boundary sync would defeat the deferred-settlement design.
        # The kernel's interval-granular deltas flow into the counters at
        # the next sync after a true settlement point instead.
        stats = self._stats
        for name in self._METRIC_STAT_FIELDS:
            value = getattr(stats, name)
            prev = last.get(name, 0)
            if value > prev:
                counter("clusterer." + name).inc(value - prev)
                last[name] = value
        for name in self._METRIC_PROBE_FIELDS:
            value = getattr(self, name)
            prev = last.get(name, 0)
            if value > prev:
                counter("clusterer." + name).inc(value - prev)
                last[name] = value
        size = len(self._reservoir)
        registry.gauge("clusterer.reservoir_size").set(size)
        registry.gauge("clusterer.reservoir_fill").set(
            size / self.config.reservoir_capacity
        )
        registry.gauge("clusterer.num_vertices").set(len(self._conn_ids))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def interner(self) -> VertexInterner:
        """The label ↔ id table shared by every internal structure."""
        return self._intern

    @property
    def reservoir_size(self) -> int:
        """Number of edges currently sampled."""
        return len(self._reservoir)

    def sample_structure_bytes(self) -> int:
        """Resident bytes of the sample structures (``sys.getsizeof``).

        Counts the reservoir slot storage (an ``array('Q')`` of packed
        edge keys), the item→slot index with its key objects, the
        deferred-batch sample adjacency, and the incremental component
        labels over it — the per-sampled-edge state the dense-id
        refactor shrank. An accounting estimate for E10-style
        comparisons, not an allocator-exact figure.
        """
        if self._kernel is not None:
            self._kernel.sync()
        reservoir = self._reservoir
        size = getsizeof(reservoir._slots) + getsizeof(reservoir._slot_of)
        for key in reservoir._slot_of:
            size += getsizeof(key)
        adj = self._sample_adj
        size += getsizeof(adj)
        for neighbours in adj.values():
            size += getsizeof(neighbours)
        return size + getsizeof(self._comp) + getsizeof(self._comp_size)

    def reservoir_edges(self) -> List[Edge]:
        """The sampled edges as label-canonical tuples (copy)."""
        extern_key = self._extern_key
        return [extern_key(key) for key in self._reservoir]

    @property
    def graph(self) -> Optional[AdjacencyGraph]:
        """The tracked full graph, or None in the lean memory mode."""
        return self._graph

    def __repr__(self) -> str:
        return (
            f"StreamingGraphClusterer(vertices={self.num_vertices}, "
            f"clusters={self.num_clusters}, reservoir={self.reservoir_size}/"
            f"{self.config.reservoir_capacity})"
        )
