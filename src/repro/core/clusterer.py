"""The streaming graph clusterer — the paper's primary contribution.

:class:`StreamingGraphClusterer` consumes a stream of vertex/edge
additions and deletions and maintains, at all times, a clustering of the
current graph defined as the **connected components of a reservoir
sample of the edges**:

1. A :class:`~repro.sampling.random_pairing.RandomPairingReservoir`
   keeps a bounded uniform sample of the live edge set under additions
   and deletions.
2. Admissions that would merge components may be vetoed by a
   :class:`~repro.core.constraints.ConstraintPolicy` (bounding cluster
   sizes or the number of clusters — the paper's "desired properties").
3. A fully-dynamic connectivity structure
   (:class:`~repro.connectivity.hdt.HDTConnectivity` by default) keeps
   the components of the sampled sub-graph current as sampled edges come
   and go.

Every update is processed online and incrementally in amortized
poly-logarithmic time; no pass over the full graph is ever required
(unless the optional RESAMPLE deletion policy is selected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.connectivity import make_connectivity
from repro.core.config import ClustererConfig, DeletionPolicy
from repro.errors import StreamError, UnsupportedOperationError
from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.sampling.random_pairing import RandomPairingReservoir
from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventKind,
    Vertex,
    canonical_edge,
)
from repro.util.rng import child_seed, make_rng

__all__ = ["ClustererStats", "StreamingGraphClusterer"]


@dataclass
class ClustererStats:
    """Counters describing the work a clusterer has performed."""

    events: int = 0
    edge_adds: int = 0
    edge_deletes: int = 0
    vertex_adds: int = 0
    vertex_deletes: int = 0
    admissions: int = 0
    vetoes: int = 0
    evictions: int = 0
    sample_deletions: int = 0
    component_merges: int = 0
    component_splits: int = 0
    malformed_events: int = 0
    resamples: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging / result records)."""
        return dict(self.__dict__)


class StreamingGraphClusterer:
    """Online, incremental clustering by graph reservoir sampling.

    >>> from repro.core.config import ClustererConfig
    >>> from repro.streams.events import add_edge
    >>> clusterer = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=100))
    >>> for u, v in [(1, 2), (2, 3), (7, 8)]:
    ...     clusterer.apply(add_edge(u, v))
    >>> clusterer.same_cluster(1, 3)
    True
    >>> clusterer.same_cluster(1, 7)
    False
    """

    def __init__(self, config: ClustererConfig) -> None:
        self.config = config
        self.stats = ClustererStats()
        self._reservoir: RandomPairingReservoir[Edge] = RandomPairingReservoir(
            config.reservoir_capacity, seed=child_seed(config.seed, "reservoir")
        )
        self._conn = make_connectivity(
            config.connectivity_backend, seed=child_seed(config.seed, "connectivity")
        )
        self._graph: Optional[AdjacencyGraph] = (
            AdjacencyGraph() if config.track_graph else None
        )
        self._rebuild_rng = make_rng(child_seed(config.seed, "rebuild"))

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Process one stream event."""
        self.stats.events += 1
        kind = event.kind
        if kind is EventKind.ADD_EDGE:
            self._on_add_edge(event.u, event.v)
        elif kind is EventKind.DELETE_EDGE:
            self._on_delete_edge(event.u, event.v)
        elif kind is EventKind.ADD_VERTEX:
            self._on_add_vertex(event.u)
        elif kind is EventKind.DELETE_VERTEX:
            self._on_delete_vertex(event.u)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unknown event kind {kind!r}")

    def process(self, events: Iterable[EdgeEvent]) -> "StreamingGraphClusterer":
        """Process a whole stream; returns self for chaining."""
        for event in events:
            self.apply(event)
        return self

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_add_edge(self, u: Vertex, v: Vertex) -> None:
        self.stats.edge_adds += 1
        if self._graph is not None:
            if not self._graph.add_edge(u, v):
                self._malformed(f"duplicate ADD_EDGE ({u!r}, {v!r})")
                return
        self._conn.add_vertex(u)
        self._conn.add_vertex(v)
        edge = canonical_edge(u, v)
        proposal = self._reservoir.propose_insert(edge)
        if not proposal.admit:
            return
        if not self.config.constraint.allows(self._conn, u, v):
            self._reservoir.abort(proposal)
            self.stats.vetoes += 1
            return
        self._reservoir.commit(proposal)
        self.stats.admissions += 1
        if proposal.evicted is not None:
            self.stats.evictions += 1
            if self._conn.delete_edge(*proposal.evicted):
                self.stats.component_splits += 1
        if self._conn.insert_edge(u, v):
            self.stats.component_merges += 1

    def _on_delete_edge(self, u: Vertex, v: Vertex) -> None:
        self.stats.edge_deletes += 1
        if self._graph is not None:
            if not self._graph.remove_edge(u, v):
                self._malformed(f"DELETE_EDGE of absent edge ({u!r}, {v!r})")
                return
        edge = canonical_edge(u, v)
        if self._reservoir.delete(edge):
            self.stats.sample_deletions += 1
            if self._conn.delete_edge(u, v):
                self.stats.component_splits += 1
        self._maybe_resample()

    def _on_add_vertex(self, v: Vertex) -> None:
        self.stats.vertex_adds += 1
        if self._graph is not None:
            self._graph.add_vertex(v)
        self._conn.add_vertex(v)

    def _on_delete_vertex(self, v: Vertex) -> None:
        self.stats.vertex_deletes += 1
        if self._graph is None:
            raise UnsupportedOperationError(
                "DELETE_VERTEX requires track_graph=True: a pure edge "
                "reservoir cannot enumerate the incident edges to remove"
            )
        if not self._graph.has_vertex(v):
            self._malformed(f"DELETE_VERTEX of absent vertex {v!r}")
            return
        for edge in self._graph.remove_vertex(v):
            if self._reservoir.delete(edge):
                self.stats.sample_deletions += 1
                if self._conn.delete_edge(*edge):
                    self.stats.component_splits += 1
        self._conn.remove_vertex_if_isolated(v)
        self._maybe_resample()

    def _malformed(self, message: str) -> None:
        if self.config.strict:
            raise StreamError(message)
        self.stats.malformed_events += 1

    # ------------------------------------------------------------------
    # Resample policy (ablation comparator)
    # ------------------------------------------------------------------
    def _maybe_resample(self) -> None:
        if self.config.deletion_policy is not DeletionPolicy.RESAMPLE:
            return
        assert self._graph is not None  # enforced by ClustererConfig
        capacity = self.config.reservoir_capacity
        target = min(capacity, self._graph.num_edges)
        if len(self._reservoir) >= self.config.resample_threshold * target:
            return
        self._rebuild_sample()

    def _rebuild_sample(self) -> None:
        """Rebuild reservoir + connectivity from the tracked graph (O(m))."""
        assert self._graph is not None
        self.stats.resamples += 1
        self._reservoir = RandomPairingReservoir(
            self.config.reservoir_capacity,
            seed=child_seed(self.config.seed, "reservoir", self.stats.resamples),
        )
        self._conn = make_connectivity(
            self.config.connectivity_backend,
            seed=child_seed(self.config.seed, "connectivity", self.stats.resamples),
        )
        for vertex in self._graph.vertices():
            self._conn.add_vertex(vertex)
        # Sort before shuffling: edge_list() order reflects adjacency-set
        # layout, which is not reproducible across processes (string
        # hashing) or checkpoint restores; sorting makes the shuffled
        # order a pure function of the edge set and the rebuild RNG.
        edges = sorted(self._graph.edge_list(), key=repr)
        self._rebuild_rng.shuffle(edges)
        for edge in edges:
            proposal = self._reservoir.propose_insert(edge)
            if not proposal.admit:
                continue
            if not self.config.constraint.allows(self._conn, *edge):
                self._reservoir.abort(proposal)
                self.stats.vetoes += 1
                continue
            self._reservoir.commit(proposal)
            if proposal.evicted is not None:
                self._conn.delete_edge(*proposal.evicted)
            self._conn.insert_edge(*edge)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete serializable state for checkpointing.

        The connectivity structure is *not* serialized: it holds exactly
        the sampled edges, so it is rebuilt from the reservoir and the
        vertex set on restore. Component structure (the clustering) is
        an exact function of those, so the rebuilt structure answers
        every query identically; only its internal balancing randomness
        differs, which is unobservable.
        """
        return {
            "config": self.config,
            "stats": self.stats.as_dict(),
            "reservoir": self._reservoir.get_state(),
            "conn_vertices": list(self._conn.vertices()),
            "conn_dirty": bool(getattr(self._conn, "dirty", False)),
            "rebuild_rng_state": self._rebuild_rng.getstate(),
            "graph": self._graph.get_state() if self._graph is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingGraphClusterer":
        """Reconstruct a clusterer from :meth:`get_state` output.

        The restored clusterer replays any stream tail to the *identical*
        partition, stats, and reservoir as an uninterrupted run: reservoir
        RNG state and slot order, the rebuild RNG, and the tracked graph
        are exact, and connectivity answers are exact by construction.
        """
        config: ClustererConfig = state["config"]
        clusterer = cls(config)
        clusterer.stats = ClustererStats(**state["stats"])
        clusterer._reservoir = RandomPairingReservoir.from_state(state["reservoir"])
        resamples = clusterer.stats.resamples
        conn_seed = (
            child_seed(config.seed, "connectivity")
            if resamples == 0
            else child_seed(config.seed, "connectivity", resamples)
        )
        conn = make_connectivity(config.connectivity_backend, seed=conn_seed)
        for vertex in state["conn_vertices"]:
            conn.add_vertex(vertex)
        for u, v in clusterer._reservoir.items():
            conn.insert_edge(u, v)
        if state.get("conn_dirty") and hasattr(conn, "mark_dirty"):
            conn.mark_dirty()
        clusterer._conn = conn
        clusterer._rebuild_rng = make_rng(0)
        clusterer._rebuild_rng.setstate(state["rebuild_rng_state"])
        graph_state = state["graph"]
        clusterer._graph = (
            AdjacencyGraph.from_state(graph_state) if graph_state is not None else None
        )
        return clusterer

    # ------------------------------------------------------------------
    # Clustering queries
    # ------------------------------------------------------------------
    def cluster_id(self, v: Vertex) -> object:
        """Opaque id of ``v``'s cluster, valid until the next update."""
        members = getattr(self._conn, "component_id", None)
        if members is not None:
            return members(v)
        return frozenset(self._conn.component_members(v))

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices clustered with ``v`` (including ``v``)."""
        return frozenset(self._conn.component_members(v))

    def cluster_size(self, v: Vertex) -> int:
        """Size of ``v``'s cluster (1 for unseen vertices)."""
        return self._conn.component_size(v)

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are currently in the same cluster."""
        return self._conn.connected(u, v)

    @property
    def num_clusters(self) -> int:
        """Number of clusters (components of the sampled sub-graph)."""
        return self._conn.num_components

    @property
    def num_vertices(self) -> int:
        """Number of vertices the clusterer has seen and not deleted."""
        return self._conn.num_vertices

    def snapshot(self) -> Partition:
        """The current clustering as an immutable :class:`Partition`."""
        return Partition.from_clusters(self._conn.components())

    def vertices(self) -> Iterable[Vertex]:
        """Iterate over all vertices the clusterer currently knows."""
        return self._conn.vertices()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reservoir_size(self) -> int:
        """Number of edges currently sampled."""
        return len(self._reservoir)

    def reservoir_edges(self) -> List[Edge]:
        """The sampled edges (copy)."""
        return self._reservoir.items()

    @property
    def graph(self) -> Optional[AdjacencyGraph]:
        """The tracked full graph, or None in the lean memory mode."""
        return self._graph

    def __repr__(self) -> str:
        return (
            f"StreamingGraphClusterer(vertices={self.num_vertices}, "
            f"clusters={self.num_clusters}, reservoir={self.reservoir_size}/"
            f"{self.config.reservoir_capacity})"
        )
