"""The streaming graph clusterer — the paper's primary contribution.

:class:`StreamingGraphClusterer` consumes a stream of vertex/edge
additions and deletions and maintains, at all times, a clustering of the
current graph defined as the **connected components of a reservoir
sample of the edges**:

1. A :class:`~repro.sampling.random_pairing.RandomPairingReservoir`
   keeps a bounded uniform sample of the live edge set under additions
   and deletions.
2. Admissions that would merge components may be vetoed by a
   :class:`~repro.core.constraints.ConstraintPolicy` (bounding cluster
   sizes or the number of clusters — the paper's "desired properties").
3. A fully-dynamic connectivity structure
   (:class:`~repro.connectivity.hdt.HDTConnectivity` by default) keeps
   the components of the sampled sub-graph current as sampled edges come
   and go.

Every update is processed online and incrementally in amortized
poly-logarithmic time; no pass over the full graph is ever required
(unless the optional RESAMPLE deletion policy is selected).

Batched ingestion
-----------------
:meth:`StreamingGraphClusterer.apply_many` is the high-throughput entry
point. For the unconstrained random-pairing configuration it amortizes
the per-event Python overhead across a whole batch: events are consumed
as plain ``(kind, u, v)`` tuples or :class:`EdgeEvent` objects, stats
are accumulated in local counters, and — crucially — the fully-dynamic
connectivity structure is **deferred**: the batch records the sample
mutations it performs and resolves their exact merge/split outcomes
afterwards with offline divide-and-conquer connectivity
(:func:`~repro.connectivity.offline.resolve_sample_timeline`); the live
structure receives only the *net* edge diff, and only when something
actually needs it (a per-event :meth:`apply`, a vertex deletion, or
:meth:`get_state`). Clustering queries between batches are answered from
the reservoir directly via a cached vertex → component labelling, so
the end-to-end result — partition, statistics, reservoir content, and
RNG state — is identical to the per-event path (property-tested in
``tests/test_apply_many_property.py``). See ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.connectivity import make_connectivity
from repro.connectivity.offline import resolve_sample_timeline
from repro.obs import metrics as _obs
from repro.connectivity.union_find import UnionFind
from repro.core.config import ClustererConfig, DeletionPolicy
from repro.core.constraints import Unconstrained
from repro.errors import StreamError, UnsupportedOperationError
from repro.graph.adjacency import AdjacencyGraph
from repro.quality.partition import Partition
from repro.sampling.random_pairing import NOT_ADMITTED, RandomPairingReservoir
from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventKind,
    RawEvent,
    Vertex,
    canonical_edge,
)
from repro.util.rng import child_seed, make_rng

__all__ = ["ClustererStats", "StreamingGraphClusterer"]

AnyEvent = Union[EdgeEvent, RawEvent]


@dataclass
class ClustererStats:
    """Counters describing the work a clusterer has performed."""

    events: int = 0
    edge_adds: int = 0
    edge_deletes: int = 0
    vertex_adds: int = 0
    vertex_deletes: int = 0
    admissions: int = 0
    vetoes: int = 0
    evictions: int = 0
    sample_deletions: int = 0
    component_merges: int = 0
    component_splits: int = 0
    malformed_events: int = 0
    resamples: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging / result records)."""
        return dict(self.__dict__)


class StreamingGraphClusterer:
    """Online, incremental clustering by graph reservoir sampling.

    >>> from repro.core.config import ClustererConfig
    >>> from repro.streams.events import add_edge
    >>> clusterer = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=100))
    >>> for u, v in [(1, 2), (2, 3), (7, 8)]:
    ...     clusterer.apply(add_edge(u, v))
    >>> clusterer.same_cluster(1, 3)
    True
    >>> clusterer.same_cluster(1, 7)
    False
    """

    def __init__(self, config: ClustererConfig) -> None:
        self.config = config
        self.stats = ClustererStats()
        self._reservoir: RandomPairingReservoir[Edge] = RandomPairingReservoir(
            config.reservoir_capacity, seed=child_seed(config.seed, "reservoir")
        )
        self._conn = make_connectivity(
            config.connectivity_backend, seed=child_seed(config.seed, "connectivity")
        )
        self._graph: Optional[AdjacencyGraph] = (
            AdjacencyGraph() if config.track_graph else None
        )
        self._rebuild_rng = make_rng(child_seed(config.seed, "rebuild"))
        # Batched-ingestion state: while `_conn_stale` the connectivity
        # structure lags the reservoir by the net edge diff in
        # `_conn_diff` (edge -> +1 pending insert / -1 pending delete).
        self._conn_stale = False
        self._conn_diff: Dict[Edge, int] = {}
        # Simulates the lazy backend's dirty flag while deferred (other
        # backends ignore it).
        self._lazy_dirty = bool(getattr(self._conn, "dirty", False))
        # Adjacency view of the *sampled* sub-graph, kept in lockstep
        # with the reservoir. The batch loop resolves most merge/split
        # booleans with a budgeted BFS over it, skipping both the live
        # connectivity structure and the offline resolver.
        self._sample_adj: Dict[Vertex, Set[Vertex]] = {}
        # Cached cluster extraction, invalidated by structural changes.
        self._labels_cache: Optional[Dict[Vertex, Vertex]] = None
        self._partition_cache: Optional[Partition] = None
        #: Number of times a partition was actually (re)built by
        #: :meth:`snapshot` — a probe counter for cache-effectiveness
        #: tests and benchmarks; not part of the persisted state.
        self.partition_builds = 0
        #: Probe counters for the batched fast path's degradation modes
        #: (like ``partition_builds``, not persisted): how often a batch
        #: connectivity probe exhausted its BFS budget, and how often a
        #: batch fell back to the offline divide-and-conquer resolver.
        self.probe_budget_hits = 0
        self.offline_resolves = 0
        #: Monotone counter of structural invalidations (sampled edge
        #: set or vertex universe changed since the last extraction
        #: cache build). Ensemble drivers compare version vectors to
        #: skip merged-partition rebuilds when no shard moved; like the
        #: probe counters it is not part of the persisted state.
        self.structure_version = 0
        # Last counter values published to the metrics registry, so
        # sync_metrics() emits exact deltas (see repro.obs).
        self._metrics_last: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Process one stream event."""
        if self._conn_stale:
            self._flush_conn()
        self.stats.events += 1
        kind = event.kind
        if kind is EventKind.ADD_EDGE:
            self._on_add_edge(event.u, event.v)
        elif kind is EventKind.DELETE_EDGE:
            self._on_delete_edge(event.u, event.v)
        elif kind is EventKind.ADD_VERTEX:
            self._on_add_vertex(event.u)
        elif kind is EventKind.DELETE_VERTEX:
            self._on_delete_vertex(event.u)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unknown event kind {kind!r}")

    def apply_many(self, events: Iterable[AnyEvent]) -> "StreamingGraphClusterer":
        """Process a stream of events through the batched fast path.

        Accepts :class:`EdgeEvent` objects and plain ``(kind, u, v)``
        tuples (``v=None`` for vertex events) interchangeably; the tuple
        form skips per-event object construction entirely. The final
        state — reservoir content and RNG state, statistics, tracked
        graph, and clustering — is identical to calling :meth:`apply`
        per event, for any split of the stream into batches.

        The fast path engages for the unconstrained random-pairing
        configuration; constrained or RESAMPLE configurations fall back
        to per-event processing transparently. Vertex deletions act as
        batch barriers (they need live connectivity), so streams where
        they are rare still batch well. Returns self for chaining.
        """
        config = self.config
        if (
            config.deletion_policy is not DeletionPolicy.RANDOM_PAIRING
            or type(config.constraint) is not Unconstrained
            or not getattr(config, "batch_fast_path", True)
        ):
            for event in events:
                if type(event) is tuple:
                    event = EdgeEvent(event[0], event[1], event[2])
                self.apply(event)
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        iterator = iter(events)
        while True:
            barrier = self._apply_edge_batch(iterator)
            if barrier is None:
                return self
            self.apply(barrier)

    def process(
        self, events: Iterable[AnyEvent], batch_size: Optional[int] = None
    ) -> "StreamingGraphClusterer":
        """Process a whole stream; returns self for chaining.

        With ``batch_size`` (``None``/``0`` disables batching) the
        stream is consumed in chunks through :meth:`apply_many`; larger
        chunks amortize more per-event overhead at the cost of a longer
        deferred-resolution horizon per chunk.
        """
        if not batch_size:
            for event in events:
                if type(event) is tuple:
                    event = EdgeEvent(event[0], event[1], event[2])
                self.apply(event)
            if _obs._ENABLED:
                self.sync_metrics()
            return self
        iterator = iter(events)
        while True:
            chunk = list(islice(iterator, batch_size))
            if not chunk:
                return self
            self.apply_many(chunk)

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    def _apply_edge_batch(self, iterator: Iterator[AnyEvent]) -> Optional[EdgeEvent]:
        """Consume edge/vertex-add events until exhaustion or a barrier.

        Returns the barrier event (vertex deletion) still to be applied,
        or None when the iterator ran dry. All state the loop defers —
        stat counters, the sample-mutation timeline, cache invalidation —
        is settled in the ``finally`` block, so an exception (strict-mode
        stream error, malformed input) leaves the clusterer exactly as
        the per-event path would.
        """
        if not self._conn_stale:
            # Entering deferred mode: snapshot what the per-event path
            # would currently report for the lazy backend's dirty flag.
            self._lazy_dirty = bool(getattr(self._conn, "dirty", False))
        reservoir = self._reservoir
        insert_fast = reservoir.insert_fast
        reservoir_delete = reservoir.delete
        graph = self._graph
        add_vertex = self._conn.add_vertex
        strict = self.config.strict
        kind_add = EventKind.ADD_EDGE
        kind_del = EventKind.DELETE_EDGE
        kind_addv = EventKind.ADD_VERTEX
        not_admitted = NOT_ADMITTED
        diff = self._conn_diff
        adj = self._sample_adj
        probe = self._sample_connected
        # Merge/split booleans are probed online with a budgeted
        # bidirectional BFS over the sample adjacency — O(component),
        # and components of a reservoir-sampled sub-graph are typically
        # tiny. The first probe to exceed its budget turns probing off
        # for the rest of the batch; the recorded timeline is then
        # resolved offline in the finally block instead. The lazy
        # backend never probes (its counters are simulated exactly in
        # _resolve_ops).
        probing = self.config.connectivity_backend != "lazy"
        n_merges = n_splits = 0
        base: Optional[List[Edge]] = None  # pre-batch sample, captured lazily
        base_labels = self._labels_cache  # pre-batch components, if current
        ops: List[Tuple[bool, Vertex, Vertex]] = []
        n_events = n_adds = n_deletes = n_vadds = 0
        n_admitted = n_evicted = n_sample_del = n_malformed = 0
        structural = False
        barrier: Optional[EdgeEvent] = None
        try:
            for event in iterator:
                if type(event) is tuple:
                    kind, u, v = event
                else:
                    kind, u, v = event.kind, event.u, event.v
                if kind is kind_add:
                    if u == v:
                        raise ValueError(
                            f"self-loop edges are not allowed: ({u!r}, {v!r})"
                        )
                    try:
                        if v < u:
                            u, v = v, u
                    except TypeError:
                        if repr(v) < repr(u):
                            u, v = v, u
                    n_events += 1
                    n_adds += 1
                    if graph is not None and not graph.add_canonical_edge(u, v):
                        if strict:
                            raise StreamError(f"duplicate ADD_EDGE ({u!r}, {v!r})")
                        n_malformed += 1
                        continue
                    if add_vertex(u):
                        structural = True
                    if add_vertex(v):
                        structural = True
                    edge = (u, v)
                    if base is None:
                        base = reservoir.items()
                    evicted = insert_fast(edge)
                    if evicted is not_admitted:
                        continue
                    n_admitted += 1
                    structural = True
                    if evicted is not None:
                        n_evicted += 1
                        ev_u, ev_v = evicted
                        adj[ev_u].discard(ev_v)
                        adj[ev_v].discard(ev_u)
                        if probing:
                            alive = probe(ev_u, ev_v)
                            if alive is None:
                                probing = False
                                self.probe_budget_hits += 1
                            elif not alive:
                                n_splits += 1
                        ops.append((False, ev_u, ev_v))
                        delta = diff.get(evicted, 0) - 1
                        if delta:
                            diff[evicted] = delta
                        else:
                            del diff[evicted]
                    if probing:
                        alive = probe(u, v)
                        if alive is None:
                            probing = False
                            self.probe_budget_hits += 1
                        elif not alive:
                            n_merges += 1
                    neighbours = adj.get(u)
                    if neighbours is None:
                        adj[u] = {v}
                    else:
                        neighbours.add(v)
                    neighbours = adj.get(v)
                    if neighbours is None:
                        adj[v] = {u}
                    else:
                        neighbours.add(u)
                    ops.append((True, u, v))
                    delta = diff.get(edge, 0) + 1
                    if delta:
                        diff[edge] = delta
                    else:
                        del diff[edge]
                elif kind is kind_del:
                    if u == v:
                        raise ValueError(
                            f"self-loop edges are not allowed: ({u!r}, {v!r})"
                        )
                    try:
                        if v < u:
                            u, v = v, u
                    except TypeError:
                        if repr(v) < repr(u):
                            u, v = v, u
                    n_events += 1
                    n_deletes += 1
                    if graph is not None and not graph.remove_canonical_edge(u, v):
                        if strict:
                            raise StreamError(
                                f"DELETE_EDGE of absent edge ({u!r}, {v!r})"
                            )
                        n_malformed += 1
                        continue
                    edge = (u, v)
                    if base is None:
                        base = reservoir.items()
                    if reservoir_delete(edge):
                        n_sample_del += 1
                        structural = True
                        adj[u].discard(v)
                        adj[v].discard(u)
                        if probing:
                            alive = probe(u, v)
                            if alive is None:
                                probing = False
                                self.probe_budget_hits += 1
                            elif not alive:
                                n_splits += 1
                        ops.append((False, u, v))
                        delta = diff.get(edge, 0) - 1
                        if delta:
                            diff[edge] = delta
                        else:
                            del diff[edge]
                elif kind is kind_addv:
                    if v is not None:
                        raise ValueError(f"{kind.value} event takes a single vertex")
                    n_events += 1
                    n_vadds += 1
                    if graph is not None:
                        graph.add_vertex(u)
                    if add_vertex(u):
                        structural = True
                else:
                    # DELETE_VERTEX (or an unknown kind, which apply()
                    # rejects): a barrier needing live connectivity.
                    if type(event) is tuple:
                        event = EdgeEvent(kind, u, v)
                    barrier = event
                    break
        finally:
            stats = self.stats
            stats.events += n_events
            stats.edge_adds += n_adds
            stats.edge_deletes += n_deletes
            stats.vertex_adds += n_vadds
            stats.admissions += n_admitted
            stats.evictions += n_evicted
            stats.sample_deletions += n_sample_del
            stats.malformed_events += n_malformed
            if ops:
                if probing:
                    merges, splits = n_merges, n_splits
                else:
                    merges, splits = self._resolve_ops(base, base_labels, ops)
                stats.component_merges += merges
                stats.component_splits += splits
            self._conn_stale = bool(diff)
            if not diff and self._lazy_dirty and hasattr(self._conn, "mark_dirty"):
                # The net diff cancelled out, so no flush will run — but a
                # deletion still happened, and the per-event path would
                # have dirtied the lazy backend's cache.
                self._conn.mark_dirty()
            if structural:
                self._invalidate()
            if _obs._ENABLED:
                self.sync_metrics()
        return barrier

    def _sample_connected(
        self, u: Vertex, v: Vertex, budget: int = 1024
    ) -> Optional[bool]:
        """Exact connectivity between ``u`` and ``v`` in the sampled
        sub-graph, or None once the search has visited ``budget``
        vertices (the batch loop then falls back to offline resolution).

        Bidirectional BFS over the maintained sample adjacency, always
        expanding the smaller frontier — for the sparse sub-graphs
        reservoir sampling produces, components are tiny and a probe
        touches a handful of vertices.
        """
        adj = self._sample_adj
        neighbours = adj.get(u)
        if not neighbours:
            return False
        if v in neighbours:
            return True
        if not adj.get(v):
            return False
        seen_a = {u}
        seen_b = {v}
        frontier_a = [u]
        frontier_b = [v]
        while frontier_a and frontier_b:
            if len(seen_a) + len(seen_b) > budget:
                return None
            if len(frontier_a) > len(frontier_b):
                frontier_a, frontier_b = frontier_b, frontier_a
                seen_a, seen_b = seen_b, seen_a
            next_frontier = []
            for x in frontier_a:
                for y in adj[x]:
                    if y in seen_b:
                        return True
                    if y not in seen_a:
                        seen_a.add(y)
                        next_frontier.append(y)
            frontier_a = next_frontier
        return False

    def _resolve_ops(
        self,
        base: List[Edge],
        base_labels: Optional[Dict[Vertex, Vertex]],
        ops: List[Tuple[bool, Vertex, Vertex]],
    ) -> Tuple[int, int]:
        """Exact merge/split counts for a batch's sample mutations.

        For the hdt/naive backends this reproduces the online structure's
        exact booleans via offline divide-and-conquer connectivity (with
        an O(ops) union-find shortcut for deletion-free timelines). For
        the lazy backend it reproduces that backend's documented
        conservative semantics: exact while its cache would be clean,
        "always True" once a deletion would have dirtied it.
        """
        if self.config.connectivity_backend == "lazy":
            merges = splits = 0
            dirty = self._lazy_dirty
            rest = ops
            if not dirty:
                first_delete = len(ops)
                for t, op in enumerate(ops):
                    if not op[0]:
                        first_delete = t
                        break
                if first_delete:
                    merges += self._count_insert_merges(
                        base, base_labels, ops[:first_delete]
                    )
                rest = ops[first_delete:]
            for op in rest:
                if op[0]:
                    merges += 1
                else:
                    splits += 1
                    dirty = True
            self._lazy_dirty = dirty
            return merges, splits
        for op in ops:
            if not op[0]:
                break
        else:
            return self._count_insert_merges(base, base_labels, ops), 0
        self.offline_resolves += 1
        flags = resolve_sample_timeline(base, ops, base_labels=base_labels)
        merges = splits = 0
        for op, flag in zip(ops, flags):
            if flag:
                if op[0]:
                    merges += 1
                else:
                    splits += 1
        return merges, splits

    @staticmethod
    def _count_insert_merges(
        base: List[Edge],
        base_labels: Optional[Dict[Vertex, Vertex]],
        inserts: List[Tuple[bool, Vertex, Vertex]],
    ) -> int:
        """Merge count for a deletion-free insert timeline (plain DSU)."""
        uf = UnionFind()
        union = uf.union
        merges = 0
        if base_labels is None:
            for u, v in base:
                union(u, v)
            for _, u, v in inserts:
                if union(u, v):
                    merges += 1
        else:
            get_label = base_labels.get
            for _, u, v in inserts:
                if union(get_label(u, u), get_label(v, v)):
                    merges += 1
        return merges

    def _flush_conn(self) -> None:
        """Apply the deferred net edge diff to the connectivity structure.

        Return values are discarded — the exact merge/split outcomes were
        already resolved offline per batch. Deletes go first so an edge
        slot freed by one net change can be refilled by another.
        """
        conn = self._conn
        diff = self._conn_diff
        inserts: List[Edge] = []
        for edge, delta in diff.items():
            if delta < 0:
                conn.delete_edge(edge[0], edge[1])
            else:
                inserts.append(edge)
        for u, v in inserts:
            conn.insert_edge(u, v)
        diff.clear()
        self._conn_stale = False
        if self._lazy_dirty and hasattr(conn, "mark_dirty"):
            conn.mark_dirty()

    def _invalidate(self) -> None:
        self._labels_cache = None
        self._partition_cache = None
        self.structure_version += 1

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_add_edge(self, u: Vertex, v: Vertex) -> None:
        self.stats.edge_adds += 1
        if self._graph is not None:
            if not self._graph.add_edge(u, v):
                self._malformed(f"duplicate ADD_EDGE ({u!r}, {v!r})")
                return
        fresh = self._conn.add_vertex(u)
        fresh = self._conn.add_vertex(v) or fresh
        if fresh:
            self._invalidate()
        edge = canonical_edge(u, v)
        proposal = self._reservoir.propose_insert(edge)
        if not proposal.admit:
            return
        if not self.config.constraint.allows(self._conn, u, v):
            self._reservoir.abort(proposal)
            self.stats.vetoes += 1
            return
        self._reservoir.commit(proposal)
        self._invalidate()
        self.stats.admissions += 1
        adj = self._sample_adj
        if proposal.evicted is not None:
            self.stats.evictions += 1
            ev_u, ev_v = proposal.evicted
            adj[ev_u].discard(ev_v)
            adj[ev_v].discard(ev_u)
            if self._conn.delete_edge(ev_u, ev_v):
                self.stats.component_splits += 1
        adj.setdefault(edge[0], set()).add(edge[1])
        adj.setdefault(edge[1], set()).add(edge[0])
        if self._conn.insert_edge(u, v):
            self.stats.component_merges += 1

    def _on_delete_edge(self, u: Vertex, v: Vertex) -> None:
        self.stats.edge_deletes += 1
        if self._graph is not None:
            if not self._graph.remove_edge(u, v):
                self._malformed(f"DELETE_EDGE of absent edge ({u!r}, {v!r})")
                return
        edge = canonical_edge(u, v)
        if self._reservoir.delete(edge):
            self.stats.sample_deletions += 1
            self._invalidate()
            self._sample_adj[edge[0]].discard(edge[1])
            self._sample_adj[edge[1]].discard(edge[0])
            if self._conn.delete_edge(u, v):
                self.stats.component_splits += 1
        self._maybe_resample()

    def _on_add_vertex(self, v: Vertex) -> None:
        self.stats.vertex_adds += 1
        if self._graph is not None:
            self._graph.add_vertex(v)
        if self._conn.add_vertex(v):
            self._invalidate()

    def _on_delete_vertex(self, v: Vertex) -> None:
        self.stats.vertex_deletes += 1
        if self._graph is None:
            raise UnsupportedOperationError(
                "DELETE_VERTEX requires track_graph=True: a pure edge "
                "reservoir cannot enumerate the incident edges to remove"
            )
        if not self._graph.has_vertex(v):
            self._malformed(f"DELETE_VERTEX of absent vertex {v!r}")
            return
        self._invalidate()
        for edge in self._graph.remove_vertex(v):
            if self._reservoir.delete(edge):
                self.stats.sample_deletions += 1
                self._sample_adj[edge[0]].discard(edge[1])
                self._sample_adj[edge[1]].discard(edge[0])
                if self._conn.delete_edge(*edge):
                    self.stats.component_splits += 1
        self._conn.remove_vertex_if_isolated(v)
        self._maybe_resample()

    def _malformed(self, message: str) -> None:
        if self.config.strict:
            raise StreamError(message)
        self.stats.malformed_events += 1

    # ------------------------------------------------------------------
    # Resample policy (ablation comparator)
    # ------------------------------------------------------------------
    def _maybe_resample(self) -> None:
        if self.config.deletion_policy is not DeletionPolicy.RESAMPLE:
            return
        assert self._graph is not None  # enforced by ClustererConfig
        capacity = self.config.reservoir_capacity
        target = min(capacity, self._graph.num_edges)
        if len(self._reservoir) >= self.config.resample_threshold * target:
            return
        self._rebuild_sample()

    def _rebuild_sample(self) -> None:
        """Rebuild reservoir + connectivity from the tracked graph (O(m))."""
        assert self._graph is not None
        self.stats.resamples += 1
        self._invalidate()
        self._conn_stale = False
        self._conn_diff.clear()
        self._reservoir = RandomPairingReservoir(
            self.config.reservoir_capacity,
            seed=child_seed(self.config.seed, "reservoir", self.stats.resamples),
        )
        self._conn = make_connectivity(
            self.config.connectivity_backend,
            seed=child_seed(self.config.seed, "connectivity", self.stats.resamples),
        )
        self._lazy_dirty = bool(getattr(self._conn, "dirty", False))
        for vertex in self._graph.vertices():
            self._conn.add_vertex(vertex)
        # Sort before shuffling: edge_list() order reflects adjacency-set
        # layout, which is not reproducible across processes (string
        # hashing) or checkpoint restores; sorting makes the shuffled
        # order a pure function of the edge set and the rebuild RNG.
        edges = sorted(self._graph.edge_list(), key=repr)
        self._rebuild_rng.shuffle(edges)
        for edge in edges:
            proposal = self._reservoir.propose_insert(edge)
            if not proposal.admit:
                continue
            if not self.config.constraint.allows(self._conn, *edge):
                self._reservoir.abort(proposal)
                self.stats.vetoes += 1
                continue
            self._reservoir.commit(proposal)
            if proposal.evicted is not None:
                self._conn.delete_edge(*proposal.evicted)
            self._conn.insert_edge(*edge)
        adj = self._sample_adj
        adj.clear()
        for u, v in self._reservoir:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete serializable state for checkpointing.

        The connectivity structure is *not* serialized: it holds exactly
        the sampled edges, so it is rebuilt from the reservoir and the
        vertex set on restore. Component structure (the clustering) is
        an exact function of those, so the rebuilt structure answers
        every query identically; only its internal balancing randomness
        differs, which is unobservable. Any deferred batch diff is
        flushed first, so batched and per-event runs checkpoint
        identically.
        """
        if self._conn_stale:
            self._flush_conn()
        return {
            "config": self.config,
            "stats": self.stats.as_dict(),
            "reservoir": self._reservoir.get_state(),
            "conn_vertices": list(self._conn.vertices()),
            "conn_dirty": bool(getattr(self._conn, "dirty", False)),
            "rebuild_rng_state": self._rebuild_rng.getstate(),
            "graph": self._graph.get_state() if self._graph is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingGraphClusterer":
        """Reconstruct a clusterer from :meth:`get_state` output.

        The restored clusterer replays any stream tail to the *identical*
        partition, stats, and reservoir as an uninterrupted run: reservoir
        RNG state and slot order, the rebuild RNG, and the tracked graph
        are exact, and connectivity answers are exact by construction.
        """
        config: ClustererConfig = state["config"]
        clusterer = cls(config)
        clusterer.stats = ClustererStats(**state["stats"])
        clusterer._reservoir = RandomPairingReservoir.from_state(state["reservoir"])
        adj = clusterer._sample_adj
        for u, v in clusterer._reservoir:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        resamples = clusterer.stats.resamples
        conn_seed = (
            child_seed(config.seed, "connectivity")
            if resamples == 0
            else child_seed(config.seed, "connectivity", resamples)
        )
        conn = make_connectivity(config.connectivity_backend, seed=conn_seed)
        for vertex in state["conn_vertices"]:
            conn.add_vertex(vertex)
        for u, v in clusterer._reservoir.items():
            conn.insert_edge(u, v)
        if state.get("conn_dirty") and hasattr(conn, "mark_dirty"):
            conn.mark_dirty()
        clusterer._conn = conn
        clusterer._lazy_dirty = bool(getattr(conn, "dirty", False))
        clusterer._rebuild_rng = make_rng(0)
        clusterer._rebuild_rng.setstate(state["rebuild_rng_state"])
        graph_state = state["graph"]
        clusterer._graph = (
            AdjacencyGraph.from_state(graph_state) if graph_state is not None else None
        )
        return clusterer

    # ------------------------------------------------------------------
    # Clustering queries
    # ------------------------------------------------------------------
    def _labels(self) -> Dict[Vertex, Vertex]:
        """Vertex → component-representative map over the current sample.

        Built directly from the reservoir and the vertex universe (both
        always current, even while connectivity updates are deferred) and
        cached until the next structural change.
        """
        labels = self._labels_cache
        if labels is None:
            uf = UnionFind()
            union = uf.union
            for u, v in self._reservoir:
                union(u, v)
            find = uf.find
            labels = {v: find(v) for v in self._conn.vertices()}
            self._labels_cache = labels
        return labels

    def cluster_id(self, v: Vertex) -> object:
        """Opaque id of ``v``'s cluster, valid until the next update."""
        if self._conn_stale:
            labels = self._labels()
            if v in labels:
                return labels[v]
        members = getattr(self._conn, "component_id", None)
        if members is not None:
            return members(v)
        return frozenset(self._conn.component_members(v))

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices clustered with ``v`` (including ``v``)."""
        if self._conn_stale:
            partition = self.snapshot()
            if v in partition:
                return partition.members(partition.label_of(v))
        return frozenset(self._conn.component_members(v))

    def cluster_size(self, v: Vertex) -> int:
        """Size of ``v``'s cluster (1 for unseen vertices)."""
        if self._conn_stale:
            partition = self.snapshot()
            if v in partition:
                return len(partition.members(partition.label_of(v)))
        return self._conn.component_size(v)

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are currently in the same cluster."""
        if self._conn_stale:
            labels = self._labels()
            label_u = labels.get(u)
            label_v = labels.get(v)
            if label_u is not None and label_v is not None:
                return label_u == label_v
        return self._conn.connected(u, v)

    @property
    def num_clusters(self) -> int:
        """Number of clusters (components of the sampled sub-graph)."""
        if self._conn_stale:
            return self.snapshot().num_clusters
        return self._conn.num_components

    @property
    def num_vertices(self) -> int:
        """Number of vertices the clusterer has seen and not deleted."""
        return self._conn.num_vertices

    def snapshot(self) -> Partition:
        """The current clustering as an immutable :class:`Partition`.

        Cached until the next structural change (admission, sample
        deletion, or vertex-set change), so repeated quality probes
        between updates cost a dict lookup, not a re-extraction.
        """
        partition = self._partition_cache
        if partition is None:
            if self._conn_stale:
                partition = Partition(self._labels())
            else:
                partition = Partition.from_clusters(self._conn.components())
            self._partition_cache = partition
            self.partition_builds += 1
            if _obs._ENABLED:
                self.sync_metrics()
        return partition

    def vertices(self) -> Iterable[Vertex]:
        """Iterate over all vertices the clusterer currently knows."""
        return self._conn.vertices()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    _METRIC_STAT_FIELDS = (
        "events",
        "edge_adds",
        "edge_deletes",
        "vertex_adds",
        "vertex_deletes",
        "admissions",
        "vetoes",
        "evictions",
        "sample_deletions",
        "component_merges",
        "component_splits",
        "malformed_events",
        "resamples",
    )
    _METRIC_PROBE_FIELDS = (
        "partition_builds",
        "probe_budget_hits",
        "offline_resolves",
    )

    def sync_metrics(self) -> None:
        """Publish this clusterer's counters and gauges to the default
        metrics registry (``clusterer.*`` — see docs/observability.md).

        Counter deltas since the previous sync are added, so several
        clusterers (e.g. shards) aggregate into the same series; gauges
        (reservoir occupancy/fill, vertex count) are overwritten. Called
        automatically at batch and stream boundaries when
        :mod:`repro.obs` is enabled; per-event hot paths never pay more
        than the single enabling branch.
        """
        registry = _obs.default_registry()
        counter = registry.counter
        last = self._metrics_last
        stats = self.stats
        for name in self._METRIC_STAT_FIELDS:
            value = getattr(stats, name)
            prev = last.get(name, 0)
            if value > prev:
                counter("clusterer." + name).inc(value - prev)
                last[name] = value
        for name in self._METRIC_PROBE_FIELDS:
            value = getattr(self, name)
            prev = last.get(name, 0)
            if value > prev:
                counter("clusterer." + name).inc(value - prev)
                last[name] = value
        size = len(self._reservoir)
        registry.gauge("clusterer.reservoir_size").set(size)
        registry.gauge("clusterer.reservoir_fill").set(
            size / self.config.reservoir_capacity
        )
        registry.gauge("clusterer.num_vertices").set(self._conn.num_vertices)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reservoir_size(self) -> int:
        """Number of edges currently sampled."""
        return len(self._reservoir)

    def reservoir_edges(self) -> List[Edge]:
        """The sampled edges (copy)."""
        return self._reservoir.items()

    @property
    def graph(self) -> Optional[AdjacencyGraph]:
        """The tracked full graph, or None in the lean memory mode."""
        return self._graph

    def __repr__(self) -> str:
        return (
            f"StreamingGraphClusterer(vertices={self.num_vertices}, "
            f"clusters={self.num_clusters}, reservoir={self.reservoir_size}/"
            f"{self.config.reservoir_capacity})"
        )
