"""Persistent multiprocess streaming pipeline.

:func:`~repro.core.sharded.cluster_stream_parallel` is batch-parallel:
it materializes the whole stream into per-shard buckets, forks once per
shard, and pays pickled-object IPC — fine for finite experiments,
useless for an unbounded online stream. This module is the online
counterpart the paper's "easily parallelized" claim actually needs::

    parent (producer stage)            worker processes (one per shard)
    ┌──────────────────────────┐       ┌───────────────────────────────┐
    │ parse → canonicalize →   │ pipe  │ delta-decode + intern →       │
    │ route (FNV-1a/splitmix64)│ ────► │ apply_interned_many /         │
    │ → pack delta (v2) or     │       │ apply_many(columns) →         │
    │   columnar (v3) frames   │       │ per-shard                     │
    │   (per-shard persistent  │       │ StreamingGraphClusterer       │
    │    tables)               │       │ (dense-id hot path)           │
    └──────────────────────────┘       └───────────────────────────────┘

* Workers are **long-lived** ``spawn`` processes; each owns exactly the
  ``StreamingGraphClusterer`` the matching shard of a sequential
  :class:`~repro.core.sharded.ShardedClusterer` would own (same
  ``_shard_config``, same derived seed), so the merged partition — and
  the checkpoint bytes — are identical to sequential sharded execution
  for the same seed and shard count (property-tested in
  ``tests/test_pipeline.py``).
* Event batches travel as struct-packed frames
  (:mod:`repro.streams.codec`), not pickled per-event objects; parsing,
  routing and clustering overlap instead of running in sequence.
* Control messages (``SNAPSHOT``/``STATE``/``METRICS``/``STOP``) share
  the data pipes. Pipes are FIFO, so a control reply doubles as a
  barrier: when it arrives, every frame sent before it has been
  applied. That keeps :meth:`PipelineClusterer.snapshot`, periodic
  checkpointing (:class:`~repro.persist.checkpoint.PeriodicCheckpointer`)
  and :meth:`PipelineClusterer.sync_metrics` available *mid-stream*.
* The PR-1 supervision machinery is rehomed onto the persistent pool:
  a worker that dies or times out is respawned (bounded attempts,
  exponential backoff per :class:`~repro.core.sharded.SupervisorConfig`)
  from its last checkpoint-fetched state, and the frames sent since are
  replayed from a parent-side log. A shard that exhausts its budget is
  tombstoned: its events are dropped with a warning and the merged
  partition degrades instead of the stream hanging.

Throughput/scaling numbers: ``benchmarks/bench_e5b_pipeline.py`` and
``docs/performance.md``.
"""

from __future__ import annotations

import pickle
import time
import warnings
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.core.clusterer import AnyEvent, StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.core.sharded import (
    SupervisorConfig,
    _mp_context,
    _shard_config,
    _stable_vertex_key,
    merge_shard_samples,
)
from repro.errors import CheckpointError
from repro.obs import metrics as _obs
from repro.quality.partition import Partition
from repro.streams.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameEncoder,
)
from repro.streams.events import EdgeEvent, EventColumns, EventKind, Vertex
from repro.util.validation import check_positive

__all__ = ["PipelineClusterer"]

# Wire opcodes. Parent → worker messages are one opcode byte, plus a
# codec frame for batches; worker replies echo the opcode, or E+message
# for a failure, R once ready after (re)start.
_OP_BATCH = b"B"
_OP_SNAPSHOT = b"P"
_OP_STATE = b"S"
_OP_METRICS = b"M"
_OP_STOP = b"Q"
_REPLY_READY = b"R"
_REPLY_ERROR = b"E"

#: Parent-side vertex→routing-key cache bound (restarted when full).
_KEY_CACHE_LIMIT = 1 << 20


def _pipeline_worker(
    conn,
    shard: int,
    config: ClustererConfig,
    num_shards: int,
    attempt: int,
    fault,
    init_state: Optional[bytes],
    init_table: Optional[list],
) -> None:
    """Worker process body: one shard clusterer, one command loop.

    Frames arrive as delta frames against a connection-lifetime vertex
    table (``init_table`` primes it after a restart, matching the
    parent's encoder snapshot). The decoder interns endpoints straight
    into the shard clusterer's table, so edge runs are applied as dense
    id tuples with zero label rehydration; vertex events take the
    per-event path with the same strict-mode DELETE_VERTEX tolerance as
    :class:`ShardedClusterer`. Per-shard state stays identical to
    sequential sharded execution. Any exception is reported as an ``E``
    reply and ends the process; the parent decides whether to respawn.
    """
    process_time = time.process_time
    try:
        if fault is not None:
            fault(shard, attempt)
        if init_state is not None:
            clusterer = StreamingGraphClusterer.from_state(pickle.loads(init_state))
        else:
            clusterer = StreamingGraphClusterer(
                _shard_config(config, shard, num_shards)
            )
        decoder = FrameDecoder(clusterer.interner, init_table)
        conn.send_bytes(_REPLY_READY)
        strict = clusterer.config.strict
        delete_vertex = EventKind.DELETE_VERTEX
        events_applied = 0
        busy = 0.0
        while True:
            message = conn.recv_bytes()
            op = message[:1]
            if op == _OP_BATCH:
                start = process_time()
                for segment in decoder.decode(memoryview(message)[1:]):
                    if segment.__class__ is list:
                        # Interned edge run — the zero-rehydration path.
                        events_applied += len(segment)
                        clusterer.apply_interned_many(segment)
                        continue
                    if segment.__class__ is EventColumns:
                        # Columnar (v3) frame: the whole block feeds the
                        # batch kernel (or the scalar fallback inside
                        # apply_many) without per-event rehydration.
                        events_applied += len(segment)
                        clusterer.apply_many(segment)
                        continue
                    events_applied += 1
                    kind = segment[0]
                    if kind is delete_vertex or kind is EventKind.ADD_VERTEX:
                        if kind is delete_vertex and strict:
                            # A vertex can be unknown to this shard; the
                            # broadcast tolerates that (mirrors
                            # ShardedClusterer.apply).
                            graph = clusterer.graph
                            if graph is not None and not graph.has_vertex(
                                segment[1]
                            ):
                                continue
                        clusterer.apply(EdgeEvent(kind, segment[1], None))
                        continue
                    # Label-space edge event (self-loop): the per-event
                    # path raises the canonical error at this position.
                    clusterer.apply_many((segment,))
                busy += process_time() - start
            elif op == _OP_SNAPSHOT:
                payload = (list(clusterer.vertices()), clusterer.reservoir_edges())
                conn.send_bytes(_OP_SNAPSHOT + pickle.dumps(payload, protocol=4))
            elif op == _OP_STATE:
                state = clusterer.get_state()
                conn.send_bytes(_OP_STATE + pickle.dumps(state, protocol=4))
            elif op == _OP_METRICS:
                stats = clusterer.stats
                payload = {
                    "stats": {
                        name: getattr(stats, name)
                        for name in StreamingGraphClusterer._METRIC_STAT_FIELDS
                    },
                    "probes": {
                        name: getattr(clusterer, name)
                        for name in StreamingGraphClusterer._METRIC_PROBE_FIELDS
                    },
                    "reservoir_size": clusterer.reservoir_size,
                    "num_vertices": clusterer.num_vertices,
                    "events_applied": events_applied,
                    "busy_seconds": busy,
                    "cpu_seconds": process_time(),
                }
                conn.send_bytes(_OP_METRICS + pickle.dumps(payload, protocol=4))
            elif op == _OP_STOP:
                conn.send_bytes(_OP_STOP)
                return
            else:
                raise ValueError(f"unknown pipeline opcode {op!r}")
    except BaseException as error:  # noqa: BLE001 - must reach the parent
        try:
            detail = f"{type(error).__name__}: {error}"
            conn.send_bytes(_REPLY_ERROR + detail.encode("utf-8", "replace"))
        except Exception:
            pass  # parent gone or pipe broken; exit code says enough
    finally:
        try:
            conn.close()
        except Exception:
            pass


class PipelineClusterer:
    """Online hash-sharded clusterer over persistent worker processes.

    Drop-in parallel counterpart of
    :class:`~repro.core.sharded.ShardedClusterer`: same constructor
    shape, same ``apply``/``apply_many``/``process`` ingestion API, same
    merged-partition queries, same checkpoint format (``get_state`` is
    bit-compatible, so a pipeline checkpoint restores as a sequential
    sharded clusterer and vice versa).

    Parameters
    ----------
    config:
        Global clusterer configuration; each worker runs on the derived
        per-shard config (capacity split, child seed).
    num_workers:
        Worker process count == shard count (routing keys on it).
    batch_events:
        Producer-side buffer size per shard: a shard's buffer is framed
        and sent once it holds this many events (control messages and
        vertex-event barriers flush earlier).
    max_frame_bytes:
        Frame size ceiling for the codec (larger batches split).
    supervisor:
        Fault-tolerance policy (:class:`SupervisorConfig`); defaults to
        the same policy as the batch driver.
    fault:
        Deterministic :class:`~repro.util.faults.ShardFault` injected at
        worker startup, for testing — called as ``fault(shard, attempt)``
        in the worker before it builds its clusterer.

    Use as a context manager (or call :meth:`close`) so worker
    processes are reaped deterministically.
    """

    def __init__(
        self,
        config: ClustererConfig,
        num_workers: int,
        *,
        batch_events: int = 1024,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        supervisor: Optional[SupervisorConfig] = None,
        fault=None,
        start: bool = True,
    ) -> None:
        check_positive("num_workers", num_workers)
        check_positive("batch_events", batch_events)
        check_positive("max_frame_bytes", max_frame_bytes)
        self.config = config
        self.num_shards = int(num_workers)
        self.batch_events = int(batch_events)
        self.max_frame_bytes = int(max_frame_bytes)
        self.supervisor = supervisor if supervisor is not None else SupervisorConfig()
        self._fault = fault
        n = self.num_shards
        self.shard_events: List[int] = [0] * n
        #: Attempts per shard (1 = first spawn; mirrors ShardResult.attempts).
        self.shard_attempts: List[int] = [0] * n
        #: Events dropped because their shard was degraded.
        self.dropped_events = 0
        self.worker_restarts = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self._buffers: List[List[tuple]] = [[] for _ in range(n)]
        # Columnar buffers: per-shard ``(lo, hi)`` int64 array pairs
        # awaiting a version-3 frame. Invariant: at most one of
        # ``_buffers[s]`` / ``_col_buffers[s]`` is non-empty at any
        # time (every append site flushes the other kind first), so
        # per-shard event order is unambiguous at flush time.
        self._col_buffers: List[List[tuple]] = [[] for _ in range(n)]
        self._col_counts: List[int] = [0] * n
        self._procs: List[Optional[object]] = [None] * n
        self._conns: List[Optional[object]] = [None] * n
        # Supervision state: last fetched worker state (pickled) + the
        # frames sent since; a respawn restores the state and replays
        # the log, so no event is lost on a worker death.
        self._base_state: List[Optional[bytes]] = [None] * n
        self._log: List[List[bytes]] = [[] for _ in range(n)]
        # Delta-codec state: one connection-lifetime encoder per shard,
        # plus the table snapshot taken whenever the frame log restarts
        # (a respawned worker's decoder is primed with the snapshot and
        # the replayed log rebuilds the rest, so encoder and decoder
        # tables never diverge).
        self._encoders: List[FrameEncoder] = [FrameEncoder() for _ in range(n)]
        self._base_tables: List[list] = [[] for _ in range(n)]
        self._failed: List[bool] = [False] * n
        self._fail_errors: List[Optional[str]] = [None] * n
        self._key_cache: Dict[Vertex, int] = {}
        self._merged: Optional[Partition] = None
        self._last_samples: Optional[List[tuple]] = None
        self._metrics_last: List[Dict[str, int]] = [{} for _ in range(n)]
        self._closed = False
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PipelineClusterer":
        """Spawn (and handshake) every worker not yet running."""
        if self._closed:
            raise RuntimeError("PipelineClusterer is closed")
        pending = [
            shard
            for shard in range(self.num_shards)
            if self._procs[shard] is None and not self._failed[shard]
        ]
        for shard in pending:
            self._spawn(shard)
        for shard in pending:
            error = self._await_ready(shard)
            if error is not None:
                self._revive(shard, error, respawned=False)
        return self

    def _spawn(self, shard: int) -> None:
        self.shard_attempts[shard] += 1
        if _obs._ENABLED:
            registry = _obs.default_registry()
            registry.counter("supervisor.attempts").inc()
            if self.shard_attempts[shard] > 1:
                registry.counter("supervisor.retries").inc()
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_pipeline_worker,
            args=(
                child_conn,
                shard,
                self.config,
                self.num_shards,
                self.shard_attempts[shard],
                self._fault,
                self._base_state[shard],
                self._base_tables[shard],
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._procs[shard] = process
        self._conns[shard] = parent_conn

    def _await_ready(self, shard: int) -> Optional[str]:
        """Wait for the startup handshake; error message or None."""
        conn = self._conns[shard]
        timeout = self.supervisor.timeout
        try:
            if timeout is not None and not conn.poll(timeout):
                if _obs._ENABLED:
                    _obs.default_registry().counter("supervisor.timeouts").inc()
                return f"timeout after {timeout}s waiting for worker startup"
            reply = conn.recv_bytes()
        except (EOFError, OSError):
            process = self._procs[shard]
            exitcode = getattr(process, "exitcode", None)
            return f"worker died during startup (exitcode {exitcode})"
        if reply[:1] == _REPLY_READY:
            return None
        if reply[:1] == _REPLY_ERROR:
            return reply[1:].decode("utf-8", "replace")
        return f"protocol error: unexpected startup reply {reply[:1]!r}"

    def _dispose_worker(self, shard: int) -> None:
        conn = self._conns[shard]
        process = self._procs[shard]
        self._conns[shard] = None
        self._procs[shard] = None
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass
        if process is not None:
            try:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)
            except Exception:
                pass

    def _degrade(self, shard: int, error: str) -> None:
        """Tombstone a shard: drop its events from now on, warn once."""
        self._dispose_worker(shard)
        self._failed[shard] = True
        self._fail_errors[shard] = error
        self.dropped_events += len(self._buffers[shard]) + self._col_counts[shard]
        self._buffers[shard].clear()
        self._col_buffers[shard].clear()
        self._col_counts[shard] = 0
        self._log[shard].clear()
        self._merged = None
        if _obs._ENABLED:
            _obs.default_registry().counter("supervisor.degradations").inc()
        warnings.warn(
            f"shard {shard} failed permanently after "
            f"{self.shard_attempts[shard]} attempt(s) ({error}); dropping "
            "its sample from the merge",
            RuntimeWarning,
            stacklevel=4,
        )

    def _revive(self, shard: int, error: str, *, respawned: bool = True) -> bool:
        """Respawn a dead/hung worker and replay its frame log.

        Returns False when the attempt budget is exhausted (the shard is
        then degraded). ``respawned`` is False when the current attempt
        already counted (startup failure), True when a previously-ready
        worker died and this call both disposes and retries it.
        """
        while True:
            self._dispose_worker(shard)
            if respawned and _obs._ENABLED:
                _obs.default_registry().counter("supervisor.worker_deaths").inc()
            respawned = True
            if self.shard_attempts[shard] >= self.supervisor.max_attempts:
                self._degrade(shard, error)
                return False
            delay = self.supervisor.delay_before(self.shard_attempts[shard] + 1)
            if delay:
                time.sleep(delay)
            self.worker_restarts += 1
            self._spawn(shard)
            startup_error = self._await_ready(shard)
            if startup_error is not None:
                error = startup_error
                continue
            try:
                conn = self._conns[shard]
                for frame in self._log[shard]:
                    conn.send_bytes(frame)
            except (OSError, ValueError) as send_error:
                error = f"{type(send_error).__name__}: {send_error}"
                continue
            return True

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _send_frame(self, shard: int, frame: bytes) -> None:
        """Log + send one framed message; a send failure triggers the
        revive path (which replays the log, including this frame)."""
        self._log[shard].append(frame)
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        conn = self._conns[shard]
        try:
            conn.send_bytes(frame)
        except (OSError, ValueError) as error:
            self._revive(shard, f"{type(error).__name__}: {error}")

    def _flush_shard(self, shard: int) -> None:
        buffer = self._buffers[shard]
        col = self._col_buffers[shard]
        if not buffer and not col:
            return
        if self._failed[shard]:
            self.dropped_events += len(buffer) + self._col_counts[shard]
            buffer.clear()
            col.clear()
            self._col_counts[shard] = 0
            return
        if buffer:
            for frame in self._encoders[shard].encode_batches(
                buffer, max_bytes=self.max_frame_bytes
            ):
                self._send_frame(shard, _OP_BATCH + frame)
            buffer.clear()
        if col:
            for frame in self._encode_col_frames(shard):
                self._send_frame(shard, _OP_BATCH + frame)
            col.clear()
            self._col_counts[shard] = 0

    def _encode_col_frames(self, shard: int):
        """Version-3 frames for a shard's columnar buffer (not cleared)."""
        import numpy as np

        col = self._col_buffers[shard]
        if len(col) == 1:
            lo, hi = col[0]
        else:
            lo = np.concatenate([pair[0] for pair in col])
            hi = np.concatenate([pair[1] for pair in col])
        return self._encoders[shard].encode_columns(
            lo, hi, max_bytes=self.max_frame_bytes
        )

    def _flush_all(self) -> None:
        for shard in range(self.num_shards):
            self._flush_shard(shard)

    def apply_many(self, events) -> "PipelineClusterer":
        """Route a batch of events into the worker pool.

        Edge events are canonicalized (shard routing keys on canonical
        endpoint order), bucketed per shard, and shipped as packed
        frames once a bucket reaches ``batch_events``. Vertex events are
        barriers broadcast to every shard, exactly as in
        :class:`ShardedClusterer`. Returns immediately after the frames
        are queued — workers apply them concurrently; any query method
        is a barrier that waits for them.

        Accepts :class:`~repro.streams.events.EventColumns` as well:
        all-int column batches are shard-routed vectorized and shipped
        as version-3 columnar frames, which each worker's decoder hands
        to its clusterer as one columnar block — the wire-path twin of
        the inline batch-kernel fast path.
        """
        if self._closed:
            raise RuntimeError("PipelineClusterer is closed")
        self._merged = None
        if type(events) is EventColumns:
            # Columnar wire-path input: route straight from the arrays
            # (bucketed per shard, shipped as version-3 frames). Falls
            # back to the tuple loop for exotic label types.
            if events.kinds is None and self._route_columns(events):
                return self
            events = events.to_events()
        if getattr(self.config, "kernel", "scalar") == "numpy":
            if type(events) is not list:
                events = list(events)
            if self._route_vectorized(events):
                return self
        add_edge = EventKind.ADD_EDGE
        delete_edge = EventKind.DELETE_EDGE
        buffers = self._buffers
        col_counts = self._col_counts
        shard_events = self.shard_events
        key_cache = self._key_cache
        cache_get = key_cache.get
        key_of = _stable_vertex_key
        num_shards = self.num_shards
        batch_events = self.batch_events
        mask = 0xFFFFFFFFFFFFFFFF
        for event in events:
            if type(event) is tuple:
                kind, u, v = event
            else:
                kind, u, v = event.kind, event.u, event.v
                event = None
            if kind is add_edge or kind is delete_edge:
                # Inline canonical_edge: routing and workers must agree
                # on endpoint order (repr fallback for unorderable ids).
                try:
                    if v < u:
                        u, v = v, u
                        event = None
                except TypeError:
                    if repr(v) < repr(u):
                        u, v = v, u
                        event = None
                if u == v:
                    raise ValueError(f"self-loop edges are not allowed: {u!r}")
                # Routing keys: ints key as themselves (bool excluded by
                # the exact type check, as in _stable_vertex_key); other
                # types go through the bounded FNV-1a cache.
                if type(u) is int:
                    key_u = u
                else:
                    key_u = cache_get(u)
                    if key_u is None:
                        key_u = key_cache[u] = key_of(u)
                        if len(key_cache) > _KEY_CACHE_LIMIT:
                            key_cache.clear()
                if type(v) is int:
                    key_v = v
                else:
                    key_v = cache_get(v)
                    if key_v is None:
                        key_v = key_cache[v] = key_of(v)
                        if len(key_cache) > _KEY_CACHE_LIMIT:
                            key_cache.clear()
                # _combine_keys, inlined (the producer routes every event
                # through this): must stay bit-identical to the shared
                # definition in repro.core.sharded — asserted by
                # tests/test_pipeline.py::test_inlined_routing_matches.
                x = (key_u * 0x9E3779B97F4A7C15 + key_v * 0xBF58476D1CE4E5B9) & mask
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
                shard = (x ^ (x >> 31)) % num_shards
                shard_events[shard] += 1
                if col_counts[shard]:
                    self._flush_shard(shard)  # keep per-shard order
                buffer = buffers[shard]
                buffer.append(event if event is not None else (kind, u, v))
                if len(buffer) >= batch_events:
                    self._flush_shard(shard)
                continue
            # Vertex event: flush everything so the broadcast lands at
            # the same per-shard position as sequential execution. Each
            # shard's frame is encoded against its own delta table (the
            # vertex may be new to some shards and warm in others).
            self._flush_all()
            broadcast = [(kind, u, None)]
            for shard in range(num_shards):
                shard_events[shard] += 1
                if self._failed[shard]:
                    self.dropped_events += 1
                    continue
                frame = _OP_BATCH + self._encoders[shard].encode_batch(broadcast)
                self._send_frame(shard, frame)
        # No automatic metrics sync here: for this class it is a worker
        # round-trip barrier, so it runs at stream boundaries
        # (:meth:`process`) rather than per batch.
        return self

    def _route_vectorized(self, events: List[AnyEvent]) -> bool:
        """Producer routing for an all-edge, all-int tuple batch.

        Computes every event's shard in one ``shard_ids`` call (ints key
        as themselves, so the splitmix64 finalizer applies directly —
        bit-identical to the inlined scalar routing) and keeps only the
        cheap buffer-append/flush loop in Python. Returns False when the
        batch needs the scalar loop: non-tuple events, vertex barriers,
        or endpoints that are not plain int64-range ints.

        Self-loop semantics match the scalar loop: every event before
        the loop is routed (buffered, flushing at ``batch_events`` as
        usual), then the same ``ValueError`` is raised.
        """
        if not events:
            return True
        for event in events:
            if type(event) is not tuple:
                return False
        kinds = [event[0] for event in events]
        n_adds = kinds.count(EventKind.ADD_EDGE)
        n_edges = n_adds + kinds.count(EventKind.DELETE_EDGE)
        if n_edges != len(kinds):
            return False
        us = [event[1] for event in events]
        vs = [event[2] for event in events]
        # Exact-type gate: bools key via the repr hash, huge ints
        # overflow int64 — both take the scalar loop instead.
        if set(map(type, us)) != {int} or set(map(type, vs)) != {int}:
            return False
        import numpy as np

        from repro.sampling.vectorized import shard_ids

        try:
            ua = np.array(us, dtype=np.int64)
            va = np.array(vs, dtype=np.int64)
        except OverflowError:
            return False
        lo = np.minimum(ua, va)
        hi = np.maximum(ua, va)
        loops = np.flatnonzero(lo == hi)
        limit = int(loops[0]) if loops.size else len(events)
        if n_adds == len(kinds):
            # All-ADD batch: bucket columnar and ship version-3 frames
            # — no per-event Python from here to the worker kernel.
            self._bucket_columns(lo[:limit], hi[:limit])
            if loops.size:
                u = us[limit]
                raise ValueError(f"self-loop edges are not allowed: {u!r}")
            return True
        shards = shard_ids(lo[:limit], hi[:limit], self.num_shards).tolist()
        lo_list = lo.tolist()
        hi_list = hi.tolist()
        buffers = self._buffers
        col_counts = self._col_counts
        shard_events = self.shard_events
        batch_events = self.batch_events
        for i, shard in enumerate(shards):
            shard_events[shard] += 1
            if col_counts[shard]:
                self._flush_shard(shard)  # keep per-shard order
            buffer = buffers[shard]
            if vs[i] < us[i]:
                buffer.append((kinds[i], lo_list[i], hi_list[i]))
            else:
                buffer.append(events[i])
            if len(buffer) >= batch_events:
                self._flush_shard(shard)
        if loops.size:
            u = us[limit]
            raise ValueError(f"self-loop edges are not allowed: {u!r}")
        return True

    def _route_columns(self, columns: EventColumns) -> bool:
        """Route an all-ADD columnar batch without leaving numpy.

        Returns False when the columns cannot take the vectorized path
        (numpy missing, or labels that are not plain int64-range ints);
        the caller then falls back to the tuple loop. Self-loop
        semantics match the scalar loop: everything before the first
        loop is routed, then the canonical ``ValueError`` is raised.
        """
        us, vs = columns.us, columns.vs
        if not len(us):
            return True
        try:
            import numpy as np
        except ImportError:
            return False
        if type(us) is list:
            # Exact-type gate, as in _route_vectorized: bools key via
            # the repr hash, huge ints overflow int64.
            if set(map(type, us)) != {int} or set(map(type, vs)) != {int}:
                return False
            try:
                ua = np.array(us, dtype=np.int64)
                va = np.array(vs, dtype=np.int64)
            except OverflowError:
                return False
        else:
            ua = np.asarray(us)
            va = np.asarray(vs)
            if ua.dtype.kind != "i" or va.dtype.kind != "i":
                return False
            ua = ua.astype(np.int64, copy=False)
            va = va.astype(np.int64, copy=False)
        lo = np.minimum(ua, va)
        hi = np.maximum(ua, va)
        loops = np.flatnonzero(lo == hi)
        limit = int(loops[0]) if loops.size else len(us)
        self._bucket_columns(lo[:limit], hi[:limit])
        if loops.size:
            u = us[limit]
            if type(u) is not int:
                u = int(u)
            raise ValueError(f"self-loop edges are not allowed: {u!r}")
        return True

    def _bucket_columns(self, lo, hi) -> None:
        """Bucket canonicalized endpoint arrays into per-shard columnar
        buffers (stable within-shard order), flushing at
        ``batch_events`` as the scalar loop would."""
        if not len(lo):
            return
        import numpy as np

        from repro.sampling.vectorized import shard_ids

        num_shards = self.num_shards
        col_buffers = self._col_buffers
        col_counts = self._col_counts
        shard_events = self.shard_events
        batch_events = self.batch_events
        if num_shards == 1:
            spans = [(0, lo, hi)]
        else:
            shards = shard_ids(lo, hi, num_shards)
            order = np.argsort(shards, kind="stable")
            lo = lo[order]
            hi = hi[order]
            counts = np.bincount(shards, minlength=num_shards)
            spans = []
            start = 0
            for shard in range(num_shards):
                count = int(counts[shard])
                if count:
                    stop = start + count
                    spans.append((shard, lo[start:stop], hi[start:stop]))
                    start = stop
        for shard, shard_lo, shard_hi in spans:
            count = len(shard_lo)
            shard_events[shard] += count
            if self._failed[shard]:
                self.dropped_events += count
                continue
            if self._buffers[shard]:
                self._flush_shard(shard)  # keep per-shard order
            col_buffers[shard].append((shard_lo, shard_hi))
            col_counts[shard] += count
            if col_counts[shard] >= batch_events:
                self._flush_shard(shard)

    def apply(self, event: AnyEvent) -> None:
        """Route one event (buffered; see :meth:`apply_many`)."""
        self.apply_many((event,))

    def process(
        self, events: Iterable[AnyEvent], batch_size: int | None = None
    ) -> "PipelineClusterer":
        """Consume a whole stream; returns self for chaining.

        ``batch_size`` overrides the producer buffer size for this call
        (``None`` keeps the constructor's ``batch_events``). Unlike the
        single clusterer there is no per-event reference path — frames
        are how events reach the workers — but with the default scalar
        kernel frame boundaries cannot change the result: per-shard
        event order is preserved, and the PR-2 split-invariance property
        makes ``apply_many`` insensitive to how a shard's stream is
        chunked. The numpy kernel draws its RNG in per-batch blocks, so
        its (distribution-equivalent) sample is a deterministic function
        of the frame boundaries as well — replay after a worker death
        reproduces the same frames and hence the same result, but
        changing ``batch_events`` changes which equally-valid sample is
        drawn.
        """
        if batch_size is not None:
            check_positive("batch_size", batch_size)
            previous = self.batch_events
            self.batch_events = batch_size
            try:
                self.apply_many(events)
            finally:
                self.batch_events = previous
        else:
            self.apply_many(events)
        if _obs._ENABLED:
            self.sync_metrics()
        return self

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _request(self, shard: int, op: bytes) -> Optional[bytes]:
        """Send one control message and await its reply (a barrier).

        Handles worker death/timeout with the revive path; returns the
        reply payload, or None once the shard is degraded.
        """
        while not self._failed[shard]:
            conn = self._conns[shard]
            error: Optional[str] = None
            try:
                conn.send_bytes(op)
                timeout = self.supervisor.timeout
                if timeout is not None and not conn.poll(timeout):
                    if _obs._ENABLED:
                        _obs.default_registry().counter("supervisor.timeouts").inc()
                    error = f"timeout after {timeout}s awaiting {op!r} reply"
                else:
                    reply = conn.recv_bytes()
                    if reply[:1] == op:
                        return reply[1:]
                    if reply[:1] == _REPLY_ERROR:
                        error = reply[1:].decode("utf-8", "replace")
                    else:
                        error = (
                            f"protocol error: unexpected reply {reply[:1]!r} "
                            f"to {op!r}"
                        )
            except (EOFError, OSError, ValueError) as exc:
                error = f"{type(exc).__name__}: {exc}"
            self._revive(shard, error)
        return None

    # ------------------------------------------------------------------
    # Merged clustering (barriers)
    # ------------------------------------------------------------------
    def snapshot(self) -> Partition:
        """The merged clustering across all live shards (a barrier)."""
        if self._merged is not None:
            return self._merged
        self._flush_all()
        samples: List[tuple] = []
        for shard in range(self.num_shards):
            payload = self._request(shard, _OP_SNAPSHOT)
            if payload is not None:
                samples.append(pickle.loads(payload))
        self._last_samples = samples
        self._merged = merge_shard_samples(self.config.constraint, samples)
        return self._merged

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are in the same merged cluster."""
        merged = self.snapshot()
        return u in merged and v in merged and merged.same_cluster(u, v)

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices merged-clustered with ``v``."""
        merged = self.snapshot()
        if v not in merged:
            return frozenset({v})
        return merged.members(merged.label_of(v))

    @property
    def num_clusters(self) -> int:
        """Number of merged clusters (a barrier)."""
        return self.snapshot().num_clusters

    @property
    def approx_num_clusters(self) -> Optional[int]:
        """Cluster count if a current merge is cached, else None.

        Cheap (no worker round-trip): progress reporting reads this so
        a report line never stalls the producer behind a full barrier.
        """
        merged = self._merged
        return merged.num_clusters if merged is not None else None

    @property
    def total_reservoir_size(self) -> int:
        """Sampled edges across all shards (a barrier)."""
        self.snapshot()
        return sum(len(edges) for _, edges in self._last_samples or [])

    @property
    def shard_balance(self) -> float:
        """Total events over max per-shard events — the speedup bound
        (see :attr:`ShardedClusterer.shard_balance`)."""
        busiest = max(self.shard_events, default=0)
        if busiest == 0:
            return 1.0
        return sum(self.shard_events) / busiest

    def progress_snapshot(self) -> dict:
        """Cheap, barrier-free fields for :class:`ProgressReporter`."""
        fields: dict = {}
        clusters = self.approx_num_clusters
        if clusters is not None:
            fields["clusters"] = clusters
        return fields

    # ------------------------------------------------------------------
    # Persistence (barrier)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete state in :class:`ShardedClusterer`'s exact format.

        Fetches every worker's state (a barrier), substituting each
        shard's ``config`` with a parent-side ``_shard_config`` — the
        same shared-constraint object graph sequential execution builds,
        so the canonicalized checkpoint is byte-identical to one written
        by a sequential ``ShardedClusterer``. Degraded pipelines cannot
        checkpoint: a tombstoned shard's state is gone, and silently
        writing a partial checkpoint would masquerade as the real one.
        """
        states: List[dict] = []
        self._flush_all()
        for shard in range(self.num_shards):
            if self._failed[shard]:
                raise CheckpointError(
                    f"cannot checkpoint: shard {shard} was degraded after "
                    f"{self.shard_attempts[shard]} attempt(s) "
                    f"({self._fail_errors[shard]})"
                )
            payload = self._request(shard, _OP_STATE)
            if payload is None:
                raise CheckpointError(
                    f"cannot checkpoint: shard {shard} was degraded while "
                    f"fetching its state ({self._fail_errors[shard]})"
                )
            # The fetched state doubles as the shard's recovery base:
            # the frame log restarts here, bounding replay-on-death. The
            # encoder table is snapshot alongside — a respawn primes the
            # fresh decoder with it before the (now empty) log replays.
            self._base_state[shard] = payload
            self._log[shard].clear()
            self._base_tables[shard] = self._encoders[shard].table()
            state = pickle.loads(payload)
            state["config"] = _shard_config(self.config, shard, self.num_shards)
            states.append(state)
        return {
            "config": self.config,
            "num_shards": self.num_shards,
            "shard_events": list(self.shard_events),
            "shards": states,
        }

    @classmethod
    def from_state(cls, state: dict, **kwargs) -> "PipelineClusterer":
        """Reconstruct a running pipeline from :meth:`get_state` output
        (or from a sequential :class:`ShardedClusterer` checkpoint —
        the formats are identical). ``kwargs`` forward to the
        constructor (``batch_events``, ``supervisor``, ...).
        """
        kwargs.pop("start", None)
        pipeline = cls(state["config"], state["num_shards"], start=False, **kwargs)
        shard_states = state["shards"]
        if len(shard_states) != pipeline.num_shards:
            raise ValueError(
                f"checkpoint has {len(shard_states)} shard states for "
                f"num_shards={pipeline.num_shards}"
            )
        pipeline.shard_events = list(state["shard_events"])
        pipeline._base_state = [
            pickle.dumps(shard_state, protocol=4) for shard_state in shard_states
        ]
        pipeline.start()
        return pipeline

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def worker_metrics(self) -> List[Optional[dict]]:
        """Per-shard worker metrics (a barrier; None for degraded shards).

        Each live entry carries the worker's stat counters, probe
        counters, reservoir size, events applied, and CPU accounting
        (``busy_seconds`` inside batch application, ``cpu_seconds``
        process total) — the E5b scaling bench builds its per-stage
        busy-time model from these.
        """
        self._flush_all()
        payloads: List[Optional[dict]] = []
        for shard in range(self.num_shards):
            payload = self._request(shard, _OP_METRICS)
            payloads.append(None if payload is None else pickle.loads(payload))
        return payloads

    def sync_metrics(self) -> None:
        """Publish pipeline + per-worker metrics to the default registry.

        ``clusterer.*`` counters aggregate worker deltas exactly as the
        sequential shards do; ``sharded.*`` gauges (events, balance,
        skew, reservoir) keep their meaning; ``pipeline.*`` gauges add
        the transport view (frames/bytes sent, restarts, drops). This
        is a barrier — call at stream boundaries, not per batch.
        """
        registry = _obs.default_registry()
        gauge = registry.gauge
        counter = registry.counter
        for shard, events in enumerate(self.shard_events):
            gauge(f"sharded.shard_events.{shard}").set(events)
        total = sum(self.shard_events)
        busiest = max(self.shard_events, default=0)
        gauge("sharded.shard_balance").set(self.shard_balance)
        skew = busiest * self.num_shards / total if total else 1.0
        gauge("sharded.shard_skew").set(skew)
        reservoir_total = 0
        vertices_total = 0
        for shard, payload in enumerate(self.worker_metrics()):
            if payload is None:
                continue
            last = self._metrics_last[shard]
            for group in ("stats", "probes"):
                for name, value in payload[group].items():
                    previous = last.get(name, 0)
                    if value > previous:
                        counter("clusterer." + name).inc(value - previous)
                        last[name] = value
            reservoir_total += payload["reservoir_size"]
            vertices_total += payload["num_vertices"]
        gauge("sharded.reservoir_size").set(reservoir_total)
        gauge("clusterer.reservoir_size").set(reservoir_total)
        gauge("clusterer.reservoir_fill").set(
            reservoir_total / self.config.reservoir_capacity
        )
        gauge("clusterer.num_vertices").set(vertices_total)
        gauge("pipeline.frames_sent").set(self.frames_sent)
        gauge("pipeline.bytes_sent").set(self.bytes_sent)
        gauge("pipeline.worker_restarts").set(self.worker_restarts)
        gauge("pipeline.dropped_events").set(self.dropped_events)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, *, timeout: float = 5.0) -> None:
        """Stop and reap all workers (idempotent).

        Pending buffered events are flushed first so late queries on a
        *different* handle (e.g. a checkpoint written just before) are
        never silently short; after close the pipeline refuses further
        ingestion. Buffered events that cannot be flushed — the shard
        is degraded, or its worker died and the pipe write fails — are
        *lost*, and honestly so: they are counted into
        :attr:`dropped_events` and draw the standard degradation
        warning, so a checkpoint written just before a failed close is
        never silently short either.
        """
        if self._closed:
            return
        self._closed = True
        for shard in range(self.num_shards):
            conn = self._conns[shard]
            buffer = self._buffers[shard]
            col = self._col_buffers[shard]
            if conn is None or self._failed[shard]:
                # A tombstoned shard drops its events by contract, but
                # the count must not vanish with them: events buffered
                # since the last flush were never accounted.
                if buffer or col:
                    self.dropped_events += len(buffer) + self._col_counts[shard]
                    buffer.clear()
                    col.clear()
                    self._col_counts[shard] = 0
                continue
            try:
                for frame in self._encoders[shard].encode_batches(
                    buffer, max_bytes=self.max_frame_bytes
                ):
                    conn.send_bytes(_OP_BATCH + frame)
                buffer.clear()
                if col:
                    for frame in self._encode_col_frames(shard):
                        conn.send_bytes(_OP_BATCH + frame)
                    col.clear()
                    self._col_counts[shard] = 0
                conn.send_bytes(_OP_STOP)
            except (OSError, ValueError) as error:
                if buffer or col:
                    lost = len(buffer) + self._col_counts[shard]
                    self.dropped_events += lost
                    buffer.clear()
                    col.clear()
                    self._col_counts[shard] = 0
                    warnings.warn(
                        f"shard {shard} failed while flushing {lost} "
                        f"buffered event(s) at close "
                        f"({type(error).__name__}: {error}); they are "
                        "dropped from the final state",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
        deadline = time.monotonic() + timeout
        for shard in range(self.num_shards):
            conn = self._conns[shard]
            if conn is not None:
                try:
                    remaining = max(0.0, deadline - time.monotonic())
                    if conn.poll(remaining):
                        conn.recv_bytes()  # the STOP ack
                except (EOFError, OSError):
                    pass
            self._dispose_worker(shard)

    def __enter__(self) -> "PipelineClusterer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "running"
        return (
            f"PipelineClusterer(num_workers={self.num_shards}, "
            f"batch_events={self.batch_events}, {state})"
        )
