"""Sharded (parallel) graph reservoir sampling.

The paper notes the algorithm "can be easily parallelized": edges are
hash-partitioned across workers, every worker maintains an independent
edge reservoir over its shard of the stream, and the declared clusters
are the connected components of the **union** of the sampled sub-graphs.
Workers never coordinate during stream processing — only the (cheap)
component merge at query time touches cross-shard state, so throughput
scales with the number of workers.

Two drivers are provided:

* :class:`ShardedClusterer` — in-process sharding. Routes each event to
  its shard and keeps per-shard event counts, from which the *shard
  balance* (the quantity that bounds real-machine speedup) is computed.
* :func:`cluster_stream_parallel` — a multiprocessing driver that
  partitions a finite stream, processes shards in separate processes,
  and merges the returned samples. Suitable for batch experiments; the
  in-process class is the online API.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from itertools import islice
from queue import Empty
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.connectivity.union_find import UnionFind
from repro.core.clusterer import AnyEvent, StreamingGraphClusterer
from repro.obs import metrics as _obs
from repro.core.config import ClustererConfig, normalize_config
from repro.quality.partition import Partition
from repro.streams.events import (
    Edge,
    EdgeEvent,
    EventKind,
    Vertex,
    canonical_edge,
)
from repro.util.rng import child_seed
from repro.util.validation import check_positive

__all__ = [
    "ShardedClusterer",
    "ShardResult",
    "SupervisorConfig",
    "cluster_stream_parallel",
    "merge_shard_samples",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mp_context():
    """The multiprocessing context for every worker this package spawns.

    Pinned to ``spawn`` rather than the platform default: ``fork`` (the
    Linux default) would duplicate the parent's RNG state, lazy caches,
    and open descriptors into workers, so the same program could behave
    differently on Linux and macOS/Windows (where ``spawn`` already is
    the default). A fresh interpreter per worker keeps worker behaviour
    a function of its explicit arguments alone.
    """
    import multiprocessing

    return multiprocessing.get_context("spawn")


def _stable_vertex_key(v: Vertex) -> int:
    """A process-stable 64-bit key for an arbitrary vertex id.

    Integers key as themselves. Everything else is hashed FNV-1a over
    the UTF-8 bytes of its ``repr`` — unlike builtin ``hash()``, which
    is salted by ``PYTHONHASHSEED`` for strings and would route the same
    vertex to different shards in different processes, breaking both the
    multiprocessing driver and checkpoint recovery.
    """
    if isinstance(v, int) and not isinstance(v, bool):
        return v
    key = 0xCBF29CE484222325
    for byte in repr(v).encode("utf-8"):
        key = ((key ^ byte) * 0x100000001B3) & _MASK64
    return key


def _combine_keys(key_u: int, key_v: int, num_shards: int) -> int:
    """Mix two endpoint keys into a shard index (splitmix64 finalizer).

    Split out of :func:`_shard_of` so the pipeline producer can route
    from *cached* vertex keys without recomputing them per event; both
    callers must agree bit-for-bit for the equivalence property to hold.
    """
    x = (key_u * 0x9E3779B97F4A7C15 + key_v * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) % num_shards


def _shard_of(edge: Edge, num_shards: int) -> int:
    """Deterministic shard routing for an edge.

    Endpoint keys are combined and passed through a splitmix64-style
    finalizer: low bits must be well mixed, since structured ids (e.g.
    community = id mod k) otherwise correlate with the shard index and
    wreck the balance. Stable across processes and runs regardless of
    ``PYTHONHASHSEED`` for *all* vertex types.
    """
    u, v = edge
    return _combine_keys(
        _stable_vertex_key(u), _stable_vertex_key(v), num_shards
    )


def _shard_config(config: ClustererConfig, shard: int, num_shards: int) -> ClustererConfig:
    """Per-shard configuration: split the memory budget, derive the seed."""
    capacity = max(1, config.reservoir_capacity // num_shards)
    return ClustererConfig(
        reservoir_capacity=capacity,
        constraint=config.constraint,
        connectivity_backend=config.connectivity_backend,
        track_graph=config.track_graph,
        strict=config.strict,
        deletion_policy=config.deletion_policy,
        resample_threshold=config.resample_threshold,
        seed=child_seed(config.seed, "shard", shard),
        batch_fast_path=config.batch_fast_path,
        kernel=getattr(config, "kernel", "scalar"),
    )


class _UnionFindConstraintView:
    """Just enough of the DynamicConnectivity interface for constraint
    policies to evaluate merge-time admissions over a union-find."""

    def __init__(self, union: UnionFind) -> None:
        self._union = union

    def connected(self, u: Vertex, v: Vertex) -> bool:
        return self._union.connected(u, v)

    def component_size(self, v: Vertex) -> int:
        return self._union.set_size(v)

    @property
    def num_components(self) -> int:
        return self._union.num_sets


def merge_shard_samples(
    constraint, parts: Iterable[Tuple[Iterable[Vertex], Iterable[Edge]]]
) -> Partition:
    """Merge shard samples into the declared global clustering.

    ``parts`` is ``(vertices, sampled_edges)`` per shard, *in shard
    order* — the declared clusters are the connected components of the
    union of the sampled sub-graphs. The admission ``constraint`` is
    re-enforced at merge time: each shard bounded only its local sample,
    and the union of innocent shard-local clusters can violate the
    global bound. All vertices are registered before any union so the
    constraint evaluates every candidate merge against the full vertex
    universe, exactly as :class:`ShardedClusterer` always did; the
    multiprocess drivers share this function so the three execution
    modes cannot drift apart.
    """
    union = UnionFind()
    view = _UnionFindConstraintView(union)
    parts = list(parts)
    for vertices, _ in parts:
        for vertex in vertices:
            union.add(vertex)
    for _, edges in parts:
        for u, v in edges:
            if constraint.allows(view, u, v):
                union.union(u, v)
    return Partition.from_clusters(union.groups())


class ShardedClusterer:
    """Hash-partitioned ensemble of streaming clusterers.

    The declared clustering is the component structure of the union of
    all shards' sampled sub-graphs; it is computed lazily and cached
    until the next update.
    """

    def __init__(self, config: ClustererConfig, num_shards: int) -> None:
        check_positive("num_shards", num_shards)
        self.config = config
        self.num_shards = num_shards
        self.shards: List[StreamingGraphClusterer] = [
            StreamingGraphClusterer(_shard_config(config, i, num_shards))
            for i in range(num_shards)
        ]
        self.shard_events: List[int] = [0] * num_shards
        self._merged: Optional[Partition] = None
        # Shard structure_version vector at the time `_merged` was
        # built; a rebuild happens only when some shard's version moved
        # (mirrors the single clusterer's extraction cache).
        self._merged_versions: Optional[List[int]] = None
        #: Probe counter: merged partitions actually (re)built (not
        #: persisted; the cache-effectiveness regression test counts it).
        self.merge_builds = 0

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Route one event to its shard (vertex events go everywhere)."""
        if event.is_edge_event:
            shard = _shard_of(event.edge, self.num_shards)
            self.shard_events[shard] += 1
            self.shards[shard].apply(event)
            return
        # Vertex events are broadcast: any shard may hold incident edges,
        # and all shards must know the vertex exists for their snapshots.
        for shard, clusterer in enumerate(self.shards):
            self.shard_events[shard] += 1
            if event.kind is EventKind.DELETE_VERTEX and clusterer.config.strict:
                # A vertex can be unknown to some shards; tolerate that.
                if clusterer.graph is not None and not clusterer.graph.has_vertex(
                    event.u
                ):
                    continue
            clusterer.apply(event)

    def apply_many(self, events: Iterable[AnyEvent]) -> "ShardedClusterer":
        """Apply a batch of events through the shards' batched fast path.

        Edge events (``EdgeEvent`` or raw ``(kind, u, v)`` tuples) are
        bucketed per shard — canonicalized first, since shard routing
        keys on the canonical endpoint order — and each bucket is handed
        to :meth:`StreamingGraphClusterer.apply_many` in one call.
        Because shards are fully independent, per-shard order is all
        that matters and the result is identical to routing events one
        at a time. Vertex events are barriers: buckets flush, then the
        event is broadcast exactly as in :meth:`apply`.
        """
        if getattr(self.config, "kernel", "scalar") == "numpy":
            if type(events) is not list:
                events = list(events)
            if self._route_vectorized(events):
                if _obs._ENABLED:
                    self.sync_metrics()
                return self
        buckets: List[List[AnyEvent]] = [[] for _ in range(self.num_shards)]

        def flush() -> None:
            for shard, bucket in enumerate(buckets):
                if bucket:
                    self.shard_events[shard] += len(bucket)
                    self.shards[shard].apply_many(bucket)
                    bucket.clear()

        for event in events:
            if type(event) is tuple:
                kind, u, v = event
                if kind is EventKind.ADD_EDGE or kind is EventKind.DELETE_EDGE:
                    edge = canonical_edge(u, v)
                    buckets[_shard_of(edge, self.num_shards)].append(event)
                    continue
                barrier = EdgeEvent(kind, u, v)
            elif event.is_edge_event:
                buckets[_shard_of(event.edge, self.num_shards)].append(event)
                continue
            else:
                barrier = event
            flush()
            self.apply(barrier)
        flush()
        if _obs._ENABLED:
            self.sync_metrics()
        return self

    def _route_vectorized(self, events: List[AnyEvent]) -> bool:
        """Bucket an all-edge, all-int batch with one vectorized pass.

        Returns True when the batch was routed (possibly trivially, for
        an empty batch); False means the batch is not eligible — mixed
        kinds, non-tuple events, or non-int endpoints — and the caller
        must take the scalar routing loop instead. Shard assignment is
        ``sampling.vectorized.shard_ids`` on the canonical endpoint
        order, bit-for-bit the scalar ``_shard_of``, so both routes
        produce identical shard streams.

        A self-loop raises exactly like the scalar loop's
        ``canonical_edge`` — before anything is applied, since the
        scalar path only flushes its buckets after the full scan.
        """
        if not events:
            return True
        for event in events:
            if type(event) is not tuple:
                return False
        kinds = [event[0] for event in events]
        n_edges = kinds.count(EventKind.ADD_EDGE) + kinds.count(
            EventKind.DELETE_EDGE
        )
        if n_edges != len(kinds):
            return False  # vertex barriers: scalar loop handles ordering
        us = [event[1] for event in events]
        vs = [event[2] for event in events]
        # Exact-type gate: bools route through the repr hash and huge
        # ints overflow int64 — both fall back to the scalar loop.
        if set(map(type, us)) != {int} or set(map(type, vs)) != {int}:
            return False
        import numpy as np

        from repro.sampling.vectorized import shard_ids

        try:
            ua = np.array(us, dtype=np.int64)
            va = np.array(vs, dtype=np.int64)
        except OverflowError:
            return False
        lo = np.minimum(ua, va)
        hi = np.maximum(ua, va)
        loops = np.flatnonzero(lo == hi)
        if loops.size:
            u = us[int(loops[0])]
            raise ValueError(
                f"self-loop edges are not allowed: ({u!r}, {u!r})"
            )
        shard_events = self.shard_events
        buckets: List[List[AnyEvent]] = [[] for _ in range(self.num_shards)]
        for event, shard in zip(events, shard_ids(lo, hi, self.num_shards).tolist()):
            buckets[shard].append(event)
        for shard, bucket in enumerate(buckets):
            if bucket:
                shard_events[shard] += len(bucket)
                self.shards[shard].apply_many(bucket)
        return True

    def process(
        self, events: Iterable[AnyEvent], batch_size: int | None = None
    ) -> "ShardedClusterer":
        """Process a whole stream; returns self for chaining.

        ``batch_size`` chunks the stream through :meth:`apply_many`;
        ``None`` (the default) keeps the per-event reference path.
        """
        if batch_size is not None:
            check_positive("batch_size", batch_size)
            iterator = iter(events)
            while True:
                chunk = list(islice(iterator, batch_size))
                if not chunk:
                    return self
                self.apply_many(chunk)
        for event in events:
            self.apply(event)
        if _obs._ENABLED:
            self.sync_metrics()
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete serializable state: config, routing counters, and
        one sub-state per shard (see
        :meth:`StreamingGraphClusterer.get_state`)."""
        return {
            "config": self.config,
            "num_shards": self.num_shards,
            "shard_events": list(self.shard_events),
            "shards": [shard.get_state() for shard in self.shards],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ShardedClusterer":
        """Reconstruct a sharded clusterer from :meth:`get_state` output."""
        sharded = cls(normalize_config(state["config"]), state["num_shards"])
        shard_states = state["shards"]
        if len(shard_states) != sharded.num_shards:
            raise ValueError(
                f"checkpoint has {len(shard_states)} shard states for "
                f"num_shards={sharded.num_shards}"
            )
        sharded.shards = [
            StreamingGraphClusterer.from_state(shard_state)
            for shard_state in shard_states
        ]
        sharded.shard_events = list(state["shard_events"])
        sharded._merged = None
        sharded._merged_versions = None
        return sharded

    # ------------------------------------------------------------------
    # Merged clustering
    # ------------------------------------------------------------------
    def _merge(self) -> Partition:
        # Dirty-flag cache over the shards' structure_version counters:
        # queries between updates (or after no-op events, e.g. rejected
        # duplicates) reuse the built partition instead of re-running
        # the union-find over every sampled edge.
        versions = [shard.structure_version for shard in self.shards]
        if self._merged is not None and versions == self._merged_versions:
            return self._merged
        self._merged = merge_shard_samples(
            self.config.constraint,
            ((shard.vertices(), shard.reservoir_edges()) for shard in self.shards),
        )
        self._merged_versions = versions
        self.merge_builds += 1
        return self._merged

    def snapshot(self) -> Partition:
        """The merged clustering across all shards."""
        return self._merge()

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are in the same merged cluster."""
        merged = self._merge()
        return u in merged and v in merged and merged.same_cluster(u, v)

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices merged-clustered with ``v``."""
        merged = self._merge()
        if v not in merged:
            return frozenset({v})
        return merged.members(merged.label_of(v))

    @property
    def num_clusters(self) -> int:
        """Number of merged clusters."""
        return self._merge().num_clusters

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def sync_metrics(self) -> None:
        """Publish per-shard event and skew gauges to the default
        metrics registry (``sharded.*`` — see docs/observability.md).

        Each shard's own ``clusterer.*`` counters are synced too, so one
        call leaves the registry fully current. Called automatically at
        ``apply_many``/``process`` boundaries when :mod:`repro.obs` is
        enabled.
        """
        registry = _obs.default_registry()
        gauge = registry.gauge
        for shard, events in enumerate(self.shard_events):
            gauge(f"sharded.shard_events.{shard}").set(events)
        total = sum(self.shard_events)
        busiest = max(self.shard_events, default=0)
        gauge("sharded.shard_balance").set(self.shard_balance)
        # Skew: busiest shard's load relative to a perfectly balanced
        # one (1.0 = even; num_shards = everything on one shard).
        skew = busiest * self.num_shards / total if total else 1.0
        gauge("sharded.shard_skew").set(skew)
        gauge("sharded.reservoir_size").set(self.total_reservoir_size)
        for clusterer in self.shards:
            clusterer.sync_metrics()

    # ------------------------------------------------------------------
    # Parallelism accounting
    # ------------------------------------------------------------------
    @property
    def shard_balance(self) -> float:
        """Total events over max per-shard events — the speedup bound.

        On a machine with ``num_shards`` cores the wall-clock of the
        stream phase is governed by the busiest shard; this ratio is the
        resulting speedup over a single worker (1.0 means no benefit,
        ``num_shards`` means perfect balance).
        """
        busiest = max(self.shard_events, default=0)
        if busiest == 0:
            return 1.0
        return sum(self.shard_events) / busiest

    @property
    def total_reservoir_size(self) -> int:
        """Sampled edges across all shards."""
        return sum(clusterer.reservoir_size for clusterer in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedClusterer(num_shards={self.num_shards}, "
            f"reservoir={self.total_reservoir_size})"
        )


# ----------------------------------------------------------------------
# Multiprocessing driver (supervised)
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """What a shard worker returns: its sample and the vertices it saw.

    When a shard exhausts its retry budget under supervision, a
    *tombstone* result is recorded instead (``failed=True``, empty
    sample) so the merge can degrade gracefully rather than hang.
    """

    shard: int
    sampled_edges: List[Edge]
    vertices: List[Vertex]
    events: int
    attempts: int = 1
    failed: bool = False
    error: Optional[str] = None


@dataclass
class SupervisorConfig:
    """Fault-tolerance policy for :func:`cluster_stream_parallel`.

    Each shard attempt runs in its own worker process with a wall-clock
    ``timeout``; a worker that crashes, hangs past the timeout, or exits
    without reporting is retried with exponential backoff
    (``backoff * backoff_factor ** (attempt - 1)`` seconds) up to
    ``max_attempts`` total attempts. A shard that fails permanently is
    dropped from the merge with a warning and a tombstone
    :class:`ShardResult` — the run degrades instead of hanging.
    """

    timeout: Optional[float] = 60.0
    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    poll_interval: float = 0.01

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 and backoff_factor >= 1.0")

    def delay_before(self, attempt: int) -> float:
        """Backoff before ``attempt`` (attempts count from 1; no delay
        before the first)."""
        if attempt <= 1:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 2)


def _run_shard(
    shard: int,
    config: ClustererConfig,
    num_shards: int,
    events: Sequence[AnyEvent],
    batch_size: int | None,
    fault,
    attempt: int,
) -> ShardResult:
    if fault is not None:
        fault(shard, attempt)
    clusterer = StreamingGraphClusterer(_shard_config(config, shard, num_shards))
    clusterer.process(events, batch_size=batch_size)
    return ShardResult(
        shard=shard,
        sampled_edges=clusterer.reservoir_edges(),
        vertices=list(clusterer.vertices()),
        events=len(events),
        attempts=attempt,
    )


def _process_shard(
    args: Tuple[int, ClustererConfig, int, Sequence[AnyEvent], Optional[int]],
) -> ShardResult:
    shard, config, num_shards, events, batch_size = args
    return _run_shard(shard, config, num_shards, events, batch_size, None, 1)


def _worker_entry(task, fault, attempt: int, queue) -> None:
    """Worker process body: run the shard, report the outcome.

    A hard crash (``os._exit``, OOM kill, segfault) reports nothing; the
    supervisor detects the dead process and treats it as a failed
    attempt. Soft exceptions are reported so their message survives into
    the tombstone result.
    """
    shard = task[0]
    try:
        result = _run_shard(*task, fault, attempt)
        queue.put((shard, "ok", result))
    except BaseException as error:  # noqa: BLE001 - must never escape silently
        try:
            queue.put((shard, "error", f"{type(error).__name__}: {error}"))
        finally:
            return


def _fail_shard(shard: int, bucket_len: int, attempts: int, error: str) -> ShardResult:
    if _obs._ENABLED:
        _obs.default_registry().counter("supervisor.degradations").inc()
    warnings.warn(
        f"shard {shard} failed permanently after {attempts} attempt(s) "
        f"({error}); dropping its sample from the merge",
        RuntimeWarning,
        stacklevel=3,
    )
    return ShardResult(
        shard=shard,
        sampled_edges=[],
        vertices=[],
        events=bucket_len,
        attempts=attempts,
        failed=True,
        error=error,
    )


def _run_supervised_inline(
    tasks, supervisor: SupervisorConfig, fault
) -> List[ShardResult]:
    """Sequential supervised execution (``pool_processes <= 1``).

    Crashing workers are retried with backoff exactly as in the process
    mode; hangs cannot be interrupted without a process boundary, so
    ``timeout`` is not enforced here (documented in docs/robustness.md).
    """
    results: List[ShardResult] = []
    for task in tasks:
        shard, bucket = task[0], task[3]
        last_error = "unknown"
        for attempt in range(1, supervisor.max_attempts + 1):
            if _obs._ENABLED:
                registry = _obs.default_registry()
                registry.counter("supervisor.attempts").inc()
                if attempt > 1:
                    registry.counter("supervisor.retries").inc()
            delay = supervisor.delay_before(attempt)
            if delay:
                time.sleep(delay)
            try:
                results.append(_run_shard(*task, fault, attempt))
                break
            except Exception as error:  # simulated or real worker crash
                last_error = f"{type(error).__name__}: {error}"
        else:
            results.append(
                _fail_shard(shard, len(bucket), supervisor.max_attempts, last_error)
            )
    return results


def _run_supervised_pool(
    tasks, supervisor: SupervisorConfig, fault, processes: int
) -> List[ShardResult]:
    """Run shard attempts in supervised worker processes.

    At most ``processes`` workers run concurrently. Each has a deadline;
    deadline overruns are terminated. Failed attempts (crash, timeout,
    exit-without-result) are rescheduled with backoff until the attempt
    budget is spent, at which point the shard gets a tombstone result.
    """
    ctx = _mp_context()
    queue = ctx.Queue()
    monotonic = time.monotonic

    by_shard = {task[0]: task for task in tasks}
    attempts: Dict[int, int] = {shard: 0 for shard in by_shard}
    last_error: Dict[int, str] = {}
    results: Dict[int, ShardResult] = {}
    # (ready_time, shard) — shards waiting for a free worker slot.
    waiting: List[Tuple[float, int]] = [(0.0, task[0]) for task in tasks]
    running: Dict[int, Tuple[object, float]] = {}  # shard -> (process, deadline)

    def reap(shard: int, process, error: str) -> None:
        process.join(timeout=5.0)
        last_error[shard] = error
        if attempts[shard] >= supervisor.max_attempts:
            bucket = by_shard[shard][3]
            results[shard] = _fail_shard(shard, len(bucket), attempts[shard], error)
        else:
            retry_at = monotonic() + supervisor.delay_before(attempts[shard] + 1)
            waiting.append((retry_at, shard))

    while waiting or running:
        now = monotonic()
        # Launch ready shards into free slots.
        waiting.sort()
        while waiting and waiting[0][0] <= now and len(running) < processes:
            _, shard = waiting.pop(0)
            attempts[shard] += 1
            if _obs._ENABLED:
                registry = _obs.default_registry()
                registry.counter("supervisor.attempts").inc()
                if attempts[shard] > 1:
                    registry.counter("supervisor.retries").inc()
            process = ctx.Process(
                target=_worker_entry,
                args=(by_shard[shard], fault, attempts[shard], queue),
                daemon=True,
            )
            process.start()
            deadline = (
                now + supervisor.timeout if supervisor.timeout is not None
                else float("inf")
            )
            running[shard] = (process, deadline)

        # Drain finished workers (results must be consumed before join).
        while True:
            try:
                shard, status, payload = queue.get_nowait()
            except Empty:
                break
            entry = running.pop(shard, None)
            if entry is None:
                continue  # late report from a terminated worker
            process, _ = entry
            if status == "ok":
                results[shard] = payload
                process.join(timeout=5.0)
            else:
                reap(shard, process, payload)

        # Enforce deadlines and notice silent deaths.
        now = monotonic()
        for shard in list(running):
            process, deadline = running[shard]
            if now > deadline:
                running.pop(shard)
                process.terminate()
                if _obs._ENABLED:
                    _obs.default_registry().counter("supervisor.timeouts").inc()
                reap(shard, process, f"timeout after {supervisor.timeout}s")
            elif not process.is_alive():
                # Dead without reporting: give the queue feeder one tick
                # to deliver, then treat as a hard crash.
                time.sleep(supervisor.poll_interval)
                try:
                    late_shard, status, payload = queue.get_nowait()
                except Empty:
                    running.pop(shard)
                    if _obs._ENABLED:
                        _obs.default_registry().counter(
                            "supervisor.worker_deaths"
                        ).inc()
                    reap(
                        shard,
                        process,
                        f"worker died without result (exitcode {process.exitcode})",
                    )
                else:
                    entry = running.pop(late_shard, None)
                    if entry is None:
                        continue
                    late_process, _ = entry
                    if status == "ok":
                        results[late_shard] = payload
                        late_process.join(timeout=5.0)
                    else:
                        reap(late_shard, late_process, payload)

        if running:
            time.sleep(supervisor.poll_interval)

    queue.close()
    return [results[task[0]] for task in tasks]


def cluster_stream_parallel(
    events: Sequence[AnyEvent],
    config: ClustererConfig,
    num_shards: int,
    pool_processes: int | None = None,
    supervisor: SupervisorConfig | None = None,
    fault=None,
    batch_size: int | None = None,
) -> Tuple[Partition, List[ShardResult]]:
    """Cluster a finite stream with one supervised process per shard.

    The stream is hash-partitioned by edge, shards are processed in
    worker processes (or inline when ``pool_processes`` is 0/1 or
    ``num_shards == 1``), and the shard samples are merged into the
    final partition. Only edge events are supported here — broadcast
    vertex events need the online :class:`ShardedClusterer`. Events may
    be :class:`EdgeEvent` instances or raw ``(kind, u, v)`` tuples;
    ``batch_size`` makes each worker ingest its shard through the
    batched fast path (``None`` keeps the per-event reference path).

    Pass a :class:`SupervisorConfig` to run under supervision: per-worker
    timeouts, bounded retry with exponential backoff, and graceful
    degradation (permanently failed shards are dropped from the merge
    with a warning and a ``failed=True`` tombstone in the results).
    ``fault`` injects a deterministic :class:`~repro.util.faults.ShardFault`
    into workers, for testing; providing one implies supervision.
    """
    check_positive("num_shards", num_shards)
    buckets: List[List[AnyEvent]] = [[] for _ in range(num_shards)]
    for event in events:
        if type(event) is tuple:
            kind, u, v = event
            if kind is not EventKind.ADD_EDGE and kind is not EventKind.DELETE_EDGE:
                raise ValueError(
                    "cluster_stream_parallel supports edge events only; "
                    "use ShardedClusterer for vertex events"
                )
            edge = canonical_edge(u, v)
        elif event.is_edge_event:
            edge = event.edge
        else:
            raise ValueError(
                "cluster_stream_parallel supports edge events only; "
                "use ShardedClusterer for vertex events"
            )
        buckets[_shard_of(edge, num_shards)].append(event)

    tasks = [
        (i, config, num_shards, bucket, batch_size)
        for i, bucket in enumerate(buckets)
    ]
    if fault is not None and supervisor is None:
        supervisor = SupervisorConfig()
    inline = num_shards == 1 or (pool_processes is not None and pool_processes <= 1)
    if supervisor is None:
        if inline:
            results = [_process_shard(task) for task in tasks]
        else:
            import multiprocessing

            processes = pool_processes or min(num_shards, multiprocessing.cpu_count())
            with _mp_context().Pool(processes=processes) as pool:
                results = pool.map(_process_shard, tasks)
    elif inline:
        results = _run_supervised_inline(tasks, supervisor, fault)
    else:
        import multiprocessing

        processes = pool_processes or min(num_shards, multiprocessing.cpu_count())
        results = _run_supervised_pool(tasks, supervisor, fault, processes)

    merged = merge_shard_samples(
        config.constraint,
        (
            (result.vertices, result.sampled_edges)
            for result in results
            if not result.failed
        ),
    )
    return merged, results
