"""Sharded (parallel) graph reservoir sampling.

The paper notes the algorithm "can be easily parallelized": edges are
hash-partitioned across workers, every worker maintains an independent
edge reservoir over its shard of the stream, and the declared clusters
are the connected components of the **union** of the sampled sub-graphs.
Workers never coordinate during stream processing — only the (cheap)
component merge at query time touches cross-shard state, so throughput
scales with the number of workers.

Two drivers are provided:

* :class:`ShardedClusterer` — in-process sharding. Routes each event to
  its shard and keeps per-shard event counts, from which the *shard
  balance* (the quantity that bounds real-machine speedup) is computed.
* :func:`cluster_stream_parallel` — a multiprocessing driver that
  partitions a finite stream, processes shards in separate processes,
  and merges the returned samples. Suitable for batch experiments; the
  in-process class is the online API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.connectivity.union_find import UnionFind
from repro.core.clusterer import StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.quality.partition import Partition
from repro.streams.events import Edge, EdgeEvent, EventKind, Vertex
from repro.util.rng import child_seed
from repro.util.validation import check_positive

__all__ = ["ShardedClusterer", "ShardResult", "cluster_stream_parallel"]


def _shard_of(edge: Edge, num_shards: int) -> int:
    """Deterministic shard routing for an edge.

    Integer endpoints (the common case) use an explicit mixing function
    so routing is stable across processes and runs regardless of
    ``PYTHONHASHSEED``; other vertex types fall back to ``hash``.
    """
    u, v = edge
    if isinstance(u, int) and isinstance(v, int):
        # splitmix64-style finalizer: low bits must be well mixed, since
        # structured ids (e.g. community = id mod k) otherwise correlate
        # with the shard index and wreck the balance.
        x = (u * 0x9E3779B97F4A7C15 + v * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return (x ^ (x >> 31)) % num_shards
    return hash(edge) % num_shards


def _shard_config(config: ClustererConfig, shard: int, num_shards: int) -> ClustererConfig:
    """Per-shard configuration: split the memory budget, derive the seed."""
    capacity = max(1, config.reservoir_capacity // num_shards)
    return ClustererConfig(
        reservoir_capacity=capacity,
        constraint=config.constraint,
        connectivity_backend=config.connectivity_backend,
        track_graph=config.track_graph,
        strict=config.strict,
        deletion_policy=config.deletion_policy,
        resample_threshold=config.resample_threshold,
        seed=child_seed(config.seed, "shard", shard),
    )


class _UnionFindConstraintView:
    """Just enough of the DynamicConnectivity interface for constraint
    policies to evaluate merge-time admissions over a union-find."""

    def __init__(self, union: UnionFind) -> None:
        self._union = union

    def connected(self, u: Vertex, v: Vertex) -> bool:
        return self._union.connected(u, v)

    def component_size(self, v: Vertex) -> int:
        return self._union.set_size(v)

    @property
    def num_components(self) -> int:
        return self._union.num_sets


class ShardedClusterer:
    """Hash-partitioned ensemble of streaming clusterers.

    The declared clustering is the component structure of the union of
    all shards' sampled sub-graphs; it is computed lazily and cached
    until the next update.
    """

    def __init__(self, config: ClustererConfig, num_shards: int) -> None:
        check_positive("num_shards", num_shards)
        self.config = config
        self.num_shards = num_shards
        self.shards: List[StreamingGraphClusterer] = [
            StreamingGraphClusterer(_shard_config(config, i, num_shards))
            for i in range(num_shards)
        ]
        self.shard_events: List[int] = [0] * num_shards
        self._merged: Optional[Partition] = None

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Route one event to its shard (vertex events go everywhere)."""
        self._merged = None
        if event.is_edge_event:
            shard = _shard_of(event.edge, self.num_shards)
            self.shard_events[shard] += 1
            self.shards[shard].apply(event)
            return
        # Vertex events are broadcast: any shard may hold incident edges,
        # and all shards must know the vertex exists for their snapshots.
        for shard, clusterer in enumerate(self.shards):
            self.shard_events[shard] += 1
            if event.kind is EventKind.DELETE_VERTEX and clusterer.config.strict:
                # A vertex can be unknown to some shards; tolerate that.
                if clusterer.graph is not None and not clusterer.graph.has_vertex(
                    event.u
                ):
                    continue
            clusterer.apply(event)

    def process(self, events: Iterable[EdgeEvent]) -> "ShardedClusterer":
        """Process a whole stream; returns self for chaining."""
        for event in events:
            self.apply(event)
        return self

    # ------------------------------------------------------------------
    # Merged clustering
    # ------------------------------------------------------------------
    def _merge(self) -> Partition:
        if self._merged is not None:
            return self._merged
        union = UnionFind()
        view = _UnionFindConstraintView(union)
        constraint = self.config.constraint
        for clusterer in self.shards:
            for vertex in clusterer.vertices():
                union.add(vertex)
        # The admission constraint is re-enforced at merge time: each
        # shard bounded only its *local* sample, and the union of
        # innocent shard-local clusters can violate the global bound.
        for clusterer in self.shards:
            for u, v in clusterer.reservoir_edges():
                if constraint.allows(view, u, v):
                    union.union(u, v)
        self._merged = Partition.from_clusters(union.groups())
        return self._merged

    def snapshot(self) -> Partition:
        """The merged clustering across all shards."""
        return self._merge()

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are in the same merged cluster."""
        merged = self._merge()
        return u in merged and v in merged and merged.same_cluster(u, v)

    def cluster_members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices merged-clustered with ``v``."""
        merged = self._merge()
        if v not in merged:
            return frozenset({v})
        return merged.members(merged.label_of(v))

    @property
    def num_clusters(self) -> int:
        """Number of merged clusters."""
        return self._merge().num_clusters

    # ------------------------------------------------------------------
    # Parallelism accounting
    # ------------------------------------------------------------------
    @property
    def shard_balance(self) -> float:
        """Total events over max per-shard events — the speedup bound.

        On a machine with ``num_shards`` cores the wall-clock of the
        stream phase is governed by the busiest shard; this ratio is the
        resulting speedup over a single worker (1.0 means no benefit,
        ``num_shards`` means perfect balance).
        """
        busiest = max(self.shard_events, default=0)
        if busiest == 0:
            return 1.0
        return sum(self.shard_events) / busiest

    @property
    def total_reservoir_size(self) -> int:
        """Sampled edges across all shards."""
        return sum(clusterer.reservoir_size for clusterer in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedClusterer(num_shards={self.num_shards}, "
            f"reservoir={self.total_reservoir_size})"
        )


# ----------------------------------------------------------------------
# Multiprocessing driver
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """What a shard worker returns: its sample and the vertices it saw."""

    shard: int
    sampled_edges: List[Edge]
    vertices: List[Vertex]
    events: int


def _process_shard(
    args: Tuple[int, ClustererConfig, int, Sequence[EdgeEvent]],
) -> ShardResult:
    shard, config, num_shards, events = args
    clusterer = StreamingGraphClusterer(_shard_config(config, shard, num_shards))
    clusterer.process(events)
    return ShardResult(
        shard=shard,
        sampled_edges=clusterer.reservoir_edges(),
        vertices=list(clusterer.vertices()),
        events=len(events),
    )


def cluster_stream_parallel(
    events: Sequence[EdgeEvent],
    config: ClustererConfig,
    num_shards: int,
    pool_processes: int | None = None,
) -> Tuple[Partition, List[ShardResult]]:
    """Cluster a finite stream with one process per shard.

    The stream is hash-partitioned by edge, shards are processed in a
    ``multiprocessing`` pool (or inline when ``pool_processes`` is 0/1 or
    ``num_shards == 1``), and the shard samples are merged into the final
    partition. Only edge events are supported here — broadcast vertex
    events need the online :class:`ShardedClusterer`.
    """
    check_positive("num_shards", num_shards)
    buckets: List[List[EdgeEvent]] = [[] for _ in range(num_shards)]
    for event in events:
        if not event.is_edge_event:
            raise ValueError(
                "cluster_stream_parallel supports edge events only; "
                "use ShardedClusterer for vertex events"
            )
        buckets[_shard_of(event.edge, num_shards)].append(event)

    tasks = [(i, config, num_shards, bucket) for i, bucket in enumerate(buckets)]
    if num_shards == 1 or (pool_processes is not None and pool_processes <= 1):
        results = [_process_shard(task) for task in tasks]
    else:
        import multiprocessing

        processes = pool_processes or min(num_shards, multiprocessing.cpu_count())
        with multiprocessing.Pool(processes=processes) as pool:
            results = pool.map(_process_shard, tasks)

    union = UnionFind()
    view = _UnionFindConstraintView(union)
    for result in results:
        for vertex in result.vertices:
            union.add(vertex)
    for result in results:
        for u, v in result.sampled_edges:
            if config.constraint.allows(view, u, v):
                union.union(u, v)
    return Partition.from_clusters(union.groups()), results
