"""Command-line interface.

Five subcommands cover the operational loop a downstream user needs
without writing Python:

* ``repro generate`` — materialize a workload (registry dataset, SBM,
  LFR-style, or R-MAT) as an edge-list file (+ optional truth labels);
* ``repro cluster`` — stream an edge-list or event file through the
  clusterer and write ``vertex<TAB>cluster`` labels;
* ``repro score`` — evaluate a labels file against a graph and/or truth
  labels (modularity, conductance, NMI, ARI, F1);
* ``repro serve`` — run the always-on clustering daemon: many tenants,
  socket ingestion, mid-stream queries, per-tenant checkpoints
  (see ``docs/service.md``);
* ``repro send`` — stream a workload file to a running daemon as one
  tenant and write the served snapshot.

``repro cluster`` scales across cores with ``--parallel``: ``inline``
shards the stream in-process (a scalability baseline), ``pool`` forks a
transient batch worker pool per run, and ``pipeline`` streams event
frames through persistent worker processes so parsing, routing, and
per-shard clustering overlap (see ``docs/performance.md``). All modes
produce the same partition as the sequential sharded clusterer for the
same seed and ``--workers`` count.

``repro cluster`` can run as a crash-safe long-lived job: with
``--checkpoint`` the full clusterer state is persisted atomically every
``--checkpoint-every`` events, and ``--resume`` restarts from the last
checkpoint, replaying only the stream tail (identical output to an
uninterrupted run — see ``docs/robustness.md``). Resuming with flags
that conflict with the checkpointed configuration (capacity, backend,
seed, constraints) is refused with exit code 2 — a silent mismatch
would produce a partition neither run would have produced.

Long-lived jobs are observable: ``--progress-every N`` prints a one-line
progress report (events/s, reservoir fill, clusters, checkpoint lag) to
stderr every N events, and ``--metrics-out PATH`` writes a JSON snapshot
of the internal metrics registry at exit (see ``docs/observability.md``).

Malformed inputs exit with code 2 and a one-line message, not a
traceback; ``--skip-malformed`` tolerates bad lines instead. A stdout
consumer that closes the pipe early (``repro cluster ... | head``) ends
the run quietly instead of with a ``BrokenPipeError`` traceback.
Ctrl-C exits with the conventional code 130 (``128 + SIGINT``) after
running every cleanup path — pipeline workers are reaped, and ``repro
serve`` drains tenant queues and writes per-tenant checkpoints first.

Examples
--------
::

    repro generate --dataset amazon_like --out graph.edges --truth-out truth.labels
    repro cluster graph.edges --capacity 6000 --max-cluster-size 120 --out found.labels
    repro cluster graph.edges --capacity 6000 --checkpoint run.ckpt \
        --checkpoint-every 10000 --resume --out found.labels
    repro score found.labels --graph graph.edges --truth truth.labels
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError, StreamError
from repro.core import (
    ClustererConfig,
    CompositeConstraint,
    ConstraintPolicy,
    MaxClusterSize,
    MinClusterCount,
    StreamingGraphClusterer,
    Unconstrained,
)
from repro.quality import (
    Partition,
    ari,
    average_conductance,
    modularity,
    nmi,
    pairwise_f1,
)

__all__ = ["main", "build_parser"]


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    """The clusterer-configuration flags ``cluster`` and ``serve`` share
    (one spelling, one help text, one resume-mismatch vocabulary)."""
    parser.add_argument("--capacity", type=int, required=True,
                        help="reservoir capacity (edges)")
    parser.add_argument("--max-cluster-size", type=int,
                        help="bound every cluster's size")
    parser.add_argument("--min-clusters", type=int,
                        help="keep at least this many clusters")
    parser.add_argument("--backend", choices=("hdt", "naive", "lazy"), default="hdt")
    parser.add_argument("--lean", action="store_true",
                        help="do not track the full graph (reservoir-only memory)")
    parser.add_argument("--kernel", choices=("scalar", "numpy"), default="scalar",
                        help="batch execution kernel: 'scalar' replays the "
                             "per-event RNG bit-for-bit, 'numpy' draws whole "
                             "batches vectorized (faster; distribution-"
                             "equivalent, not bit-identical to scalar)")
    parser.add_argument("--seed", type=int, default=0)


def _add_endpoint_flags(parser: argparse.ArgumentParser, *, role: str) -> None:
    """The service endpoint flags ``serve`` and ``send`` share."""
    parser.add_argument("--host", default="127.0.0.1",
                        help=f"TCP host to {role} (default: 127.0.0.1)")
    parser.add_argument("--port", type=_nonnegative_int, default=7227,
                        metavar="N",
                        help=f"TCP port to {role} (default: 7227; when "
                             "serving, 0 picks an ephemeral port)")
    parser.add_argument("--unix", metavar="PATH",
                        help="use a unix-domain socket at PATH instead of TCP")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clustering streaming graphs by graph reservoir sampling "
        "(reproduction of Eldawy/Khandekar/Wu, ICDCS 2012).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="materialize a workload")
    source = generate.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="registry dataset name (see repro.datasets)")
    source.add_argument("--sbm", nargs=4, metavar=("N", "K", "P_IN", "P_OUT"),
                        help="planted partition: vertices, communities, p_in, p_out")
    source.add_argument("--lfr", nargs=2, metavar=("N", "MU"),
                        help="LFR-style benchmark: vertices, mixing")
    source.add_argument("--rmat", nargs=2, metavar=("SCALE", "EDGES"),
                        help="R-MAT: 2^scale vertices, edge count")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="edge-list output path")
    generate.add_argument("--truth-out", help="ground-truth labels output path")

    cluster = commands.add_parser("cluster", help="cluster a streamed graph")
    cluster.add_argument("input", help="edge-list file (or event stream with --events)")
    cluster.add_argument("--events", action="store_true",
                         help="input is a +/- event stream, not an edge list")
    _add_config_flags(cluster)
    cluster.add_argument("--batch-size", type=_positive_int, default=1024,
                         metavar="N",
                         help="ingest events in batches of N through the fast "
                              "path (default: 1024)")
    cluster.add_argument("--parallel", choices=("inline", "pool", "pipeline"),
                         help="shard the stream across --workers shards: "
                              "'inline' runs every shard sequentially in one "
                              "process, 'pool' forks a transient batch worker "
                              "pool (finite streams; no checkpointing), "
                              "'pipeline' streams through persistent worker "
                              "processes (overlaps parsing, routing, and "
                              "clustering; checkpointable mid-stream)")
    cluster.add_argument("--workers", type=_positive_int, default=4, metavar="N",
                         help="shard/worker count for --parallel (default: 4)")
    cluster.add_argument("--out", help="labels output path (default: stdout)")
    cluster.add_argument("--min-size", type=int, default=1,
                         help="fold clusters smaller than this into one bucket")
    cluster.add_argument("--skip-malformed", action="store_true",
                         help="skip unparseable input lines instead of aborting")
    cluster.add_argument("--checkpoint", metavar="PATH",
                         help="persist clusterer state to PATH (atomic, CRC-checked)")
    cluster.add_argument("--checkpoint-every", type=_nonnegative_int, default=0,
                         metavar="N",
                         help="rewrite the checkpoint every N events (0: only at end)")
    cluster.add_argument("--resume", action="store_true",
                         help="resume from --checkpoint if it exists, replaying "
                              "only the stream tail")
    cluster.add_argument("--metrics-out", metavar="PATH",
                         help="write a JSON snapshot of the internal metrics "
                              "registry to PATH at exit")
    cluster.add_argument("--progress-every", type=_nonnegative_int, default=0,
                         metavar="N",
                         help="print a one-line progress report to stderr every "
                              "N events (0: never)")
    cluster.add_argument("--inject-kill-after", type=_nonnegative_int, metavar="N",
                         help=argparse.SUPPRESS)  # testing aid: hard-exit after N events

    score = commands.add_parser("score", help="evaluate a clustering")
    score.add_argument("labels", help="vertex<TAB>cluster labels file")
    score.add_argument("--graph", help="edge-list file for internal metrics")
    score.add_argument("--truth", help="ground-truth labels file for external metrics")

    serve = commands.add_parser(
        "serve", help="run the streaming clustering service daemon"
    )
    _add_config_flags(serve)
    _add_endpoint_flags(serve, role="listen on")
    serve.add_argument("--max-tenants", type=_positive_int, default=64,
                       metavar="N",
                       help="admission ceiling on concurrent tenants "
                            "(default: 64)")
    serve.add_argument("--max-frame-bytes", type=_positive_int,
                       default=None, metavar="N",
                       help="per-message wire size ceiling "
                            "(default: 4 MiB)")
    serve.add_argument("--queue-depth", type=_positive_int, default=64,
                       metavar="N",
                       help="per-tenant ingest queue bound, in batches; "
                            "a full queue backpressures that tenant's "
                            "producers (default: 64)")
    serve.add_argument("--workers", type=_nonnegative_int, default=0,
                       metavar="N",
                       help="run each tenant on an N-worker pipeline "
                            "(0: in-process clusterer per tenant; default)")
    serve.add_argument("--batch-size", type=_positive_int, default=1024,
                       metavar="N",
                       help="pipeline producer buffer size (with --workers)")
    serve.add_argument("--checkpoint-dir", metavar="DIR",
                       help="write per-tenant checkpoints (<tenant>.rpk) "
                            "under DIR; graceful shutdown always saves")
    serve.add_argument("--checkpoint-every", type=_nonnegative_int, default=0,
                       metavar="N",
                       help="also checkpoint each tenant every N events "
                            "(0: only at shutdown)")
    serve.add_argument("--resume", action="store_true",
                       help="resume tenants from their checkpoint files "
                            "when they reconnect")
    serve.add_argument("--metrics-out", metavar="PATH",
                       help="write a JSON snapshot of the metrics registry "
                            "(incl. serve.tenant.* SLO series) at exit")

    send = commands.add_parser(
        "send", help="stream a workload file to a running service"
    )
    send.add_argument("input", help="edge-list file (or event stream with --events)")
    send.add_argument("--events", action="store_true",
                      help="input is a +/- event stream, not an edge list")
    send.add_argument("--tenant", required=True,
                      help="tenant id to stream as ([A-Za-z0-9._-], <=128 chars)")
    _add_endpoint_flags(send, role="connect to")
    send.add_argument("--seed", type=int, default=0,
                      help="insert-order shuffle seed (match the inline "
                           "run you are comparing against)")
    send.add_argument("--kernel", choices=("scalar", "numpy"),
                      help="require this batch kernel for the tenant's "
                           "session (default: the server's --kernel); a "
                           "conflict with a live session or a resumed "
                           "checkpoint is refused, exit code 2")
    send.add_argument("--batch-size", type=_positive_int, default=1024,
                      metavar="N",
                      help="events per columnar frame (default: 1024); "
                           "match the server's --batch-size so served "
                           "numpy partitions are deterministic")
    send.add_argument("--skip-malformed", action="store_true",
                      help="skip unparseable input lines instead of aborting")
    send.add_argument("--out", help="write the served snapshot labels to "
                                    "PATH (default: stdout)")
    send.add_argument("--no-snapshot", action="store_true",
                      help="stream only; skip the final snapshot query")
    send.add_argument("--metrics-out", metavar="PATH",
                      help="write the tenant's served SLO metrics (JSON) "
                           "to PATH after streaming")
    return parser


def _read_labels(path: str) -> Partition:
    labels: Dict[object, object] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise StreamError(f"{path}:{line_number}: expected 'vertex label'")
            vertex = _parse(parts[0])
            labels[vertex] = parts[1]
    return Partition(labels)


def _parse(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _write_labels(partition: Partition, path: Optional[str]) -> None:
    handle = open(path, "w", encoding="utf-8") if path else sys.stdout
    try:
        for index, members in enumerate(partition.clusters()):
            for vertex in sorted(members, key=repr):
                handle.write(f"{vertex}\t{index}\n")
    finally:
        if path:
            handle.close()


def _run_generate(args: argparse.Namespace) -> int:
    from repro.streams import lfr_graph, planted_partition, rmat_edges, write_edge_list

    truth: Optional[Partition] = None
    if args.dataset:
        from repro.datasets import load_dataset

        dataset = load_dataset(args.dataset, seed=args.seed)
        edges, truth = dataset.edges, dataset.truth
    elif args.sbm:
        n, k, p_in, p_out = args.sbm
        graph = planted_partition(int(n), int(k), float(p_in), float(p_out), seed=args.seed)
        edges, truth = graph.edges, graph.truth
    elif args.lfr:
        n, mu = args.lfr
        graph = lfr_graph(int(n), mu=float(mu), seed=args.seed)
        edges, truth = graph.edges, graph.truth
    else:
        scale, num_edges = args.rmat
        edges = rmat_edges(int(scale), int(num_edges), seed=args.seed)
    count = write_edge_list(edges, args.out)
    print(f"wrote {count} edges to {args.out}")
    if args.truth_out:
        if truth is None:
            print("warning: source has no ground truth; --truth-out skipped",
                  file=sys.stderr)
        else:
            _write_labels(truth, args.truth_out)
            print(f"wrote {truth.num_vertices} truth labels to {args.truth_out}")
    return 0


def _build_constraint(args: argparse.Namespace) -> ConstraintPolicy:
    policies: List[ConstraintPolicy] = []
    if args.max_cluster_size:
        policies.append(MaxClusterSize(args.max_cluster_size))
    if args.min_clusters:
        policies.append(MinClusterCount(args.min_clusters))
    if not policies:
        return Unconstrained()
    if len(policies) == 1:
        return policies[0]
    return CompositeConstraint(policies)


#: Resumable ``ClustererConfig`` fields the CLI can set, with the flag
#: spelling used in mismatch messages. Constraints are compared by repr
#: (policy classes are stateless predicates without ``__eq__``).
_RESUME_CHECKED_FIELDS = (
    ("reservoir_capacity", "--capacity"),
    ("connectivity_backend", "--backend"),
    ("seed", "--seed"),
    ("track_graph", "--lean"),
    ("kernel", "--kernel"),
    ("constraint", "--max-cluster-size/--min-clusters"),
)


def _resume_config_mismatches(restored, requested) -> List[str]:
    """Human-readable list of fields where the checkpointed config and
    the one requested on the command line disagree (empty = compatible)."""
    mismatches: List[str] = []
    for field, flag in _RESUME_CHECKED_FIELDS:
        old, new = getattr(restored, field), getattr(requested, field)
        if field == "constraint":
            old, new = repr(old), repr(new)
        if old != new:
            mismatches.append(f"{flag}: checkpoint has {old!r}, requested {new!r}")
    return mismatches


def _run_cluster(args: argparse.Namespace) -> int:
    from repro.core import PipelineClusterer, ShardedClusterer
    from repro.errors import CheckpointError
    from repro.persist import PeriodicCheckpointer
    from repro.streams import (
        insert_only_stream_raw,
        read_edge_list,
        read_event_stream_raw,
    )

    config = ClustererConfig(
        reservoir_capacity=args.capacity,
        constraint=_build_constraint(args),
        connectivity_backend=args.backend,
        track_graph=not args.lean,
        strict=False,
        seed=args.seed,
        kernel=args.kernel,
    )
    metrics_on = bool(args.metrics_out or args.progress_every)
    if metrics_on:
        from repro import obs

        # One CLI run = one metrics epoch: start from a clean registry
        # so the snapshot describes exactly this invocation.
        obs.default_registry().reset()
        obs.enable()
    strict_io = not args.skip_malformed
    batch_size = args.batch_size  # always >= 1 (parser-enforced)
    io_errors: List[str] = []
    # With batching, events stay raw (kind, u, v) tuples end to end;
    # apply_many canonicalizes in bulk. Either way the stream describes
    # the same updates and yields the same clustering.
    if args.events:
        stream = read_event_stream_raw(
            args.input, strict=strict_io, errors=io_errors,
            intern=args.parallel == "pipeline",
        )
    else:
        edges = read_edge_list(args.input, strict=strict_io, errors=io_errors)
        stream = insert_only_stream_raw(edges, seed=args.seed)

    if args.parallel == "pool" and args.checkpoint:
        raise CheckpointError(
            "--parallel pool cannot checkpoint: pool workers are transient "
            "and hold no resumable state (use --parallel pipeline, or drop "
            "--checkpoint)"
        )

    checkpointer: Optional[PeriodicCheckpointer] = None
    if args.checkpoint and args.resume and os.path.exists(args.checkpoint):
        checkpointer = PeriodicCheckpointer.resume(
            args.checkpoint, every=args.checkpoint_every
        )
        clusterer = checkpointer.clusterer
        if args.parallel in ("inline", "pipeline"):
            if not isinstance(clusterer, ShardedClusterer):
                raise CheckpointError(
                    f"{args.checkpoint} holds a {type(clusterer).__name__} "
                    f"checkpoint; --parallel {args.parallel} resumes sharded "
                    "checkpoints only (drop --parallel to resume it)"
                )
            if clusterer.num_shards != args.workers:
                raise CheckpointError(
                    f"{args.checkpoint}: --workers: checkpoint has "
                    f"{clusterer.num_shards} shards, requested {args.workers} "
                    "(shard count is part of the partitioned state)"
                )
        elif not isinstance(clusterer, StreamingGraphClusterer):
            raise CheckpointError(
                f"{args.checkpoint} holds a {type(clusterer).__name__} "
                "checkpoint; resume it with --parallel inline or "
                "--parallel pipeline"
            )
        mismatches = _resume_config_mismatches(clusterer.config, config)
        if mismatches:
            raise CheckpointError(
                f"{args.checkpoint}: cannot --resume with flags that "
                "conflict with the checkpointed configuration: "
                + "; ".join(mismatches)
                + " (re-run with matching flags, or delete the checkpoint "
                "to start fresh)"
            )
        if args.parallel == "pipeline":
            # Re-home the restored shards onto persistent workers; the
            # checkpointer keeps saving the (format-identical) state.
            clusterer = PipelineClusterer.from_state(
                clusterer.get_state(), batch_events=batch_size
            )
            checkpointer.clusterer = clusterer
        stream = checkpointer.remaining(stream)
        print(
            f"resumed from {args.checkpoint} at event {checkpointer.position}",
            file=sys.stderr,
        )
    else:
        if args.parallel == "inline":
            clusterer = ShardedClusterer(config, num_shards=args.workers)
        elif args.parallel == "pipeline":
            clusterer = PipelineClusterer(
                config, args.workers, batch_events=batch_size
            )
        elif args.parallel == "pool":
            clusterer = None  # the batch driver builds its own shards
        else:
            clusterer = StreamingGraphClusterer(config)
        if args.checkpoint and clusterer is not None:
            checkpointer = PeriodicCheckpointer(
                clusterer, args.checkpoint, every=args.checkpoint_every
            )

    if args.inject_kill_after is not None:
        from repro.util.faults import kill_at_event

        stream = kill_at_event(
            stream, args.inject_kill_after, action=lambda: os._exit(3)
        )

    if args.progress_every:
        from repro.obs import ProgressReporter

        reporter = ProgressReporter(
            args.progress_every,
            clusterer if clusterer is not None else object(),
            checkpointer=checkpointer,
        )
        stream = reporter.wrap(stream)

    try:
        if args.parallel == "pool":
            from repro.core import cluster_stream_parallel

            events = list(stream)
            try:
                snapshot, results = cluster_stream_parallel(
                    events, config, num_shards=args.workers
                )
            except ValueError as error:
                raise StreamError(str(error)) from None
            summary = (
                f"processed {len(events)} events across {args.workers} pool "
                f"shards: {{clusters}} clusters, largest {{largest}}, "
                f"reservoir {sum(len(r.sampled_edges) for r in results)}"
                f"/{config.reservoir_capacity}"
            )
        else:
            if checkpointer is not None:
                checkpointer.process(stream, batch_size=batch_size)
                checkpointer.save()
            else:
                clusterer.process(stream, batch_size=batch_size)
            snapshot = clusterer.snapshot()
            if isinstance(clusterer, StreamingGraphClusterer):
                stats = clusterer.stats
                summary = (
                    f"processed {stats.events} events: {{clusters}} clusters, "
                    f"largest {{largest}}, reservoir "
                    f"{clusterer.reservoir_size}"
                    f"/{clusterer.config.reservoir_capacity}, "
                    f"{stats.vetoes} constraint vetoes"
                )
            else:
                summary = (
                    f"processed {sum(clusterer.shard_events)} events across "
                    f"{clusterer.num_shards} shards: {{clusters}} clusters, "
                    f"largest {{largest}}, reservoir "
                    f"{clusterer.total_reservoir_size}"
                    f"/{clusterer.config.reservoir_capacity}"
                )
        if io_errors:
            print(f"skipped {len(io_errors)} malformed input lines", file=sys.stderr)
        if args.min_size > 1:
            snapshot = snapshot.merged_small_clusters(min_size=args.min_size)
        _write_labels(snapshot, args.out)
        print(
            summary.format(
                clusters=snapshot.num_clusters, largest=snapshot.max_cluster_size
            ),
            file=sys.stderr,
        )
        if args.metrics_out:
            from repro import obs

            if clusterer is not None:
                # Settle any deferred kernel stat estimates before the dump
                # (pipeline/sharded wrappers settle inside sync_metrics).
                getattr(clusterer, "stats", None)
                clusterer.sync_metrics()
            obs.default_registry().write_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    finally:
        if isinstance(clusterer, PipelineClusterer):
            clusterer.close()
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.serve import ClusterService
    from repro.streams.codec import DEFAULT_MAX_WIRE_BYTES

    config = ClustererConfig(
        reservoir_capacity=args.capacity,
        constraint=_build_constraint(args),
        connectivity_backend=args.backend,
        track_graph=not args.lean,
        strict=False,
        seed=args.seed,
        kernel=args.kernel,
    )
    if args.metrics_out:
        from repro import obs

        obs.default_registry().reset()
        obs.enable()
    service = ClusterService(
        config,
        host=args.host,
        port=args.port,
        path=args.unix,
        max_tenants=args.max_tenants,
        max_frame_bytes=args.max_frame_bytes or DEFAULT_MAX_WIRE_BYTES,
        queue_depth=args.queue_depth,
        workers=args.workers,
        batch_size=args.batch_size,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )

    def _announce() -> None:
        # The daemon loop owns the main thread; report readiness from
        # the side so wrappers can wait for this line (CI smoke does).
        if service.started.wait(timeout=60.0):
            endpoint = service.endpoint
            where = (
                endpoint if isinstance(endpoint, str)
                else f"{endpoint[0]}:{endpoint[1]}"
            )
            print(f"serving on {where}", file=sys.stderr, flush=True)

    threading.Thread(target=_announce, daemon=True).start()
    try:
        code = service.run()
    except KeyboardInterrupt:
        # SIGINT before the loop installed its handler (startup window):
        # same graceful contract, same exit code as the handled path.
        code = 130
    if code == 130:
        print("interrupted; tenants drained and checkpointed", file=sys.stderr)
    if args.metrics_out:
        from repro import obs

        obs.default_registry().write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return code


def _run_send(args: argparse.Namespace) -> int:
    from repro.serve import ServiceClient
    from repro.streams import (
        insert_only_columns,
        read_edge_list,
        read_event_columns,
    )

    strict_io = not args.skip_malformed
    io_errors: List[str] = []
    if args.events:
        batches = read_event_columns(
            args.input, args.batch_size, strict=strict_io, errors=io_errors
        )
    else:
        edges = read_edge_list(args.input, strict=strict_io, errors=io_errors)
        batches = insert_only_columns(edges, args.batch_size, seed=args.seed)
    endpoint = args.unix if args.unix else (args.host, args.port)
    with ServiceClient(
        endpoint,
        tenant=args.tenant,
        kernel=args.kernel,
        batch_size=args.batch_size,
    ) as client:
        count = client.send_columns(batches)
        summary = f"sent {count} events as tenant {args.tenant!r}"
        if not args.no_snapshot:
            snapshot = client.snapshot()
            handle = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
            try:
                handle.write(snapshot)
            finally:
                if args.out:
                    handle.close()
            clusters = len({
                line.rpartition("\t")[2]
                for line in snapshot.splitlines() if line
            })
            summary += f": {clusters} clusters"
        if args.metrics_out:
            import json

            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(client.metrics(), handle, indent=2, sort_keys=True)
                handle.write("\n")
    if io_errors:
        print(f"skipped {len(io_errors)} malformed input lines", file=sys.stderr)
    print(summary, file=sys.stderr)
    return 0


def _run_score(args: argparse.Namespace) -> int:
    predicted = _read_labels(args.labels)
    print(f"clusters: {predicted.num_clusters}  vertices: {predicted.num_vertices}  "
          f"largest: {predicted.max_cluster_size}")
    if args.graph:
        from repro.graph import AdjacencyGraph
        from repro.streams import read_edge_list

        graph = AdjacencyGraph(read_edge_list(args.graph))
        print(f"modularity: {modularity(graph, predicted):.4f}")
        print(f"avg_conductance: {average_conductance(graph, predicted):.4f}")
    if args.truth:
        truth = _read_labels(args.truth)
        print(f"nmi: {nmi(predicted, truth):.4f}")
        print(f"ari: {ari(predicted, truth):.4f}")
        print(f"pairwise_f1: {pairwise_f1(predicted, truth):.4f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (malformed inputs, corrupted checkpoints, service
    refusals, …) exit with code 2 and a one-line message on stderr
    instead of a traceback; an operator interrupt (Ctrl-C / SIGINT)
    exits 130 after cleanup.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _run_generate(args)
        if args.command == "cluster":
            return _run_cluster(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "send":
            return _run_send(args)
        return _run_score(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C on a long run is a normal operator action, not a crash:
        # no traceback, conventional exit code 128 + SIGINT. Cleanup has
        # already run — the interrupt propagated through the command's
        # ``finally`` blocks (pipeline workers reaped, checkpoints
        # flushed) before landing here.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # The stdout consumer (e.g. `repro cluster ... | head`) closed
        # the pipe; that's a normal way for a stream job to end, not a
        # crash. Point stdout at devnull so the interpreter's exit-time
        # flush doesn't raise a second, unhandled BrokenPipeError.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except Exception:
            pass  # stdout has no real fd (captured/stubbed): nothing to flush
        return 0
    finally:
        if getattr(args, "metrics_out", None) or getattr(args, "progress_every", 0):
            from repro import obs

            # The emission flag is process-global; don't leak it past
            # the run that asked for it (library users of main()).
            obs.disable()


if __name__ == "__main__":
    raise SystemExit(main())
