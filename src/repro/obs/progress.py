"""Structured periodic progress reporting for long-lived stream jobs.

A :class:`ProgressReporter` wraps an event iterable and emits a one-line
report every ``every`` events::

    progress: 120,000 events (83.4k ev/s), reservoir 6000/6000 (100%), \
clusters 412, ckpt lag 1200

Counting happens in the wrapper itself (the clusterer's own statistics
lag by up to one batch while ingestion is deferred), while reservoir
fill, cluster count, and checkpoint lag are read from the live objects —
they are therefore *batch-granular*: inside a batch the reported cluster
count may trail the event counter by up to one batch of updates, which
is exactly the staleness the batched fast path already exposes to
queries. Reports go to ``stderr`` by default so they never corrupt a
label stream on ``stdout``.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Iterable, Iterator, Optional, TextIO, TypeVar

__all__ = ["ProgressReporter", "format_rate"]

E = TypeVar("E")


def format_rate(events_per_sec: float) -> str:
    """Human-scale events/sec: ``83.4k``, ``1.2M``, ``950``."""
    if events_per_sec >= 1e6:
        return f"{events_per_sec / 1e6:.1f}M"
    if events_per_sec >= 1e3:
        return f"{events_per_sec / 1e3:.1f}k"
    return f"{events_per_sec:.0f}"


class ProgressReporter:
    """Emit periodic one-line progress reports while a stream is consumed.

    Parameters
    ----------
    every:
        Emit a report each time this many events have passed through
        :meth:`wrap` (must be positive).
    clusterer:
        The clusterer being fed; read for reservoir fill and cluster
        count. Works with :class:`~repro.core.clusterer.StreamingGraphClusterer`
        and anything exposing ``reservoir_size``/``config``/``num_clusters``
        (missing attributes degrade to omitted fields, so sharded
        drivers report what they can). A clusterer may instead expose
        ``progress_snapshot() -> dict`` to publish only the fields that
        are cheap to read — the reporter then never touches attributes
        that would act as cross-process barriers (used by
        :class:`~repro.core.pipeline.PipelineClusterer`).
    checkpointer:
        Optional :class:`~repro.persist.checkpoint.PeriodicCheckpointer`;
        when given, the report includes the checkpoint lag (events
        processed since the last durable save).
    out:
        Report sink (default ``sys.stderr``).
    clock:
        Injectable monotonic clock, for deterministic tests.
    """

    def __init__(
        self,
        every: int,
        clusterer: object,
        checkpointer: Optional[object] = None,
        out: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.every = every
        self.clusterer = clusterer
        self.checkpointer = checkpointer
        self.out = out if out is not None else sys.stderr
        self.clock = clock
        self.events = 0
        self.reports = 0
        self._started: Optional[float] = None
        self._last_time: Optional[float] = None
        self._last_events = 0

    def wrap(self, events: Iterable[E]) -> Iterator[E]:
        """Yield ``events`` unchanged, reporting every ``every`` items."""
        every = self.every
        if self._started is None:
            self._started = self._last_time = self.clock()
        for event in events:
            yield event
            self.events += 1
            if self.events % every == 0:
                self.report()

    def report(self) -> None:
        """Emit one progress line now (normally called by :meth:`wrap`)."""
        now = self.clock()
        window = now - (self._last_time if self._last_time is not None else now)
        window_events = self.events - self._last_events
        rate = window_events / window if window > 0 else 0.0
        self._last_time = now
        self._last_events = self.events
        parts = [f"progress: {self.events:,} events ({format_rate(rate)} ev/s)"]
        hook = getattr(self.clusterer, "progress_snapshot", None)
        if hook is not None:
            # Clusterers whose queries are expensive barriers (e.g. the
            # multiprocess pipeline) expose the cheap subset explicitly;
            # a report line must never stall ingestion behind a merge.
            fields = hook()
            if "reservoir" in fields:
                parts.append(f"reservoir {fields['reservoir']}")
            if "clusters" in fields:
                parts.append(f"clusters {fields['clusters']}")
        else:
            fill = self._reservoir_part()
            if fill:
                parts.append(fill)
            clusters = getattr(self.clusterer, "num_clusters", None)
            if clusters is not None:
                parts.append(f"clusters {clusters}")
        lag = self._checkpoint_lag()
        if lag is not None:
            parts.append(f"ckpt lag {lag}")
        self.reports += 1
        print(", ".join(parts), file=self.out)

    def _reservoir_part(self) -> Optional[str]:
        size = getattr(self.clusterer, "reservoir_size", None)
        if size is None:
            size = getattr(self.clusterer, "total_reservoir_size", None)
        if size is None:
            return None
        config = getattr(self.clusterer, "config", None)
        capacity = getattr(config, "reservoir_capacity", None)
        if capacity:
            return f"reservoir {size}/{capacity} ({100 * size // capacity}%)"
        return f"reservoir {size}"

    def _checkpoint_lag(self) -> Optional[int]:
        checkpointer = self.checkpointer
        if checkpointer is None:
            return None
        position = getattr(checkpointer, "position", None)
        saved = getattr(checkpointer, "last_saved_position", None)
        if position is None or saved is None:
            return None
        return position - saved

    def __repr__(self) -> str:
        return (
            f"ProgressReporter(every={self.every}, events={self.events}, "
            f"reports={self.reports})"
        )
