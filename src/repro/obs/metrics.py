"""Lightweight process-local metrics: counters, gauges, histograms, timers.

The paper's algorithm runs *online* over unending streams, so the
operational behaviour of a long-lived job — event rates, reservoir
occupancy, checkpoint latency, shard skew — is a first-class deliverable
(cf. X-Stream's emphasis on progress/memory/degradation reporting and
CluStRE's per-stage breakdowns). This module provides the minimal
vocabulary to expose it without adding a dependency or measurable
overhead:

* :class:`Counter` — monotonically increasing count (events, retries).
* :class:`Gauge` — a point-in-time value (reservoir fill, shard skew).
* :class:`Histogram` — fixed-boundary bucketed distribution (checkpoint
  save latency).
* :class:`MetricsRegistry.timer` — named phase timers built on
  :class:`repro.util.timer.PhaseTimer`, surfaced as metrics.

Instruments live in a :class:`MetricsRegistry`; the process-global
default registry (:func:`default_registry`) is what the instrumented
library layers and the CLI share.

No-op mode
----------
Metrics are **disabled by default**. Instrumented call sites guard their
emission with a single branch on the module flag (``metrics._ENABLED``
via :func:`is_enabled`), and the hot ingestion layers only emit at
*batch* granularity, so the disabled cost is one predictable branch per
batch — asserted to be <3% of ingestion throughput by
``benchmarks/perf_smoke.py``. :func:`enable` flips the flag for the
whole process.

Export
------
:meth:`MetricsRegistry.snapshot` returns a plain JSON-able dict;
:meth:`MetricsRegistry.to_lines` renders the influx-style line protocol
(``name kind=...,value=... ``); :meth:`MetricsRegistry.write_json`
writes a snapshot file (the CLI's ``--metrics-out``). See
``docs/observability.md`` for the metric catalog.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.util.timer import PhaseTimer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "disable",
    "enable",
    "is_enabled",
    "set_enabled",
]

Number = Union[int, float]

#: Process-global emission flag. Instrumented call sites read this via a
#: single module-attribute branch; keep it a plain module global so the
#: disabled path stays one predictable load+jump.
_ENABLED = False


def enable() -> None:
    """Turn on metric emission for the whole process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn off metric emission (the default)."""
    global _ENABLED
    _ENABLED = False


def set_enabled(flag: bool) -> None:
    """Set the emission flag explicitly (see :func:`enable`)."""
    global _ENABLED
    _ENABLED = bool(flag)


def is_enabled() -> bool:
    """True when instrumented call sites emit metrics."""
    return _ENABLED


class Counter:
    """A monotonically increasing count.

    >>> c = Counter("demo.events")
    >>> c.inc(); c.inc(41); c.value
    42
    """

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value that can move in both directions."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Default latency buckets (seconds) — spans sub-millisecond in-memory
#: saves through multi-second checkpoint rewrites.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class Histogram:
    """Fixed-boundary bucketed distribution of observed values.

    Boundaries are upper-inclusive bucket edges; one implicit overflow
    bucket (``+Inf``) catches everything above the last edge. ``sum``
    and ``count`` allow mean reconstruction; per-bucket cumulative
    counts allow quantile estimates.

    >>> h = Histogram("demo.latency", buckets=(0.1, 1.0))
    >>> for v in (0.05, 0.5, 3.0): h.observe(v)
    >>> h.count, h.bucket_counts
    (3, [1, 1, 1])
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or any(nxt <= prev for prev, nxt in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name}: bucket boundaries must be strictly "
                f"increasing and non-empty, got {buckets!r}"
            )
        self.name = name
        self.help = help
        self.buckets = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)  # + overflow
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        # bisect_left keeps edges upper-inclusive (``value <= edge``
        # lands at that edge), matching the ``le_<edge>`` export fields.
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 before the first)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile from the buckets.

        Returns the smallest bucket edge whose cumulative count covers
        a ``q`` fraction of observations — i.e. "q of all observations
        were <= this value". Resolution is the bucket grid: the service
        SLO report (p99 ingest latency) needs no more. Returns 0.0
        before the first observation and ``inf`` when the quantile
        falls in the overflow bucket (the grid has no upper bound for
        it; pick wider buckets if that happens in practice).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        threshold = q * self.count
        cumulative = 0
        for edge, bucket_count in zip(self.buckets, self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= threshold:
                return edge
        return float("inf")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.6g})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metric instruments.

    Instruments are created on first use (``registry.counter(name)``)
    and are stable thereafter — repeated calls with the same name return
    the same object, so call sites never cache handles unless they want
    to. Re-requesting a name as a different instrument kind is an error
    (it would silently fork the series).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._timer = PhaseTimer()

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, **kwargs)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name`` (boundaries fixed at
        creation; later calls ignore ``buckets``)."""
        return self._get(Histogram, name, help, buckets=buckets)

    def timer(self, name: str):
        """A context manager accumulating wall-clock into phase ``name``.

        Built on :class:`repro.util.timer.PhaseTimer`; totals surface in
        snapshots under ``timer.<name>`` as seconds.
        """
        return self._timer.phase(name)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """The instrument registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names (sorted), including timers."""
        names = set(self._metrics)
        names.update(f"timer.{phase}" for phase in self._timer.totals)
        return sorted(names)

    def __len__(self) -> int:
        return len(self._metrics) + len(self._timer.totals)

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def reset(self) -> None:
        """Drop every instrument and timer total."""
        self._metrics.clear()
        self._timer = PhaseTimer()

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able ``{name: {kind, value, ...}}`` view of everything.

        Phase-timer totals are folded in as ``timer.<phase>`` gauges
        (seconds), so one snapshot carries the full picture.
        """
        snap = {
            name: metric.as_dict() for name, metric in sorted(self._metrics.items())
        }
        for phase, seconds in sorted(self._timer.totals.items()):
            snap[f"timer.{phase}"] = {"kind": "timer", "value": seconds}
        return snap

    def to_lines(self) -> List[str]:
        """Influx-style line-protocol rendering, one metric per line.

        Counters/gauges/timers render as ``name kind=...,value=...``;
        histograms add ``sum``, ``count``, and cumulative ``le_<edge>``
        fields. Line order is sorted by name, so output is diffable.
        """
        lines: List[str] = []
        for name, payload in self.snapshot().items():
            kind = payload["kind"]
            if kind == "histogram":
                fields = ['kind="histogram"']
                cumulative = 0
                for edge, count in zip(
                    payload["buckets"], payload["bucket_counts"]
                ):
                    cumulative += count
                    fields.append(f"le_{edge:g}={cumulative}i")
                fields.append(f"sum={payload['sum']:.9g}")
                fields.append(f"count={payload['count']}i")
            else:
                value = payload["value"]
                rendered = (
                    f"{value}i" if isinstance(value, int) else f"{value:.9g}"
                )
                fields = [f'kind="{kind}"', f"value={rendered}"]
            lines.append(f"{name} " + ",".join(fields))
        return lines

    def write_json(self, path, *, indent: int = 2) -> None:
        """Write :meth:`snapshot` to ``path`` as a JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=indent, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"


#: The process-global registry all instrumented library layers share.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT
