"""Observability: process-local metrics and structured progress.

The library layers (clusterer, sharded driver, parallel supervisor,
checkpointer) are instrumented against the process-global default
registry; emission is off by default and costs a single branch per
batch when disabled. See :mod:`repro.obs.metrics` for the model,
``docs/observability.md`` for the metric catalog, and
:class:`repro.obs.progress.ProgressReporter` for the CLI's periodic
progress lines.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    disable,
    enable,
    is_enabled,
    set_enabled,
)
from repro.obs.progress import ProgressReporter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressReporter",
    "default_registry",
    "disable",
    "enable",
    "is_enabled",
    "set_enabled",
]
