"""Streaming clustering as a network service.

The paper's clusterer is online by construction; this package makes it
*operable* online: :class:`ClusterService` is an asyncio socket daemon
that ingests codec-v2 event frames from many concurrent clients,
multiplexes them onto per-tenant clusterer sessions, answers
snapshot/membership/metrics queries mid-stream through FIFO barriers,
and checkpoints every tenant through :mod:`repro.persist` on graceful
shutdown. :class:`ServiceClient` is the blocking reference client.

Front ends: ``repro serve`` and ``repro send`` (docs/service.md has the
wire protocol, the operational knobs, and the per-tenant metric
catalog).
"""

from repro.serve.client import ServiceClient
from repro.serve.protocol import DEFAULT_MAX_WIRE_BYTES
from repro.serve.server import ClusterService
from repro.serve.session import TenantSession

__all__ = [
    "ClusterService",
    "DEFAULT_MAX_WIRE_BYTES",
    "ServiceClient",
    "TenantSession",
]
