"""Wire protocol for the streaming clustering service.

The service speaks length-prefixed messages (``u32 length | u8 opcode |
payload`` — see :func:`repro.streams.codec.pack_wire_message`) over a
TCP or unix-domain socket. Event payloads are codec version-2 delta
frames or version-3 columnar frames, exactly the bytes the multiprocess
pipeline ships over its pipes, so a client streams with the same
:class:`~repro.streams.codec.FrameEncoder` the pipeline producer uses.

Both message readers return the payload as a **memoryview** over the
receive buffer: the frame decoders (and ``np.frombuffer`` on the
columnar path) consume it without re-slicing the body into a fresh
``bytes`` first.

Conversation shape (client side)::

    HELLO(tenant)  ──►            ◄── OK(limits)        handshake
    EVENTS(frame)  ──►                                  pipelined, no ack
    SNAPSHOT       ──►            ◄── SNAPSHOT(labels)  barrier query
    MEMBERSHIP(v)  ──►            ◄── MEMBERSHIP(set)   barrier query
    METRICS        ──►            ◄── METRICS(json)     barrier query
    BYE            ──►            ◄── BYE               graceful close

Every query is a **barrier**: it is enqueued on the tenant's FIFO
ingest queue behind all previously accepted events, so its answer
reflects every event any connection of that tenant sent before it —
the socket-level twin of the pipeline's control-message barriers.

Anything structurally wrong — an oversized length prefix, a truncated
message, an undecodable frame, a bad handshake — draws an ``ERROR``
reply and closes *that connection only*; the daemon and all other
tenants keep running (:class:`~repro.errors.ProtocolError` client-side).

This module holds the opcode vocabulary, the asyncio and blocking
message readers, and the deterministic rendering of snapshot/membership
replies. Low-level byte packing lives in :mod:`repro.streams.codec`;
the server and client libraries live beside this module.
"""

from __future__ import annotations

import asyncio
import socket
from typing import List, Tuple

from repro.errors import ProtocolError
from repro.quality.partition import Partition
from repro.streams.codec import (
    DEFAULT_MAX_WIRE_BYTES,
    pack_wire_message,
    split_wire_message,
    wire_message_parts,
)

__all__ = [
    "DEFAULT_MAX_WIRE_BYTES",
    "MAX_TENANT_ID_BYTES",
    "OP_BYE",
    "OP_ERROR",
    "OP_EVENTS",
    "OP_HELLO",
    "OP_MEMBERSHIP",
    "OP_METRICS",
    "OP_OK",
    "OP_SNAPSHOT",
    "read_message",
    "recv_message",
    "render_membership",
    "render_snapshot",
    "send_message",
    "valid_tenant_id",
    "wire_message_parts",
]

# Client → server opcodes.
OP_HELLO = b"H"
OP_EVENTS = b"E"
OP_SNAPSHOT = b"P"
OP_MEMBERSHIP = b"B"
OP_METRICS = b"T"
OP_BYE = b"Q"

# Server → client opcodes (queries echo their request opcode).
OP_OK = b"O"
OP_ERROR = b"!"

#: Tenant ids double as checkpoint file names, so the accepted alphabet
#: is the filesystem-safe subset (no separators, no dots-only names).
MAX_TENANT_ID_BYTES = 128
_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def valid_tenant_id(tenant_id: str) -> bool:
    """True when ``tenant_id`` is acceptable at admission.

    1..128 bytes from ``[A-Za-z0-9._-]``, not starting with a dot (a
    tenant names its own checkpoint file, so it must be a safe, visible
    file name on every platform).
    """
    if not tenant_id or len(tenant_id.encode("utf-8")) > MAX_TENANT_ID_BYTES:
        return False
    if tenant_id.startswith("."):
        return False
    return all(ch in _TENANT_CHARS for ch in tenant_id)


async def read_message(
    reader: asyncio.StreamReader, *, max_bytes: int = DEFAULT_MAX_WIRE_BYTES
) -> Tuple[bytes, memoryview]:
    """Read one wire message; returns ``(opcode, payload)``.

    The payload is a memoryview over the message body (see the module
    docstring). Raises :class:`ProtocolError` for an oversized declared
    length or a stream that ends mid-message, and ``EOFError`` for a
    clean EOF on a message boundary (a normal way for a client to
    leave).
    """
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise EOFError("connection closed") from None
        raise ProtocolError(
            f"truncated wire message: {len(error.partial)} of 4 length "
            "bytes before EOF"
        ) from None
    length = int.from_bytes(prefix, "little")
    if length == 0:
        raise ProtocolError("corrupt wire message: zero-length body")
    if length > max_bytes:
        raise ProtocolError(
            f"oversized wire message: {length} bytes declared, "
            f"limit is {max_bytes}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"truncated wire message: {len(error.partial)} of {length} "
            "body bytes before EOF"
        ) from None
    try:
        return split_wire_message(body)
    except ValueError as error:
        raise ProtocolError(str(error)) from None


def send_message(sock: socket.socket, op: bytes, payload: bytes = b"") -> None:
    """Blocking send of one wire message (client side)."""
    sock.sendall(pack_wire_message(op, payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket, *, max_bytes: int = DEFAULT_MAX_WIRE_BYTES
) -> Tuple[bytes, memoryview]:
    """Blocking read of one wire message (client side).

    Mirrors :func:`read_message`: ``EOFError`` on a clean boundary,
    :class:`ProtocolError` on truncation or an oversized length.
    """
    prefix = _recv_exactly(sock, 4)
    if not prefix:
        raise EOFError("connection closed")
    if len(prefix) < 4:
        raise ProtocolError(
            f"truncated wire message: {len(prefix)} of 4 length bytes "
            "before EOF"
        )
    length = int.from_bytes(prefix, "little")
    if length == 0:
        raise ProtocolError("corrupt wire message: zero-length body")
    if length > max_bytes:
        raise ProtocolError(
            f"oversized wire message: {length} bytes declared, "
            f"limit is {max_bytes}"
        )
    body = _recv_exactly(sock, length)
    if len(body) < length:
        raise ProtocolError(
            f"truncated wire message: {len(body)} of {length} body bytes "
            "before EOF"
        )
    try:
        return split_wire_message(body)
    except ValueError as error:
        raise ProtocolError(str(error)) from None


def render_snapshot(partition: Partition) -> str:
    """Deterministic ``vertex<TAB>cluster`` rendering of a partition.

    Byte-identical to what ``repro cluster`` writes for the same
    partition (same cluster enumeration, same ``repr``-sorted members),
    so a served snapshot can be diffed against an inline run's labels
    file directly.
    """
    lines: List[str] = []
    for index, members in enumerate(partition.clusters()):
        for vertex in sorted(members, key=repr):
            lines.append(f"{vertex}\t{index}\n")
    return "".join(lines)


def render_membership(members) -> str:
    """One member per line, ``repr``-sorted — deterministic like
    :func:`render_snapshot`."""
    return "".join(f"{vertex}\n" for vertex in sorted(members, key=repr))
