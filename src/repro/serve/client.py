"""Blocking client library for the streaming clustering service.

:class:`ServiceClient` is the reference client for the wire protocol in
:mod:`repro.serve.protocol`: it handshakes as one tenant (optionally
pinning the session's batch kernel), streams raw ``(kind, u, v)``
events as codec-v2 delta frames — or column batches as codec-v3
columnar frames via :meth:`ServiceClient.send_columns` — and runs the
barrier queries. It is deliberately synchronous — producers are usually simple
loops (log shippers, ETL taps, the ``repro send`` CLI), and blocking
``sendall`` is exactly how the server's TCP backpressure is meant to be
felt.

>>> from repro.serve import ServiceClient          # doctest: +SKIP
>>> with ServiceClient(("127.0.0.1", 7227), tenant="orders") as client:
...     client.send_events(events)                 # doctest: +SKIP
...     print(client.metrics()["events_per_second"])  # doctest: +SKIP

One client = one socket = one tenant. Open several clients (in several
threads or processes) to stream several tenants concurrently; events
from multiple clients of the *same* tenant interleave at the server in
arrival order.
"""

from __future__ import annotations

import json
import socket
from typing import FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.errors import ProtocolError, ServiceError
from repro.quality.partition import Partition
from repro.serve.protocol import (
    OP_BYE,
    OP_ERROR,
    OP_EVENTS,
    OP_HELLO,
    OP_MEMBERSHIP,
    OP_METRICS,
    OP_OK,
    OP_SNAPSHOT,
    recv_message,
    send_message,
)
from repro.streams.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameEncoder,
    encode_hello,
    wire_message_parts,
)
from repro.streams.events import EventColumns

__all__ = ["ServiceClient"]

Endpoint = Union[Tuple[str, int], str]

#: Event frames accumulate in a local buffer list until this many bytes
#: are pending, then flush as one ``sendmsg`` (writev) call — dozens of
#: small frames per syscall instead of one syscall per frame.
_SEND_FLUSH_BYTES = 64 * 1024

#: sendmsg buffer-count ceiling per flush, comfortably under any OS
#: IOV_MAX (two buffers per frame: length/opcode prefix + payload).
_SEND_FLUSH_BUFFERS = 64


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


class ServiceClient:
    """One tenant's blocking connection to a :class:`ClusterService`.

    ``endpoint`` is a ``(host, port)`` tuple for TCP or a filesystem
    path (str) for a unix-domain socket. The constructor connects and
    handshakes; any server refusal (admission control, bad tenant id,
    kernel conflict) raises :class:`~repro.errors.ServiceError`
    immediately.

    ``kernel`` (``"scalar"``/``"numpy"``) declares which batch kernel
    the tenant's session must run; ``None`` accepts the server default.
    ``batch_size`` sets the chunk the streaming methods encode per
    frame — align it with the server's ``--batch-size`` so frame
    boundaries and the session's coalescing cap agree (that alignment
    is what makes served ``numpy`` partitions deterministic).
    """

    def __init__(
        self,
        endpoint: Endpoint,
        tenant: str,
        *,
        timeout: Optional[float] = 60.0,
        kernel: Optional[str] = None,
        batch_size: int = 1024,
    ) -> None:
        if kernel not in (None, "scalar", "numpy"):
            raise ValueError(
                f"kernel must be None, 'scalar' or 'numpy', got {kernel!r}"
            )
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.endpoint = endpoint
        self.tenant = tenant
        self.kernel = kernel
        self.batch_size = int(batch_size)
        self.events_sent = 0
        self.frames_sent = 0
        self._encoder = FrameEncoder()
        try:
            if isinstance(endpoint, (tuple, list)):
                self._sock = socket.create_connection(
                    (endpoint[0], int(endpoint[1])), timeout=timeout
                )
            else:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(str(endpoint))
        except OSError as error:
            raise ServiceError(
                f"cannot connect to clustering service at {endpoint!r}: {error}"
            ) from None
        try:
            send_message(self._sock, OP_HELLO, encode_hello(tenant, kernel))
            payload = self._expect(OP_OK)
        except Exception:
            self._sock.close()
            raise
        self.server_max_frame_bytes = int.from_bytes(payload[:4], "little")
        # Frames must fit the server's message ceiling (minus the opcode
        # byte); stay at the pipeline default when the server allows more.
        self._max_frame_bytes = max(
            1, min(DEFAULT_MAX_FRAME_BYTES, self.server_max_frame_bytes - 1)
        )
        # Columnar frames use the full server ceiling instead: splitting
        # a column batch into several frames would move the server-side
        # apply boundaries, and an 8-byte-per-event v3 frame at the
        # pipeline default would cap batches around 32k events anyway.
        self._max_columns_bytes = max(1, self.server_max_frame_bytes - 1)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _recv(self) -> Tuple[bytes, bytes]:
        try:
            return recv_message(self._sock)
        except socket.timeout:
            raise ServiceError(
                f"timed out waiting for a reply from {self.endpoint!r}"
            ) from None
        except EOFError:
            raise ServiceError(
                f"connection to {self.endpoint!r} closed by the server"
            ) from None

    def _expect(self, want: bytes) -> bytes:
        op, payload = self._recv()
        if op == want:
            return bytes(payload)
        if op == OP_ERROR:
            raise ServiceError(
                f"server refused: {bytes(payload).decode('utf-8', 'replace')}"
            )
        raise ProtocolError(f"unexpected reply opcode {op!r} (wanted {want!r})")

    def _send(self, op: bytes, payload: bytes = b"") -> None:
        try:
            send_message(self._sock, op, payload)
        except OSError as error:
            raise ServiceError(
                f"send to {self.endpoint!r} failed: {error} (the server may "
                "have closed the connection; check its log for the reason)"
            ) from None

    def _send_buffers(self, buffers: List[bytes]) -> None:
        """Flush several wire-message parts in one writev-style call.

        ``sendmsg`` takes the buffer list directly (gathered by the
        kernel, no user-space join); platforms without it fall back to
        one joined ``sendall``. Partial sends are resumed buffer-by-
        buffer.
        """
        sock = self._sock
        try:
            if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
                sock.sendall(b"".join(buffers))
                return
            views = [memoryview(buffer) for buffer in buffers]
            while views:
                sent = sock.sendmsg(views)
                while views and sent >= len(views[0]):
                    sent -= len(views[0])
                    views.pop(0)
                if sent and views:
                    views[0] = views[0][sent:]
        except OSError as error:
            raise ServiceError(
                f"send to {self.endpoint!r} failed: {error} (the server may "
                "have closed the connection; check its log for the reason)"
            ) from None

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def send_events(self, events: Iterable) -> int:
        """Stream events (raw tuples or ``EdgeEvent``); returns how many.

        Events are packed into delta frames against this connection's
        cumulative vertex table and pipelined without per-frame acks —
        a blocking send is the server's backpressure reaching you.
        Frames accumulate locally and flush in writev-sized bursts (one
        syscall for many frames). Delivery of everything sent is
        confirmed by any later barrier query (:meth:`snapshot`,
        :meth:`metrics`, :meth:`membership`).
        """
        count = 0
        pending: List[bytes] = []
        pending_bytes = 0
        for batch_events, frame in self._frames(events):
            prefix, payload = wire_message_parts(OP_EVENTS, frame)
            pending.append(prefix)
            pending.append(payload)
            pending_bytes += len(prefix) + len(payload)
            self.frames_sent += 1
            count += batch_events
            if (
                pending_bytes >= _SEND_FLUSH_BYTES
                or len(pending) >= _SEND_FLUSH_BUFFERS
            ):
                self._send_buffers(pending)
                pending = []
                pending_bytes = 0
        if pending:
            self._send_buffers(pending)
        self.events_sent += count
        return count

    def send_columns(self, batches: Iterable[EventColumns]) -> int:
        """Stream :class:`EventColumns` batches; returns the event count.

        All-``ADD_EDGE`` batches (``kinds is None`` — what the columnar
        stream readers emit) travel as codec-v3 columnar frames: one
        frame per batch, decoded server-side into arrays that feed the
        numpy kernel with zero per-event Python on either side. Batches
        carrying other kinds fall back to v2 tuple frames on the same
        connection. Frame flushing and backpressure behave exactly like
        :meth:`send_events`.
        """
        count = 0
        pending: List[bytes] = []
        pending_bytes = 0
        for columns in batches:
            n = len(columns)
            if not n:
                continue
            if columns.kinds is None:
                frames = self._encoder.encode_columns(
                    columns.us, columns.vs, max_bytes=self._max_columns_bytes
                )
            else:
                frames = self._encoder.encode_batches(
                    columns.to_events(), max_bytes=self._max_frame_bytes
                )
            for frame in frames:
                prefix, payload = wire_message_parts(OP_EVENTS, frame)
                pending.append(prefix)
                pending.append(payload)
                pending_bytes += len(prefix) + len(payload)
                self.frames_sent += 1
                if (
                    pending_bytes >= _SEND_FLUSH_BYTES
                    or len(pending) >= _SEND_FLUSH_BUFFERS
                ):
                    self._send_buffers(pending)
                    pending = []
                    pending_bytes = 0
            count += n
        if pending:
            self._send_buffers(pending)
        self.events_sent += count
        return count

    def send_frames(self, frames: Iterable[bytes]) -> int:
        """Stream pre-encoded event frames verbatim; returns the frame
        count.

        The replay path: frames already produced by a
        :class:`~repro.streams.codec.FrameEncoder` (captured wire
        traffic, or a stream encoded once and fanned out to many
        tenants) are shipped without re-encoding. The frames must carry
        their own vertex-table deltas starting from a fresh encoder —
        exactly what this connection's server-side decoder expects — so
        do not interleave with :meth:`send_events` or
        :meth:`send_columns`, whose shared encoder state would desync
        the table. Flushing and backpressure behave exactly like
        :meth:`send_events`.
        """
        sent = 0
        pending: List[bytes] = []
        pending_bytes = 0
        for frame in frames:
            prefix, payload = wire_message_parts(OP_EVENTS, frame)
            pending.append(prefix)
            pending.append(payload)
            pending_bytes += len(prefix) + len(payload)
            self.frames_sent += 1
            sent += 1
            if (
                pending_bytes >= _SEND_FLUSH_BYTES
                or len(pending) >= _SEND_FLUSH_BUFFERS
            ):
                self._send_buffers(pending)
                pending = []
                pending_bytes = 0
        if pending:
            self._send_buffers(pending)
        return sent

    def _frames(self, events: Iterable):
        """(event count, frame bytes) pairs under the server's ceiling."""
        # encode_batches sizes frames; counting events per frame needs
        # the batch boundaries, so chunk manually via the encoder.
        batch: List = []
        for event in events:
            batch.append(event)
            if len(batch) >= self.batch_size:
                yield from self._encode_chunk(batch)
                batch = []
        if batch:
            yield from self._encode_chunk(batch)

    def _encode_chunk(self, batch: List):
        remaining = len(batch)
        for frame in self._encoder.encode_batches(
            batch, max_bytes=self._max_frame_bytes
        ):
            # encode_batches may split the chunk; events-per-frame is
            # only needed for reporting, so attribute the whole chunk
            # to its final frame.
            count, remaining = (remaining, 0)
            yield count, frame

    # ------------------------------------------------------------------
    # Barrier queries
    # ------------------------------------------------------------------
    def snapshot(self) -> str:
        """The tenant's current clustering as ``vertex<TAB>cluster``
        lines — byte-identical to ``repro cluster`` output for the same
        stream (a barrier: reflects everything sent before the call)."""
        self._send(OP_SNAPSHOT)
        return self._expect(OP_SNAPSHOT).decode("utf-8")

    def snapshot_partition(self) -> Partition:
        """:meth:`snapshot`, parsed back into a :class:`Partition`."""
        labels = {}
        for line in self.snapshot().splitlines():
            vertex, _, label = line.partition("\t")
            labels[_parse_vertex(vertex)] = label
        return Partition(labels)

    def membership(self, vertex) -> FrozenSet:
        """All vertices currently clustered with ``vertex`` (a barrier)."""
        self._send(OP_MEMBERSHIP, str(vertex).encode("utf-8"))
        payload = self._expect(OP_MEMBERSHIP).decode("utf-8")
        return frozenset(_parse_vertex(line) for line in payload.splitlines())

    def metrics(self) -> dict:
        """The tenant's SLO metrics (events/s, p99 ingest latency,
        queue lag, drops — see ``docs/service.md``; a barrier)."""
        self._send(OP_METRICS)
        return json.loads(self._expect(OP_METRICS).decode("utf-8"))

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Polite goodbye (BYE/ack), then close the socket (idempotent)."""
        if self._sock is None:
            return
        try:
            self._send(OP_BYE)
            self._expect(OP_BYE)
        except (ServiceError, ProtocolError):
            pass  # the socket is going away either way
        finally:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._sock is None else "connected"
        return (
            f"ServiceClient(endpoint={self.endpoint!r}, "
            f"tenant={self.tenant!r}, {state})"
        )
