"""Per-tenant clusterer sessions for the streaming service.

A :class:`TenantSession` owns one clusterer (a
:class:`~repro.core.clusterer.StreamingGraphClusterer`, or a
:class:`~repro.core.pipeline.PipelineClusterer` when the service runs
with worker processes), a bounded FIFO ingest queue, and a single drain
task that applies event batches and answers queries **in arrival
order**. That ordering is the whole consistency story:

* any number of connections may feed the same tenant — their batches
  interleave at enqueue time and are applied serially, so the session
  is always in a state some serial event order produced;
* a query enqueued behind a batch is answered only after that batch is
  applied, giving the same FIFO-barrier semantics the pipeline's
  control channel provides over pipes.

The queue is **bounded** (``queue_depth`` batches): when a tenant's
producers outrun its drain task, ``enqueue_events`` suspends, the
server stops reading that connection's socket, and the kernel's TCP
flow control pushes back on the producer. Other tenants have their own
queues and drain tasks and are unaffected — a slow or stalled tenant
can never wedge the daemon.

Durability rides on :mod:`repro.persist`: a session with a checkpoint
path wraps its clusterer in a
:class:`~repro.persist.PeriodicCheckpointer` (periodic saves at exact
event positions, atomic rename) and writes a final checkpoint at
graceful shutdown, so ``repro cluster --resume`` can pick the stream up
exactly where the service left it.

Per-tenant SLO instruments are registered in the default obs registry
under ``serve.tenant.<id>.*`` (see ``docs/service.md`` for the
catalog); :meth:`TenantSession.metrics` renders the operator view —
events/s, p99 ingest latency, queue lag, drops — as a JSON-able dict.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time
import warnings
from typing import Optional

from repro.core.clusterer import StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.core.pipeline import PipelineClusterer
from repro.core.sharded import ShardedClusterer
from repro.errors import CheckpointError, ServiceError
from repro.obs import metrics as _obs
from repro.persist import PeriodicCheckpointer, load_checkpoint
from repro.streams.events import concat_event_batches

__all__ = ["TenantSession"]

#: Queue item tags. Events and queries share one FIFO queue, which is
#: what makes every query a barrier over previously accepted events.
_EVENTS = 0
_QUERY = 1
_STOP = 2


class TenantSession:
    """One tenant's clusterer, ingest queue, drain task, and metrics.

    Construct, then ``await start()`` from the server's event loop.
    ``enqueue_events`` and ``query`` are the only entry points
    connections use; ``close`` drains the queue, writes the final
    checkpoint, and reaps pipeline workers.
    """

    def __init__(
        self,
        tenant_id: str,
        config: ClustererConfig,
        *,
        queue_depth: int = 64,
        workers: int = 0,
        batch_size: int = 1024,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        ingest_delay: float = 0.0,
        kernel: Optional[str] = None,
    ) -> None:
        self.tenant_id = tenant_id
        if kernel is not None and kernel != config.kernel:
            # A client's HELLO may pin the batch kernel for its tenant;
            # the derived config flows into the clusterer and therefore
            # into the tenant's checkpoint, so the resume-mismatch guard
            # below covers the kernel exactly like the CLI's does.
            config = dataclasses.replace(config, kernel=kernel)
        self.config = config
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.checkpoint_path = checkpoint_path
        self._ingest_delay = ingest_delay  # testing aid: slow this tenant's drain
        self._closing = False
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self._task: Optional[asyncio.Task] = None
        self.pending_events = 0  # queued but not yet applied (queue lag)
        self.events_applied = 0
        self.batches_applied = 0
        self.batches_coalesced = 0
        self.drops = 0
        self.apply_errors = 0
        self._started = time.monotonic()
        self._checkpointer: Optional[PeriodicCheckpointer] = None
        self.resumed_position = 0

        if resume and checkpoint_path and os.path.exists(checkpoint_path):
            restored = load_checkpoint(checkpoint_path)
            clusterer = restored.clusterer
            self.resumed_position = restored.position
            if self.workers:
                if not isinstance(clusterer, ShardedClusterer):
                    raise CheckpointError(
                        f"{checkpoint_path} holds a "
                        f"{type(clusterer).__name__} checkpoint; a "
                        "worker-backed tenant resumes sharded checkpoints "
                        "only"
                    )
                if clusterer.num_shards != self.workers:
                    raise CheckpointError(
                        f"{checkpoint_path}: checkpoint has "
                        f"{clusterer.num_shards} shards, service runs "
                        f"{self.workers} workers per tenant"
                    )
                clusterer = PipelineClusterer.from_state(
                    clusterer.get_state(), batch_events=batch_size
                )
            elif not isinstance(clusterer, StreamingGraphClusterer):
                raise CheckpointError(
                    f"{checkpoint_path} holds a {type(clusterer).__name__} "
                    "checkpoint; this service runs single-clusterer tenants "
                    "(restart with --workers)"
                )
            self._check_resume_config(clusterer.config, config, checkpoint_path)
            self.clusterer = clusterer
            self._checkpointer = PeriodicCheckpointer(
                clusterer,
                checkpoint_path,
                every=checkpoint_every,
                position=restored.position,
                save_initial=False,
            )
        else:
            if self.workers:
                self.clusterer = PipelineClusterer(
                    config, self.workers, batch_events=batch_size
                )
            else:
                self.clusterer = StreamingGraphClusterer(config)
            if checkpoint_path:
                self._checkpointer = PeriodicCheckpointer(
                    self.clusterer, checkpoint_path, every=checkpoint_every
                )

        # SLO instruments live in the process registry so --metrics-out
        # snapshots carry every tenant; METRICS replies read the same
        # objects, so the two views can never disagree.
        registry = _obs.default_registry()
        prefix = f"serve.tenant.{tenant_id}."
        self._events_counter = registry.counter(prefix + "events")
        self._drops_counter = registry.counter(prefix + "drops")
        self._coalesced_counter = registry.counter(prefix + "coalesced_batches")
        self._lag_gauge = registry.gauge(prefix + "queue_lag_events")
        self._ingest_hist = registry.histogram(prefix + "ingest_seconds")

    @staticmethod
    def _check_resume_config(
        restored: ClustererConfig, requested: ClustererConfig, path: str
    ) -> None:
        """Refuse to resume a checkpoint under a conflicting service
        config — the same policy (and field list) as the CLI's
        ``--resume`` guard."""
        from repro.cli import _resume_config_mismatches

        mismatches = _resume_config_mismatches(restored, requested)
        if mismatches:
            raise CheckpointError(
                f"{path}: cannot resume tenant checkpoint under a "
                "conflicting service configuration: " + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "TenantSession":
        """Start the drain task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain(), name=f"drain:{self.tenant_id}"
            )
        return self

    async def close(self, *, checkpoint: bool = True) -> None:
        """Drain everything already accepted, then stop (idempotent).

        The stop sentinel queues *behind* all accepted items, so every
        event and query admitted before the shutdown began is applied
        or answered. With ``checkpoint`` a final state save follows, so
        the checkpoint on disk reflects exactly the drained stream.
        """
        if self._closing and self._task is None:
            return
        self._closing = True
        task = self._task
        self._task = None
        if task is not None:
            await self._queue.put((_STOP,))
            await task
        if checkpoint and self._checkpointer is not None:
            await asyncio.to_thread(self._checkpointer.save)
        if isinstance(self.clusterer, PipelineClusterer):
            dropped_before = self.clusterer.dropped_events
            await asyncio.to_thread(self.clusterer.close)
            self._note_drops(self.clusterer.dropped_events - dropped_before)

    # ------------------------------------------------------------------
    # Ingest + queries (called from connection handlers)
    # ------------------------------------------------------------------
    async def enqueue_events(self, events) -> None:
        """Queue one decoded batch (raw-tuple list or ``EventColumns``);
        suspends when the queue is full.

        The suspension is the backpressure mechanism: the caller is a
        connection's read loop, so a full queue stops socket reads and
        TCP flow control reaches the producer.
        """
        if self._closing:
            raise ServiceError(
                f"tenant {self.tenant_id!r} is shutting down; events refused"
            )
        if not events:
            return
        self.pending_events += len(events)
        self._lag_gauge.set(self.pending_events)
        await self._queue.put((_EVENTS, events, time.monotonic()))

    async def query(self, op: bytes, payload: bytes) -> bytes:
        """Enqueue a barrier query; resolves with the reply payload."""
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((_QUERY, op, payload, future))
        return await future

    # ------------------------------------------------------------------
    # Drain task
    # ------------------------------------------------------------------
    def _apply(self, events) -> None:
        """Apply one batch (runs in a worker thread)."""
        if self._checkpointer is not None:
            self._checkpointer.apply_many(events)
        else:
            self.clusterer.apply_many(events)

    def _coalesce(self, events, enqueued_at: float):
        """Merge adjacent queued event batches up to ``batch_size``.

        Small client frames would otherwise each pay a full
        ``apply_many`` (and, under ``--kernel numpy``, run the kernel on
        tiny arrays). Only *already queued* ``_EVENTS`` items merge —
        the loop never waits — and a query or stop sentinel ends the
        merge, preserving FIFO barrier semantics. The cap is strict: a
        batch that would push past ``batch_size`` is carried to the next
        drain iteration instead, so a client sending ``batch_size``-
        sized frames gets exactly its own frame boundaries (that is what
        keeps served numpy partitions deterministic and equal to inline
        runs at the same boundaries).
        """
        queue = self._queue
        limit = self.batch_size
        total = len(events)
        merged = None
        carry = None
        extra = 0
        while total < limit:
            try:
                nxt = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            queue.task_done()
            if nxt[0] != _EVENTS or total + len(nxt[1]) > limit:
                carry = nxt
                break
            if merged is None:
                merged = [events]
            merged.append(nxt[1])
            total += len(nxt[1])
            extra += 1
        if merged is not None:
            events = concat_event_batches(merged)
            self.batches_coalesced += extra
            self._coalesced_counter.inc(extra)
        return events, enqueued_at, carry

    async def _drain(self) -> None:
        queue = self._queue
        carried = None
        while True:
            if carried is not None:
                item, carried = carried, None
            else:
                item = await queue.get()
                queue.task_done()
            tag = item[0]
            if tag == _EVENTS:
                events, enqueued_at, carried = self._coalesce(item[1], item[2])
                if self._ingest_delay:
                    await asyncio.sleep(self._ingest_delay)
                try:
                    await asyncio.to_thread(self._apply, events)
                    self.events_applied += len(events)
                    self.batches_applied += 1
                    self._events_counter.inc(len(events))
                    self._ingest_hist.observe(time.monotonic() - enqueued_at)
                except Exception as error:  # noqa: BLE001 - session must survive
                    # A failed batch is *lost*, not silently absorbed:
                    # account it and warn, mirroring the pipeline's
                    # degradation contract.
                    self._note_drops(len(events))
                    self.apply_errors += 1
                    warnings.warn(
                        f"tenant {self.tenant_id!r}: dropped batch of "
                        f"{len(events)} event(s) after apply failure "
                        f"({type(error).__name__}: {error})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                finally:
                    self.pending_events -= len(events)
                    self._lag_gauge.set(self.pending_events)
            elif tag == _QUERY:
                _, op, payload, future = item
                if not future.done():
                    try:
                        result = await asyncio.to_thread(
                            self._answer, op, payload
                        )
                    except Exception as error:  # noqa: BLE001
                        future.set_exception(
                            ServiceError(
                                f"query failed: "
                                f"{type(error).__name__}: {error}"
                            )
                        )
                    else:
                        future.set_result(result)
            else:  # _STOP
                return

    def _answer(self, op: bytes, payload: bytes) -> bytes:
        """Compute one query reply (runs in a worker thread)."""
        from repro.serve.protocol import (
            OP_MEMBERSHIP,
            OP_METRICS,
            OP_SNAPSHOT,
            render_membership,
            render_snapshot,
        )

        if op == OP_SNAPSHOT:
            return render_snapshot(self.clusterer.snapshot()).encode("utf-8")
        if op == OP_MEMBERSHIP:
            # The payload may be a memoryview over the receive buffer.
            token = bytes(payload).decode("utf-8")
            try:
                vertex: object = int(token)
            except ValueError:
                vertex = token
            members = self.clusterer.cluster_members(vertex)
            return render_membership(members).encode("utf-8")
        if op == OP_METRICS:
            import json

            return json.dumps(self.metrics(), sort_keys=True).encode("utf-8")
        raise ServiceError(f"unknown query opcode {op!r}")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _note_drops(self, count: int) -> None:
        if count > 0:
            self.drops += count
            self._drops_counter.inc(count)

    @property
    def position(self) -> int:
        """Stream position: resumed offset + events applied here."""
        if self._checkpointer is not None:
            return self._checkpointer.position
        return self.resumed_position + self.events_applied

    def metrics(self) -> dict:
        """The tenant's SLO view as a JSON-able dict.

        Answered through the queue like any barrier query, so the
        numbers reflect every event accepted before the request.
        """
        elapsed = max(time.monotonic() - self._started, 1e-9)
        p99 = self._ingest_hist.quantile(0.99)
        info = {
            "tenant": self.tenant_id,
            "events": self.events_applied,
            "position": self.position,
            "events_per_second": self.events_applied / elapsed,
            "queue_lag_events": self.pending_events,
            "coalesced_batches": self.batches_coalesced,
            "drops": self.drops,
            "apply_errors": self.apply_errors,
            # None = the p99 fell in the histogram's overflow bucket
            # (no finite upper bound on the grid); JSON has no Infinity.
            "p99_ingest_seconds": p99 if p99 != float("inf") else None,
            "mean_ingest_seconds": self._ingest_hist.mean,
            "clusters": self.clusterer.snapshot().num_clusters,
        }
        if isinstance(self.clusterer, StreamingGraphClusterer):
            info["reservoir_size"] = self.clusterer.reservoir_size
        else:
            info["reservoir_size"] = self.clusterer.total_reservoir_size
        if self._checkpointer is not None:
            info["checkpoint"] = {
                "path": str(self._checkpointer.path),
                "saves": self._checkpointer.saves,
                "last_saved_position": self._checkpointer.last_saved_position,
            }
        return info
