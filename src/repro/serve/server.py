"""The streaming clustering service daemon.

:class:`ClusterService` is an asyncio socket server (TCP or unix
domain) that accepts length-prefixed codec-v2 (tuple) and codec-v3
(columnar) event frames from many concurrent clients and multiplexes
them onto per-tenant clusterer sessions (:mod:`repro.serve.session`). It is the wire-protocol
promotion of the multiprocess pipeline: same frames, same barrier
semantics, but the producers live in other processes on other machines.

Operational contract
--------------------
* **Admission control** — the handshake names a tenant; a new tenant is
  refused once ``max_tenants`` sessions exist, and any message longer
  than ``max_frame_bytes`` is refused before it is read.
* **Backpressure** — each tenant's ingest queue is bounded; when it
  fills, the server stops reading that tenant's sockets and TCP flow
  control reaches the producer. Slow consumers (clients not reading
  replies) block only their own connection's writer.
* **Isolation** — protocol violations (truncated/oversized/corrupt
  frames, bad handshakes) draw an ``ERROR`` reply and close that one
  connection. The daemon and every other tenant keep running.
* **Graceful shutdown** — SIGINT/SIGTERM stop accepting, cancel the
  socket readers, drain every tenant queue to completion, write one
  checkpoint per tenant through :mod:`repro.persist`, and reap pipeline
  workers. ``repro serve`` exits 130 on SIGINT (the conventional
  ``128 + SIGINT``) and 0 on SIGTERM.

The blocking client for this protocol is
:class:`repro.serve.client.ServiceClient`; the CLI front ends are
``repro serve`` and ``repro send`` (see ``docs/service.md``).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
from typing import Dict, Optional, Set, Tuple, Union

from repro.core.config import ClustererConfig
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.obs import metrics as _obs
from repro.serve.protocol import (
    OP_BYE,
    OP_ERROR,
    OP_EVENTS,
    OP_HELLO,
    OP_MEMBERSHIP,
    OP_METRICS,
    OP_OK,
    OP_SNAPSHOT,
    read_message,
    valid_tenant_id,
    wire_message_parts,
)
from repro.serve.session import TenantSession
from repro.streams.codec import (
    DEFAULT_MAX_WIRE_BYTES,
    DeltaBatchDecoder,
    decode_hello,
    pack_wire_message,
)
from repro.streams.events import EventColumns
from repro.util.validation import check_positive

__all__ = ["ClusterService"]

Endpoint = Union[Tuple[str, int], str]

_QUERY_OPS = (OP_SNAPSHOT, OP_MEMBERSHIP, OP_METRICS)


class ClusterService:
    """An always-on clustering daemon serving many tenants over sockets.

    Parameters
    ----------
    config:
        The clusterer configuration every tenant session runs with
        (one service = one policy; run several services for several).
    host, port:
        TCP endpoint (``port=0`` binds an ephemeral port; read
        :attr:`endpoint` after startup). Ignored when ``path`` is set.
    path:
        Unix-domain socket path (preferred for same-host deployments
        and CI — no port collisions).
    max_tenants:
        Admission ceiling on concurrent tenant sessions.
    max_frame_bytes:
        Per-message wire size ceiling (admission control for memory).
    queue_depth:
        Bound of each tenant's ingest queue, in batches (backpressure).
    workers:
        0 runs each tenant on an in-process
        :class:`~repro.core.clusterer.StreamingGraphClusterer`; N > 0
        gives each tenant an N-worker
        :class:`~repro.core.pipeline.PipelineClusterer`.
    batch_size:
        Pipeline producer buffer size (worker-backed tenants only).
    checkpoint_dir:
        Directory for per-tenant checkpoints (``<tenant>.rpk``); None
        disables durability.
    checkpoint_every:
        Periodic checkpoint interval in events (0: only at shutdown).
    resume:
        Resume a tenant from its checkpoint file when one exists.

    Use :meth:`run` for a blocking daemon with signal handling, or
    drive :meth:`start`/:meth:`shutdown` from an existing event loop.
    """

    def __init__(
        self,
        config: ClustererConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        max_tenants: int = 64,
        max_frame_bytes: int = DEFAULT_MAX_WIRE_BYTES,
        queue_depth: int = 64,
        workers: int = 0,
        batch_size: int = 1024,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        ingest_delay: float = 0.0,
    ) -> None:
        check_positive("max_tenants", max_tenants)
        check_positive("max_frame_bytes", max_frame_bytes)
        check_positive("queue_depth", queue_depth)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.config = config
        self._host = host
        self._port = port
        self._path = path
        self.max_tenants = int(max_tenants)
        self.max_frame_bytes = int(max_frame_bytes)
        self.queue_depth = int(queue_depth)
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = int(checkpoint_every)
        self.resume = bool(resume)
        self._ingest_delay = ingest_delay  # testing aid (see TenantSession)

        self._sessions: Dict[str, TenantSession] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Future] = None
        self._closing = False
        self._shut_down = False
        #: Set once the server socket is bound — thread-driven tests
        #: wait on this, then read :attr:`endpoint`.
        self.started = threading.Event()
        self.endpoint: Optional[Endpoint] = None

        registry = _obs.default_registry()
        self._connections_counter = registry.counter("serve.connections_total")
        self._frames_counter = registry.counter("serve.frames_received")
        self._bytes_counter = registry.counter("serve.bytes_received")
        self._errors_counter = registry.counter("serve.protocol_errors")
        self._rejects_counter = registry.counter("serve.admission_rejects")
        self._columnar_counter = registry.counter("serve.codec_columnar_frames")
        self._tenants_gauge = registry.gauge("serve.tenants")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusterService":
        """Bind the socket and start accepting connections."""
        if self._server is not None:
            return self
        if self.checkpoint_dir:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        if self._path:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self._path
            )
            self.endpoint = self._path
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
            name = self._server.sockets[0].getsockname()
            self.endpoint = (name[0], name[1])
        self._loop = asyncio.get_running_loop()
        self.started.set()
        return self

    async def shutdown(self) -> None:
        """Graceful stop: drain, checkpoint, reap (idempotent).

        Connection readers are cancelled *before* sessions close, so no
        new events can arrive mid-drain; every batch accepted before
        the shutdown began is applied and covered by the final
        per-tenant checkpoint.
        """
        if self._shut_down:
            return
        self._shut_down = True
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for _, session in sorted(self._sessions.items()):
            await session.close(checkpoint=self.checkpoint_dir is not None)
        self._tenants_gauge.set(0)
        if self._path:
            with contextlib.suppress(OSError):
                os.unlink(self._path)

    def request_shutdown(self, code: int = 0) -> None:
        """Thread-safe graceful-stop trigger (what signals call)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._resolve_stop, code)

    def _resolve_stop(self, code: int) -> None:
        if self._stop is not None and not self._stop.done():
            self._stop.set_result(code)

    def _install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        # Only possible on the main thread of the main interpreter;
        # thread-driven embedders call request_shutdown instead.
        for signum, code in ((signal.SIGINT, 130), (signal.SIGTERM, 0)):
            try:
                loop.add_signal_handler(signum, self.request_shutdown, code)
            except (NotImplementedError, RuntimeError, ValueError):
                return

    async def serve_until_shutdown(self) -> int:
        """Run until a signal or :meth:`request_shutdown`; exit code."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = loop.create_future()
        await self.start()
        self._install_signal_handlers(loop)
        try:
            code = await self._stop
        finally:
            await self.shutdown()
        return code

    def run(self) -> int:
        """Blocking daemon entry point; returns the process exit code
        (130 after SIGINT, 0 after SIGTERM or a requested stop)."""
        return asyncio.run(self.serve_until_shutdown())

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _on_connection(self, reader, writer) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle(reader, writer)
        )
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    def _admit(self, payload) -> TenantSession:
        """Validate a HELLO and return (possibly creating) its session."""
        tenant, kernel = decode_hello(payload)  # ValueError → protocol reject
        if not valid_tenant_id(tenant):
            raise ServiceError(
                f"invalid tenant id {tenant!r}: use 1-128 chars from "
                "[A-Za-z0-9._-], not starting with a dot"
            )
        session = self._sessions.get(tenant)
        if session is not None:
            if kernel is not None and kernel != session.config.kernel:
                raise ServiceError(
                    f"tenant {tenant!r} is live with kernel "
                    f"{session.config.kernel!r}; refusing to switch to "
                    f"{kernel!r} mid-session"
                )
            return session
        if self._closing:
            raise ServiceError("service is shutting down; new tenants refused")
        if len(self._sessions) >= self.max_tenants:
            raise ServiceError(
                f"tenant limit reached ({self.max_tenants}); "
                f"tenant {tenant!r} refused"
            )
        checkpoint_path = (
            os.path.join(self.checkpoint_dir, f"{tenant}.rpk")
            if self.checkpoint_dir
            else None
        )
        session = TenantSession(
            tenant,
            self.config,
            queue_depth=self.queue_depth,
            workers=self.workers,
            batch_size=self.batch_size,
            checkpoint_path=checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            resume=self.resume,
            ingest_delay=self._ingest_delay,
            kernel=kernel,
        )
        self._sessions[tenant] = session
        self._tenants_gauge.set(len(self._sessions))
        return session

    async def _handle(self, reader, writer) -> None:
        """One connection: handshake, then events + queries until EOF.

        Every exit path closes only this connection; errors are
        reported to the client as an ``ERROR`` message when the socket
        still allows it.
        """
        self._connections_counter.inc()
        max_bytes = self.max_frame_bytes
        try:
            try:
                op, payload = await read_message(reader, max_bytes=max_bytes)
            except EOFError:
                return
            if op != OP_HELLO:
                raise ProtocolError(
                    f"expected HELLO as the first message, got opcode {op!r}"
                )
            try:
                session = self._admit(payload)
            except ValueError as error:
                raise ProtocolError(str(error)) from None
            await session.start()
            writer.write(
                pack_wire_message(
                    OP_OK, self.max_frame_bytes.to_bytes(4, "little")
                )
            )
            await writer.drain()
            decoder = DeltaBatchDecoder()
            while True:
                try:
                    op, payload = await read_message(reader, max_bytes=max_bytes)
                except EOFError:
                    return
                if op == OP_EVENTS:
                    self._frames_counter.inc()
                    self._bytes_counter.inc(len(payload))
                    try:
                        events = decoder.decode(payload)
                    except ValueError as error:
                        raise ProtocolError(str(error)) from None
                    if type(events) is EventColumns:
                        self._columnar_counter.inc()
                    await session.enqueue_events(events)
                elif op in _QUERY_OPS:
                    reply = await session.query(op, payload)
                    # Scatter-gather write: the length/opcode prefix and
                    # the (possibly large) reply body go to the transport
                    # as separate buffers instead of one concatenation.
                    writer.writelines(wire_message_parts(op, reply))
                    await writer.drain()
                elif op == OP_BYE:
                    writer.write(pack_wire_message(OP_BYE))
                    await writer.drain()
                    return
                else:
                    raise ProtocolError(f"unknown opcode {op!r}")
        except (ProtocolError, ServiceError, ReproError) as error:
            if isinstance(error, ProtocolError):
                self._errors_counter.inc()
            else:
                self._rejects_counter.inc()
            with contextlib.suppress(Exception):
                writer.write(
                    pack_wire_message(OP_ERROR, str(error).encode("utf-8"))
                )
                await writer.drain()
        except (ConnectionError, TimeoutError):
            pass  # peer vanished; nothing to tell it
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> Dict[str, TenantSession]:
        """Live tenant sessions by id (read-only view for embedders)."""
        return dict(self._sessions)

    def __repr__(self) -> str:
        state = "closed" if self._shut_down else (
            "serving" if self._server is not None else "idle"
        )
        return (
            f"ClusterService(endpoint={self.endpoint!r}, "
            f"tenants={len(self._sessions)}, {state})"
        )
