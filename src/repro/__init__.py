"""repro — reproduction of "Clustering Streaming Graphs" (ICDCS 2012).

A. Eldawy, R. Khandekar, K.-L. Wu. DOI 10.1109/ICDCS.2012.20.

The library clusters large, fully-dynamic graphs online: a bounded
**reservoir sample of the edges** is maintained as the graph changes
(additions *and* deletions), optionally under cluster-shape constraints,
and the **connected components of the sampled sub-graph** are declared
as the clusters of the original graph.

Quickstart
----------
>>> from repro import StreamingGraphClusterer, ClustererConfig, add_edge
>>> clusterer = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=1000))
>>> clusterer.apply(add_edge("alice", "bob"))
>>> clusterer.same_cluster("alice", "bob")
True

Packages
--------
* :mod:`repro.core` — the streaming clusterer (+ sharded / windowed).
* :mod:`repro.connectivity` — fully-dynamic connectivity (HDT, ETT, …).
* :mod:`repro.sampling` — reservoir samplers (Algorithm R/L, random
  pairing, Bernoulli).
* :mod:`repro.streams` — event model, generators (SBM, LFR-style,
  drift), orders, I/O.
* :mod:`repro.baselines` — offline comparators (Louvain, LPA, spectral,
  multilevel/METIS-like, MCL) built from scratch.
* :mod:`repro.quality` — modularity, conductance, NMI/ARI/F1, …
* :mod:`repro.datasets` — real fixture + synthetic stand-in registry.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from repro.core import (
    ClusterEvent,
    ClusterEventKind,
    ClusterTracker,
    ClustererConfig,
    ClustererStats,
    CompositeConstraint,
    ConstraintPolicy,
    DeletionPolicy,
    MaxClusterSize,
    MinClusterCount,
    MultiResolutionClusterer,
    ShardedClusterer,
    SlidingWindowClusterer,
    StreamingGraphClusterer,
    TimeWindowClusterer,
    SupervisorConfig,
    Unconstrained,
    WeightedStreamingClusterer,
    cluster_stream_parallel,
)
from repro.errors import (
    CheckpointError,
    ReproError,
    StreamError,
    UnsupportedOperationError,
)
from repro.persist import PeriodicCheckpointer, load_checkpoint, save_checkpoint
from repro.quality.partition import Partition
from repro.streams.events import (
    EdgeEvent,
    EventKind,
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "ClusterEvent",
    "ClusterEventKind",
    "ClusterTracker",
    "ClustererConfig",
    "ClustererStats",
    "CompositeConstraint",
    "ConstraintPolicy",
    "DeletionPolicy",
    "EdgeEvent",
    "EventKind",
    "MaxClusterSize",
    "MinClusterCount",
    "MultiResolutionClusterer",
    "Partition",
    "PeriodicCheckpointer",
    "ReproError",
    "ShardedClusterer",
    "SlidingWindowClusterer",
    "StreamError",
    "SupervisorConfig",
    "StreamingGraphClusterer",
    "TimeWindowClusterer",
    "Unconstrained",
    "WeightedStreamingClusterer",
    "UnsupportedOperationError",
    "__version__",
    "add_edge",
    "add_vertex",
    "cluster_stream_parallel",
    "delete_edge",
    "delete_vertex",
    "load_checkpoint",
    "save_checkpoint",
]
