"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "CheckpointError",
    "ProtocolError",
    "ReproError",
    "ServiceError",
    "StreamError",
    "UnsupportedOperationError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class StreamError(ReproError, ValueError):
    """A malformed stream event or stream file (duplicate add, delete of
    an absent edge, an unparseable line, …).

    Raised under ``strict`` stream validation; non-strict consumers count
    and skip malformed input instead. Subclasses ``ValueError`` so
    pre-existing callers that catch the historical exception keep working.
    """


class CheckpointError(ReproError):
    """A checkpoint file cannot be trusted or understood.

    Raised for missing/unreadable files, wrong magic, unsupported format
    versions, truncation, CRC mismatches, and undecodable or structurally
    invalid payloads. A corrupted checkpoint is *never* loaded silently.
    """


class ServiceError(ReproError):
    """The streaming service refused a request or cannot be reached.

    Raised client-side for connection failures and server-reported
    errors (admission rejects, protocol violations); the CLI maps it to
    exit code 2 like every other :class:`ReproError`.
    """


class ProtocolError(ServiceError):
    """A wire message violated the service protocol.

    Oversized or truncated length-prefixed messages, bad handshakes,
    undecodable event frames, unknown opcodes. The server answers with
    an error message and closes *that* connection; the daemon itself
    and every other tenant keep running.
    """


class UnsupportedOperationError(ReproError):
    """The requested operation needs state this configuration dropped.

    E.g. vertex deletion requires ``track_graph=True`` because a pure
    edge reservoir cannot enumerate the incident edges to remove.
    """
