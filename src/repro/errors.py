"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = ["ReproError", "StreamError", "UnsupportedOperationError"]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class StreamError(ReproError):
    """A malformed stream event (duplicate add, delete of absent edge, …).

    Raised only under ``strict`` stream validation; non-strict clusterers
    count and skip malformed events instead.
    """


class UnsupportedOperationError(ReproError):
    """The requested operation needs state this configuration dropped.

    E.g. vertex deletion requires ``track_graph=True`` because a pure
    edge reservoir cannot enumerate the incident edges to remove.
    """
