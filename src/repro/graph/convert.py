"""Conversions between graph representations and event streams."""

from __future__ import annotations

from typing import Iterable, List

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.csr import CSRGraph
from repro.streams.events import Edge, EdgeEvent, EventKind

__all__ = [
    "graph_from_events",
    "events_to_edge_list",
    "adjacency_to_csr",
    "csr_to_adjacency",
]


def graph_from_events(events: Iterable[EdgeEvent]) -> AdjacencyGraph:
    """Replay a stream into the final :class:`AdjacencyGraph` state.

    Malformed events (duplicate adds, deletes of absent edges/vertices)
    are applied idempotently — this mirrors a non-strict clusterer and is
    handy for computing metrics over arbitrary streams.
    """
    graph = AdjacencyGraph()
    for event in events:
        kind = event.kind
        if kind is EventKind.ADD_EDGE:
            graph.add_edge(event.u, event.v)
        elif kind is EventKind.DELETE_EDGE:
            graph.remove_edge(event.u, event.v)
        elif kind is EventKind.ADD_VERTEX:
            graph.add_vertex(event.u)
        else:
            graph.remove_vertex(event.u)
    return graph


def events_to_edge_list(events: Iterable[EdgeEvent]) -> List[Edge]:
    """Final edge list after replaying a stream."""
    return graph_from_events(events).edge_list()


def adjacency_to_csr(graph: AdjacencyGraph) -> CSRGraph:
    """Freeze a dynamic graph into a CSR snapshot."""
    return CSRGraph.from_adjacency(graph)


def csr_to_adjacency(csr: CSRGraph) -> AdjacencyGraph:
    """Thaw a CSR snapshot back into a dynamic graph."""
    graph = AdjacencyGraph()
    for v in csr.ids:
        graph.add_vertex(v)
    for u, v in csr.edges():
        graph.add_edge(csr.ids[u], csr.ids[v])
    return graph
