"""Immutable CSR (compressed sparse row) graph snapshots.

The offline baselines (spectral, MCL, multilevel, Louvain) operate on a
frozen snapshot of the graph; CSR gives them cache-friendly, vectorized
access via numpy arrays and a zero-copy bridge to ``scipy.sparse``.

Vertices are remapped to dense indices ``0..n-1``; the original ids are
kept in :attr:`CSRGraph.ids` and the inverse mapping in
:attr:`CSRGraph.index_of`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.streams.events import Edge, Vertex

__all__ = ["CSRGraph"]


class CSRGraph:
    """Frozen undirected graph in CSR form.

    >>> g = CSRGraph.from_edges([(10, 20), (20, 30)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.ids[i] for i in g.neighbors(g.index_of[20]))
    [10, 30]
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        ids: Sequence[Vertex],
    ) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if len(indptr) != len(ids) + 1:
            raise ValueError("indptr length must be num_vertices + 1")
        self.indptr = indptr
        self.indices = indices
        self.ids: List[Vertex] = list(ids)
        self.index_of: Dict[Vertex, int] = {v: i for i, v in enumerate(self.ids)}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], vertices: Iterable[Vertex] | None = None
    ) -> "CSRGraph":
        """Build from an edge list (plus optional isolated vertices)."""
        edge_list = list(edges)
        id_set = set(vertices) if vertices is not None else set()
        for u, v in edge_list:
            id_set.add(u)
            id_set.add(v)
        try:
            ids = sorted(id_set)  # type: ignore[type-var]
        except TypeError:
            ids = sorted(id_set, key=repr)
        index_of = {v: i for i, v in enumerate(ids)}
        n = len(ids)
        degree = np.zeros(n, dtype=np.int64)
        for u, v in edge_list:
            degree[index_of[u]] += 1
            degree[index_of[v]] += 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        indices = np.zeros(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for u, v in edge_list:
            iu, iv = index_of[u], index_of[v]
            indices[cursor[iu]] = iv
            cursor[iu] += 1
            indices[cursor[iv]] = iu
            cursor[iv] += 1
        return cls(indptr, indices, ids)

    @classmethod
    def from_adjacency(cls, graph) -> "CSRGraph":
        """Snapshot a :class:`repro.graph.adjacency.AdjacencyGraph`."""
        return cls.from_edges(graph.edges(), graph.vertices())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degree(self, index: int) -> int:
        """Degree of the vertex at dense ``index``."""
        return int(self.indptr[index + 1] - self.indptr[index])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices (dense order)."""
        return np.diff(self.indptr)

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbor indices of the vertex at dense ``index`` (view)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate undirected edges as dense index pairs (u < v once each)."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def to_scipy(self):
        """The adjacency matrix as a ``scipy.sparse.csr_matrix`` (0/1)."""
        from scipy.sparse import csr_matrix

        data = np.ones(len(self.indices), dtype=np.float64)
        n = self.num_vertices
        return csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    def __repr__(self) -> str:
        return f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"
