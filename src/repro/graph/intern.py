"""Vertex interning: arbitrary hashable labels ↔ dense ``u32`` ids.

The hot paths of the streaming clusterer (reservoir updates, adjacency
maintenance, connectivity queries) used to operate directly on vertex
*labels* — arbitrary hashable objects — paying label hashing and tuple
allocation on every event. :class:`VertexInterner` assigns each distinct
label a dense integer id at first sight, so everything past the
ingestion boundary works on small ints: edge keys pack into a single
``(u32 << 32) | u32`` int, adjacency becomes list-indexed, and dict keys
hash trivially. Labels reappear only at the API boundary
(snapshots, ``reservoir_edges``, checkpoints).

Determinism contract
--------------------
Ids are assigned in *first-appearance order* of the (canonicalized)
event stream, so two runs consuming the same events — per-event,
batched, or a pipeline worker decoding interned frames — build the
identical table. The table round-trips through
:meth:`get_state`/:meth:`from_state` so a restored clusterer keeps its
exact label↔id mapping and future checkpoints stay byte-identical to an
uninterrupted run's.

Ids are never reused: a deleted vertex keeps its id (the table is
append-only). This is what makes checkpoint determinism trivial and
costs one table slot per distinct label ever seen.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

__all__ = ["MAX_VERTEX_ID", "VertexInterner"]

#: Ids must pack two-per-64-bit-int in edge keys, so the table is capped
#: at the u32 range (4.29 billion distinct labels per clusterer shard).
MAX_VERTEX_ID = 0xFFFFFFFF


class VertexInterner:
    """Insertion-ordered bijection between vertex labels and dense ids.

    >>> interner = VertexInterner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (0, 1, 0)
    >>> interner.label_of(1)
    'b'
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self, labels: Iterable[Hashable] = ()) -> None:
        self._ids: dict = {}
        self._labels: List[Hashable] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: Hashable) -> int:
        """Return ``label``'s id, assigning the next dense id if new."""
        ids = self._ids
        vid = ids.get(label)
        if vid is None:
            labels = self._labels
            vid = len(labels)
            if vid > MAX_VERTEX_ID:
                raise OverflowError(
                    f"vertex intern table is full ({MAX_VERTEX_ID + 1} labels)"
                )
            ids[label] = vid
            labels.append(label)
        return vid

    def id_of(self, label: Hashable) -> Optional[int]:
        """``label``'s id, or None if it was never interned."""
        return self._ids.get(label)

    def label_of(self, vid: int) -> Hashable:
        """The label behind ``vid``; raises ``IndexError`` for unknown ids."""
        return self._labels[vid]

    def labels(self) -> List[Hashable]:
        """All labels in id order (copy; index == id)."""
        return list(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids

    def __repr__(self) -> str:
        return f"VertexInterner(size={len(self._labels)})"

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Serializable state: the label list in id order."""
        return {"labels": list(self._labels)}

    @classmethod
    def from_state(cls, state: dict) -> "VertexInterner":
        """Reconstruct an interner with the exact same label↔id mapping.

        A duplicated label can never come from :meth:`get_state` and
        would silently alias two ids, so it raises ``ValueError``.
        """
        interner = cls()
        ids = interner._ids
        labels = interner._labels
        for label in state["labels"]:
            if label in ids:
                raise ValueError(
                    f"corrupt intern table: duplicate label {label!r}"
                )
            ids[label] = len(labels)
            labels.append(label)
        return interner
