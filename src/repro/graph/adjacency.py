"""Dynamic undirected graph backed by adjacency sets.

:class:`AdjacencyGraph` is the mutable graph substrate: the streaming
clusterer keeps one for the *full* graph (needed for quality metrics and
for the resample-on-delete reservoir policy) and the reservoir keeps the
sampled sub-graph structure in its connectivity index.

Design notes
------------
* Undirected, no self-loops, no parallel edges — matching the paper's
  stream model after canonicalization.
* ``add_edge``/``remove_edge`` are O(1); edge iteration is O(m).
* Vertices may exist with degree zero (explicit ADD_VERTEX events).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.streams.events import Edge, Vertex, canonical_edge

__all__ = ["AdjacencyGraph"]


class AdjacencyGraph:
    """A dynamic undirected simple graph.

    >>> g = AdjacencyGraph()
    >>> g.add_edge(1, 2)
    True
    >>> g.add_edge(2, 1)   # duplicate, canonicalized away
    False
    >>> g.num_edges, g.num_vertices
    (1, 2)
    """

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        # Neighbour "sets" are insertion-ordered dicts so that edge and
        # vertex iteration order is a pure function of the mutation
        # sequence — serialized state must round-trip byte-identically
        # through get_state/from_state (hash-ordered sets do not).
        self._adj: Dict[Vertex, Dict[Vertex, None]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        """Add an isolated vertex; returns False if it already exists."""
        if v in self._adj:
            return False
        self._adj[v] = {}
        return True

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Add the undirected edge ``{u, v}``; returns False if present.

        Endpoints are created implicitly, mirroring how streaming graphs
        introduce vertices through their first edge.
        """
        u, v = canonical_edge(u, v)
        return self.add_canonical_edge(u, v)

    def add_canonical_edge(self, u: Vertex, v: Vertex) -> bool:
        """:meth:`add_edge` for endpoints already in canonical order.

        Skips re-canonicalization — the caller guarantees ``(u, v)`` is
        the canonical form and not a self-loop. The batched ingestion
        hot path canonicalizes events in bulk and calls this directly.
        """
        neighbours = self._adj.setdefault(u, {})
        if v in neighbours:
            return False
        neighbours[v] = None
        self._adj.setdefault(v, {})[u] = None
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> bool:
        """Remove the edge ``{u, v}``; returns False if it was absent."""
        u, v = canonical_edge(u, v)
        return self.remove_canonical_edge(u, v)

    def remove_canonical_edge(self, u: Vertex, v: Vertex) -> bool:
        """:meth:`remove_edge` for endpoints already in canonical order."""
        neighbours = self._adj.get(u)
        if neighbours is None or v not in neighbours:
            return False
        del neighbours[v]
        del self._adj[v][u]
        self._num_edges -= 1
        return True

    def remove_vertex(self, v: Vertex) -> List[Edge]:
        """Remove ``v`` and all incident edges; returns the removed edges.

        Returns an empty list if the vertex was absent (idempotent).
        """
        neighbours = self._adj.pop(v, None)
        if neighbours is None:
            return []
        removed: List[Edge] = []
        for w in neighbours:
            del self._adj[w][v]
            removed.append(canonical_edge(v, w))
        self._num_edges -= len(removed)
        return removed

    def clear(self) -> None:
        """Remove all vertices and edges."""
        self._adj.clear()
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_vertex(self, v: Vertex) -> bool:
        """True if ``v`` is in the graph (even with degree 0)."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``; raises ``KeyError`` for unknown vertices."""
        return len(self._adj[v])

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """A *copy-free view* is intentionally not exposed; returns a frozen
        iteration-safe set copy of ``v``'s neighbours."""
        return set(self._adj[v])

    def iter_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate neighbours without copying (do not mutate while iterating)."""
        return iter(self._adj[v])

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form, each exactly once."""
        for u, neighbours in self._adj.items():
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def edge_list(self) -> List[Edge]:
        """All edges as a list (stable within a single graph state)."""
        return list(self.edges())

    def subgraph_edges(self, vertices: Set[Vertex]) -> List[Edge]:
        """Edges with *both* endpoints inside ``vertices``."""
        result: List[Edge] = []
        for v in vertices:
            neighbours = self._adj.get(v)
            if not neighbours:
                continue
            for w in neighbours:
                if w in vertices:
                    edge = canonical_edge(v, w)
                    if edge[0] == v:
                        result.append(edge)
        return result

    def connected_components(self) -> List[Set[Vertex]]:
        """Connected components via iterative BFS (used as a test oracle
        and by offline baselines; the streaming path uses
        :mod:`repro.connectivity` instead)."""
        seen: Set[Vertex] = set()
        components: List[Set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                for neighbour in self._adj[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        return components

    def copy(self) -> "AdjacencyGraph":
        """Deep copy of the graph structure."""
        clone = AdjacencyGraph()
        clone._adj = {v: dict(ns) for v, ns in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def get_state(self) -> dict:
        """Serializable state: vertices and edges in iteration order.

        Vertex order matters — the adjacency dict is insertion-ordered
        and downstream consumers (e.g. the resample policy) iterate it,
        so a restored graph must present vertices in the same order.
        """
        return {"vertices": list(self._adj), "edges": self.edge_list()}

    @classmethod
    def from_state(cls, state: dict) -> "AdjacencyGraph":
        """Reconstruct a graph from :meth:`get_state` output."""
        graph = cls()
        for v in state["vertices"]:
            graph.add_vertex(v)
        for u, v in state["edges"]:
            graph.add_edge(u, v)
        return graph

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __repr__(self) -> str:
        return (
            f"AdjacencyGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
