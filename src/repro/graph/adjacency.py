"""Dynamic undirected graph backed by adjacency sets.

:class:`AdjacencyGraph` is the mutable graph substrate: the streaming
clusterer keeps one for the *full* graph (needed for quality metrics and
for the resample-on-delete reservoir policy) and the reservoir keeps the
sampled sub-graph structure in its connectivity index.

Design notes
------------
* Undirected, no self-loops, no parallel edges — matching the paper's
  stream model after canonicalization.
* ``add_edge``/``remove_edge`` are O(1); edge iteration is O(m).
* Vertices may exist with degree zero (explicit ADD_VERTEX events).

Storage modes
-------------
The default mode keys adjacency dicts directly by the vertex labels.
Passing an ``interner`` (:class:`~repro.graph.intern.VertexInterner`)
switches the graph to **int-ID mode**: adjacency is a plain list indexed
by dense vertex id (``None`` marks an absent vertex), neighbour sets are
int-keyed dicts, and the ``*_ids`` methods mutate/query without touching
labels at all — this is the representation the clusterer's hot path
uses. The label-facing API (``has_vertex``, ``edges``, ``neighbors``,
``get_state``, …) keeps working in either mode; in id mode it translates
through the interner at the boundary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from repro.streams.events import Edge, Vertex, canonical_edge

__all__ = ["AdjacencyGraph"]

_MASK32 = 0xFFFFFFFF


class AdjacencyGraph:
    """A dynamic undirected simple graph.

    >>> g = AdjacencyGraph()
    >>> g.add_edge(1, 2)
    True
    >>> g.add_edge(2, 1)   # duplicate, canonicalized away
    False
    >>> g.num_edges, g.num_vertices
    (1, 2)
    """

    __slots__ = ("_intern", "_adj", "_id_count", "_num_edges")

    def __init__(
        self, edges: Iterable[Edge] | None = None, *, interner=None
    ) -> None:
        # Neighbour "sets" are insertion-ordered dicts so that edge and
        # vertex iteration order is a pure function of the mutation
        # sequence — serialized state must round-trip byte-identically
        # through get_state/from_state (hash-ordered sets do not).
        self._intern = interner
        # Label mode: Dict[Vertex, Dict[Vertex, None]].
        # Id mode: List[Optional[Dict[int, None]]] indexed by vertex id
        # (id-order iteration is deterministic and restore-stable, since
        # the interner itself round-trips through checkpoints).
        self._adj = {} if interner is None else []
        self._id_count = 0
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation (label API, both modes)
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        """Add an isolated vertex; returns False if it already exists."""
        if self._intern is not None:
            return self.add_vertex_id(self._intern.intern(v))
        if v in self._adj:
            return False
        self._adj[v] = {}
        return True

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Add the undirected edge ``{u, v}``; returns False if present.

        Endpoints are created implicitly, mirroring how streaming graphs
        introduce vertices through their first edge.
        """
        u, v = canonical_edge(u, v)
        if self._intern is not None:
            return self.add_edge_ids(self._intern.intern(u), self._intern.intern(v))
        return self.add_canonical_edge(u, v)

    def add_canonical_edge(self, u: Vertex, v: Vertex) -> bool:
        """:meth:`add_edge` for endpoints already in canonical order.

        Skips re-canonicalization — the caller guarantees ``(u, v)`` is
        the canonical form and not a self-loop. (In id mode the hot path
        uses :meth:`add_edge_ids` instead.)
        """
        if self._intern is not None:
            return self.add_edge_ids(self._intern.intern(u), self._intern.intern(v))
        neighbours = self._adj.setdefault(u, {})
        if v in neighbours:
            return False
        neighbours[v] = None
        self._adj.setdefault(v, {})[u] = None
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> bool:
        """Remove the edge ``{u, v}``; returns False if it was absent."""
        u, v = canonical_edge(u, v)
        if self._intern is not None:
            id_of = self._intern.id_of
            uid = id_of(u)
            vid = id_of(v)
            if uid is None or vid is None:
                return False
            return self.remove_edge_ids(uid, vid)
        return self.remove_canonical_edge(u, v)

    def remove_canonical_edge(self, u: Vertex, v: Vertex) -> bool:
        """:meth:`remove_edge` for endpoints already in canonical order."""
        if self._intern is not None:
            return self.remove_edge(u, v)
        neighbours = self._adj.get(u)
        if neighbours is None or v not in neighbours:
            return False
        del neighbours[v]
        del self._adj[v][u]
        self._num_edges -= 1
        return True

    def remove_vertex(self, v: Vertex) -> List[Edge]:
        """Remove ``v`` and all incident edges; returns the removed edges.

        Returns an empty list if the vertex was absent (idempotent).
        """
        if self._intern is not None:
            vid = self._intern.id_of(v)
            if vid is None:
                return []
            label_of = self._intern.label_of
            return [
                canonical_edge(label_of(key >> 32), label_of(key & _MASK32))
                for key in self.remove_vertex_id(vid)
            ]
        neighbours = self._adj.pop(v, None)
        if neighbours is None:
            return []
        removed: List[Edge] = []
        for w in neighbours:
            del self._adj[w][v]
            removed.append(canonical_edge(v, w))
        self._num_edges -= len(removed)
        return removed

    def clear(self) -> None:
        """Remove all vertices and edges."""
        if self._intern is not None:
            self._adj = []
            self._id_count = 0
        else:
            self._adj.clear()
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Mutation (dense-id hot path; id mode only)
    # ------------------------------------------------------------------
    def add_vertex_id(self, vid: int) -> bool:
        """Id-mode :meth:`add_vertex` for an already-interned vertex."""
        adj = self._adj
        if vid >= len(adj):
            adj.extend([None] * (vid + 1 - len(adj)))
        if adj[vid] is None:
            adj[vid] = {}
            self._id_count += 1
            return True
        return False

    def add_edge_ids(self, uid: int, vid: int) -> bool:
        """Id-mode :meth:`add_edge`; endpoints in any order, no self-loops."""
        adj = self._adj
        n = len(adj)
        if uid >= n or vid >= n:
            adj.extend([None] * ((uid if uid > vid else vid) + 1 - n))
        nu = adj[uid]
        if nu is None:
            adj[uid] = {vid: None}
            self._id_count += 1
        elif vid in nu:
            return False
        else:
            nu[vid] = None
        nv = adj[vid]
        if nv is None:
            adj[vid] = {uid: None}
            self._id_count += 1
        else:
            nv[uid] = None
        self._num_edges += 1
        return True

    def remove_edge_ids(self, uid: int, vid: int) -> bool:
        """Id-mode :meth:`remove_edge`; returns False if absent."""
        adj = self._adj
        nu = adj[uid] if uid < len(adj) else None
        if nu is None or vid not in nu:
            return False
        del nu[vid]
        del adj[vid][uid]
        self._num_edges -= 1
        return True

    def remove_vertex_id(self, vid: int) -> List[int]:
        """Id-mode :meth:`remove_vertex`.

        Returns the removed incident edges as packed
        ``(min_id << 32) | max_id`` keys — the clusterer feeds these
        straight into its packed reservoir. Empty list if absent.
        """
        adj = self._adj
        neighbours = adj[vid] if vid < len(adj) else None
        if neighbours is None:
            return []
        adj[vid] = None
        self._id_count -= 1
        removed: List[int] = []
        for w in neighbours:
            del adj[w][vid]
            removed.append((vid << 32) | w if vid < w else (w << 32) | vid)
        self._num_edges -= len(removed)
        return removed

    def has_vertex_id(self, vid: int) -> bool:
        """Id-mode :meth:`has_vertex`."""
        adj = self._adj
        return vid < len(adj) and adj[vid] is not None

    def vertex_ids(self) -> Iterator[int]:
        """Iterate present vertex ids in ascending (deterministic) order."""
        return (vid for vid, ns in enumerate(self._adj) if ns is not None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_vertex(self, v: Vertex) -> bool:
        """True if ``v`` is in the graph (even with degree 0)."""
        if self._intern is not None:
            vid = self._intern.id_of(v)
            return vid is not None and self.has_vertex_id(vid)
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        if self._intern is not None:
            id_of = self._intern.id_of
            uid = id_of(u)
            vid = id_of(v)
            if uid is None or vid is None:
                return False
            adj = self._adj
            neighbours = adj[uid] if uid < len(adj) else None
            return neighbours is not None and vid in neighbours
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def _neighbour_ids(self, v: Vertex) -> Dict[int, None]:
        """Id-mode neighbour dict of ``v``; KeyError for unknown vertices."""
        vid = self._intern.id_of(v)
        if vid is not None:
            adj = self._adj
            neighbours = adj[vid] if vid < len(adj) else None
            if neighbours is not None:
                return neighbours
        raise KeyError(v)

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``; raises ``KeyError`` for unknown vertices."""
        if self._intern is not None:
            return len(self._neighbour_ids(v))
        return len(self._adj[v])

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """``v``'s neighbours as an immutable ``frozenset`` snapshot.

        A frozen *copy*, never a view of internal storage: callers can
        hold it across later mutations (it will not change underneath
        them) and cannot corrupt the graph by mutating the return value.
        Regression-tested in ``tests/test_adjacency.py``.
        """
        if self._intern is not None:
            label_of = self._intern.label_of
            return frozenset(label_of(w) for w in self._neighbour_ids(v))
        return frozenset(self._adj[v])

    def iter_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate neighbours without copying (do not mutate while iterating)."""
        if self._intern is not None:
            label_of = self._intern.label_of
            return (label_of(w) for w in self._neighbour_ids(v))
        return iter(self._adj[v])

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        if self._intern is not None:
            return self._id_count
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        if self._intern is not None:
            label_of = self._intern.label_of
            return (label_of(vid) for vid in self.vertex_ids())
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form, each exactly once."""
        if self._intern is not None:
            label_of = self._intern.label_of
            for uid, neighbours in enumerate(self._adj):
                if not neighbours:
                    continue
                lu = label_of(uid)
                for w in neighbours:
                    if w > uid:
                        yield canonical_edge(lu, label_of(w))
            return
        for u, neighbours in self._adj.items():
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def edge_list(self) -> List[Edge]:
        """All edges as a list (stable within a single graph state)."""
        return list(self.edges())

    def subgraph_edges(self, vertices: Set[Vertex]) -> List[Edge]:
        """Edges with *both* endpoints inside ``vertices``."""
        result: List[Edge] = []
        if self._intern is not None:
            id_of = self._intern.id_of
            label_of = self._intern.label_of
            adj = self._adj
            for v in vertices:
                vid = id_of(v)
                neighbours = (
                    adj[vid] if vid is not None and vid < len(adj) else None
                )
                if not neighbours:
                    continue
                for w in neighbours:
                    lw = label_of(w)
                    if lw in vertices:
                        edge = canonical_edge(v, lw)
                        if edge[0] == v:
                            result.append(edge)
            return result
        for v in vertices:
            neighbours = self._adj.get(v)
            if not neighbours:
                continue
            for w in neighbours:
                if w in vertices:
                    edge = canonical_edge(v, w)
                    if edge[0] == v:
                        result.append(edge)
        return result

    def connected_components(self) -> List[Set[Vertex]]:
        """Connected components via iterative BFS (used as a test oracle
        and by offline baselines; the streaming path uses
        :mod:`repro.connectivity` instead)."""
        if self._intern is not None:
            label_of = self._intern.label_of
            adj = self._adj
            seen: Set[int] = set()
            components: List[Set[Vertex]] = []
            for start in self.vertex_ids():
                if start in seen:
                    continue
                component = {start}
                frontier = [start]
                seen.add(start)
                while frontier:
                    node = frontier.pop()
                    for neighbour in adj[node]:
                        if neighbour not in seen:
                            seen.add(neighbour)
                            component.add(neighbour)
                            frontier.append(neighbour)
                components.append({label_of(vid) for vid in component})
            return components
        seen = set()
        components = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                for neighbour in self._adj[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        return components

    def copy(self) -> "AdjacencyGraph":
        """Deep copy of the graph structure (shares the interner, if any)."""
        clone = AdjacencyGraph(interner=self._intern)
        if self._intern is not None:
            clone._adj = [None if ns is None else dict(ns) for ns in self._adj]
            clone._id_count = self._id_count
        else:
            clone._adj = {v: dict(ns) for v, ns in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def get_state(self) -> dict:
        """Serializable state: vertices and edges in iteration order.

        Vertex order matters — iteration order is deterministic in both
        modes (dict insertion order / ascending id order) and downstream
        consumers (e.g. the resample policy) depend on a restored graph
        presenting vertices in the same order. The state itself is
        always label-space, so it is mode- and format-portable.
        """
        return {"vertices": list(self.vertices()), "edges": self.edge_list()}

    @classmethod
    def from_state(cls, state: dict, *, interner=None) -> "AdjacencyGraph":
        """Reconstruct a graph from :meth:`get_state` output.

        With ``interner`` the restored graph runs in id mode; labels
        already present in the interner keep their ids.
        """
        graph = cls(interner=interner)
        for v in state["vertices"]:
            graph.add_vertex(v)
        for u, v in state["edges"]:
            graph.add_edge(u, v)
        return graph

    def __contains__(self, v: Vertex) -> bool:
        return self.has_vertex(v)

    def __repr__(self) -> str:
        return (
            f"AdjacencyGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
