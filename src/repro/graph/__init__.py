"""Graph substrates: dynamic adjacency graphs and frozen CSR snapshots."""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.intern import MAX_VERTEX_ID, VertexInterner
from repro.graph.convert import (
    adjacency_to_csr,
    csr_to_adjacency,
    events_to_edge_list,
    graph_from_events,
)
from repro.graph.csr import CSRGraph

__all__ = [
    "AdjacencyGraph",
    "CSRGraph",
    "MAX_VERTEX_ID",
    "VertexInterner",
    "adjacency_to_csr",
    "csr_to_adjacency",
    "events_to_edge_list",
    "graph_from_events",
]
