"""Bernoulli (p-)sampling of a dynamic stream.

Each inserted item is kept independently with probability ``p``;
deletions remove the item from the sample if present. Unlike the
reservoir samplers the sample size is not bounded — it concentrates
around ``p · population``.

This is the theoretical comparator for graph reservoir sampling: for
graphs, keeping each edge with probability ``p ≳ (log n)/φ·…`` preserves
sparse cuts (Karger-style sparsification), which is exactly why
connected components of a sampled sub-graph track the dense clusters of
the original. The reservoir variant trades the fixed rate for a fixed
*memory budget*, which is what a streaming system needs.
"""

from __future__ import annotations

from typing import Generic, List, Set, TypeVar

from repro.util.rng import make_rng
from repro.util.validation import check_probability

__all__ = ["BernoulliSampler"]

T = TypeVar("T")


class BernoulliSampler(Generic[T]):
    """Keep each inserted item independently with probability ``p``."""

    def __init__(self, p: float, seed: int | None = 0) -> None:
        check_probability("p", p)
        self._p = p
        self._rng = make_rng(seed)
        self._sample: Set[T] = set()
        self._population = 0

    @property
    def p(self) -> float:
        """Per-item sampling probability."""
        return self._p

    @property
    def population(self) -> int:
        """Current population size implied by the update history."""
        return self._population

    @property
    def sample_size(self) -> int:
        """Current number of sampled items."""
        return len(self._sample)

    def __len__(self) -> int:
        return len(self._sample)

    def __contains__(self, item: T) -> bool:
        return item in self._sample

    def contains(self, item: T) -> bool:
        """True if ``item`` is currently sampled."""
        return item in self._sample

    def items(self) -> List[T]:
        """The current sample as a list (copy)."""
        return list(self._sample)

    def insert(self, item: T) -> bool:
        """Account for an insertion; returns True if ``item`` was sampled."""
        self._population += 1
        if self._rng.random() < self._p:
            self._sample.add(item)
            return True
        return False

    def delete(self, item: T) -> bool:
        """Account for a deletion; returns True if ``item`` left the sample."""
        if self._population <= 0:
            raise ValueError("delete from an empty population")
        self._population -= 1
        if item in self._sample:
            self._sample.discard(item)
            return True
        return False
