"""Weighted reservoir sampling (Efraimidis–Spirakis A-Res / A-ExpJ).

Graph streams frequently carry edge weights (interaction counts, tie
strength); sampling edges proportionally to weight concentrates the
reservoir on strong ties, which sharpens the sampled components around
the cohesive cores. This is the natural weighted extension of the
paper's building block (future-work territory for the original, a
supported substrate here).

Each item receives the key ``u^(1/w)`` with ``u ~ Uniform(0,1)``; the
``k`` items with the largest keys form a weight-proportional sample
(without replacement). ``WeightedReservoir`` implements the heap-based
A-Res form; ``offer`` also supports the exponential-jump (A-ExpJ)
skip mode that touches the RNG only O(k log(n/k)) times.
"""

from __future__ import annotations

import heapq
import math
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["WeightedReservoir"]

T = TypeVar("T")


class WeightedReservoir(Generic[T]):
    """Weight-proportional k-sample of an insert-only stream.

    >>> wr = WeightedReservoir(2, seed=0)
    >>> for item, weight in [("a", 1.0), ("b", 100.0), ("c", 100.0)]:
    ...     _ = wr.offer(item, weight)
    >>> set(wr.items()) == {"b", "c"}
    True
    """

    def __init__(self, capacity: int, seed: int | None = 0, use_jumps: bool = True) -> None:
        check_positive("capacity", capacity)
        self._capacity = capacity
        self._rng = make_rng(seed)
        # Min-heap of (key, tie_breaker, item); smallest key is evicted.
        self._heap: List[Tuple[float, int, T]] = []
        self._counter = 0
        self._use_jumps = use_jumps
        self._jump_budget: Optional[float] = None  # A-ExpJ accumulated weight
        self._stream_size = 0
        self._total_weight = 0.0

    @property
    def capacity(self) -> int:
        """Maximum sample size."""
        return self._capacity

    @property
    def stream_size(self) -> int:
        """Number of items offered."""
        return self._stream_size

    @property
    def total_weight(self) -> float:
        """Sum of offered weights."""
        return self._total_weight

    def __len__(self) -> int:
        return len(self._heap)

    def items(self) -> List[T]:
        """The current sample (copy; order not meaningful)."""
        return [item for _, _, item in self._heap]

    def items_with_keys(self) -> List[Tuple[T, float]]:
        """Sample items with their keys (diagnostics/tests)."""
        return [(item, key) for key, _, item in self._heap]

    def threshold(self) -> float:
        """The smallest key currently resident (0.0 while filling)."""
        if len(self._heap) < self._capacity:
            return 0.0
        return self._heap[0][0]

    def account_weight(self, weight: float) -> None:
        """Add ``weight`` to the stream totals without offering an item.

        Used by callers that coalesce re-occurrences of a resident item
        (the weighted clusterer) so ``total_weight`` stays faithful.
        """
        self._total_weight += weight

    def offer(self, item: T, weight: float) -> bool:
        """Offer ``item`` with ``weight > 0``; True if it entered the sample."""
        admitted, _ = self.offer_detailed(item, weight)
        return admitted

    def offer_detailed(self, item: T, weight: float) -> Tuple[bool, Optional[T]]:
        """Offer ``item``; returns (admitted, evicted_item_or_None).

        The detailed form lets callers that mirror the sample in another
        structure (the weighted clusterer's connectivity index) apply the
        eviction too.
        """
        if not weight > 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        self._stream_size += 1
        self._total_weight += weight
        self._counter += 1
        if len(self._heap) < self._capacity:
            key = self._rng.random() ** (1.0 / weight)
            heapq.heappush(self._heap, (key, self._counter, item))
            if len(self._heap) == self._capacity and self._use_jumps:
                self._draw_jump()
            return True, None
        if self._use_jumps:
            assert self._jump_budget is not None
            self._jump_budget -= weight
            if self._jump_budget > 0:
                return False, None
            # This item crosses the exponential jump: admit it with a key
            # drawn conditionally above the current threshold.
            low = self.threshold() ** weight
            key = (low + (1.0 - low) * self._rng.random()) ** (1.0 / weight)
            evicted = heapq.heapreplace(self._heap, (key, self._counter, item))[2]
            self._draw_jump()
            return True, evicted
        key = self._rng.random() ** (1.0 / weight)
        if key > self.threshold():
            evicted = heapq.heapreplace(self._heap, (key, self._counter, item))[2]
            return True, evicted
        return False, None

    def _draw_jump(self) -> None:
        """Draw the weight mass to skip before the next admission (A-ExpJ)."""
        threshold = self.threshold()
        if threshold <= 0.0:
            self._jump_budget = 0.0
            return
        self._jump_budget = math.log(self._rng.random()) / math.log(threshold)
