"""Stream-sampling substrates.

The paper's fundamental building block — *graph reservoir sampling* —
is assembled from these pieces:

* :class:`ReservoirR` — classic insert-only reservoir (Algorithm R).
* :class:`ReservoirL` — skip-based insert-only reservoir (Algorithm L),
  the RNG-light variant for high-rate streams.
* :class:`RandomPairingReservoir` — bounded-size uniform sample under
  insertions **and** deletions (random pairing), with a propose/commit
  protocol so the clusterer can veto constraint-violating admissions.
* :class:`BernoulliSampler` — fixed-rate p-sampling, the theoretical
  comparator (cut-preserving sparsification at fixed rate instead of
  fixed memory).
"""

from repro.sampling.algorithm_l import ReservoirL
from repro.sampling.algorithm_r import ReservoirR
from repro.sampling.bernoulli import BernoulliSampler
from repro.sampling.random_pairing import (
    NOT_ADMITTED,
    InsertProposal,
    RandomPairingReservoir,
)
from repro.sampling.weighted import WeightedReservoir

__all__ = [
    "NOT_ADMITTED",
    "BernoulliSampler",
    "InsertProposal",
    "RandomPairingReservoir",
    "ReservoirL",
    "ReservoirR",
    "WeightedReservoir",
]
