"""Algorithm R — classic insert-only reservoir sampling (Vitter 1985).

Maintains a uniform sample of ``k`` items from a stream of unknown
length: the ``t``-th item (1-based) is admitted with probability
``k / t`` and evicts a uniformly random resident.

This is the building block the paper's *graph reservoir sampling*
generalizes; the deletion-capable variant lives in
:mod:`repro.sampling.random_pairing`.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["ReservoirR"]

T = TypeVar("T")


class ReservoirR(Generic[T]):
    """Insert-only uniform reservoir of capacity ``k``.

    >>> r = ReservoirR(3, seed=0)
    >>> for x in range(100):
    ...     _ = r.offer(x)
    >>> len(r.items) == 3
    True
    """

    def __init__(self, capacity: int, seed: int | None = 0) -> None:
        check_positive("capacity", capacity)
        self._capacity = capacity
        self._rng = make_rng(seed)
        self._items: List[T] = []
        self._stream_size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of resident items."""
        return self._capacity

    @property
    def stream_size(self) -> int:
        """Number of items offered so far."""
        return self._stream_size

    @property
    def items(self) -> List[T]:
        """The current sample (copy; order is not meaningful)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, item: T) -> Optional[T]:
        """Offer ``item`` to the reservoir.

        Returns the evicted item if ``item`` replaced a resident, ``item``
        itself if it was rejected, or ``None`` if it was admitted into
        spare capacity.
        """
        self._stream_size += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            return None
        slot = self._rng.randrange(self._stream_size)
        if slot < self._capacity:
            evicted = self._items[slot]
            self._items[slot] = item
            return evicted
        return item
