"""Vectorized (numpy) primitives for the packed-int sampling hot path.

PR 5 put the reservoir into an ``array('Q')`` of packed ``(u32, u32)``
edge keys — a numpy-shaped representation that was still driven one
event at a time. This module supplies the array-at-a-time pieces the
``--kernel numpy`` batch kernel (:mod:`repro.core.batchkernel`) is built
from:

* :class:`NumpyPackedEdgeReservoir` — a :class:`PackedEdgeReservoir`
  whose random draws come from a ``numpy.random.Generator`` (PCG64) so
  that :meth:`~NumpyPackedEdgeReservoir.insert_many` can draw a whole
  batch of admission and eviction decisions in two vectorized calls.
* :func:`shard_ids` — splitmix64 shard routing over id arrays,
  bit-for-bit equal to ``repro.core.sharded._shard_of`` for int
  vertices (property-tested).
* :func:`edge_components` — connected components of a packed-key edge
  array via min-label propagation, used for batch-granular merge/split
  statistics.

Determinism contract
--------------------
The scalar kernel replays the Mersenne-Twister stream draw for draw, so
any batch split of a stream is *bit-identical* to per-event processing.
The numpy kernel deliberately trades that for throughput: a batched
``integers(0, pops)`` call consumes the PCG64 bitstream differently
than the same decisions drawn one at a time, so two numpy runs agree
bit-for-bit only when fed the same stream in the same batch sizes
(which the CLI and checkpoint resume guarantee), and agree with the
scalar kernel *in distribution* (chi-square-tested in
``tests/test_vectorized.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sampling.random_pairing import PackedEdgeReservoir

__all__ = [
    "NumpyPackedEdgeReservoir",
    "edge_components",
    "shard_ids",
]

_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)

# splitmix64 constants, shared with repro.core.sharded._combine_keys.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)


def shard_ids(key_u: np.ndarray, key_v: np.ndarray, num_shards: int) -> np.ndarray:
    """Vectorized ``sharded._shard_of`` for integer vertex keys.

    ``key_u``/``key_v`` are the *canonical-order* endpoint keys (ints
    key as themselves, exactly like ``_stable_vertex_key``); values are
    taken mod 2**64, which is what the scalar code's ``& _MASK64``
    does. Bit-for-bit equality with the scalar routing is asserted by
    ``tests/test_vectorized.py::test_shard_ids_matches_scalar``.
    """
    with np.errstate(over="ignore"):
        ku = np.asarray(key_u, dtype=np.int64).view(np.uint64)
        kv = np.asarray(key_v, dtype=np.int64).view(np.uint64)
        x = ku * _SM64_GAMMA + kv * _SM64_MIX1
        x = (x ^ (x >> np.uint64(30))) * _SM64_MIX1
        x = (x ^ (x >> np.uint64(27))) * _SM64_MIX2
        x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(num_shards)).astype(np.int64)


def edge_components(
    keys: np.ndarray,
) -> Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]:
    """Connected components of a packed-key edge set.

    Returns ``(num_components, vertices, labels)`` where ``vertices``
    is the sorted array of distinct endpoint ids and ``labels[i]`` is a
    component label for ``vertices[i]`` (the minimum compressed index
    reachable — stable for a given edge set). Empty input returns
    ``(0, None, None)``.

    Uses min-label propagation with pointer jumping: O(E) numpy work
    per round, O(log V) rounds on typical sampled subgraphs.
    """
    if keys.size == 0:
        return 0, None, None
    endpoints = np.empty(keys.size * 2, dtype=np.uint64)
    endpoints[0::2] = keys >> _SHIFT32
    endpoints[1::2] = keys & _MASK32
    vertices, inverse = np.unique(endpoints, return_inverse=True)
    eu = inverse[0::2]
    ev = inverse[1::2]
    labels = np.arange(vertices.size, dtype=np.int64)
    # Paranoia bound: min-label propagation converges in <= V rounds even
    # on a path graph; pointer jumping makes typical inputs O(log V).
    for _ in range(vertices.size + 1):
        before = labels.copy()
        np.minimum.at(labels, eu, labels[ev])
        np.minimum.at(labels, ev, labels[eu])
        labels = np.minimum(labels, labels[labels])
        if np.array_equal(labels, before):
            break
    return int(np.unique(labels).size), vertices, labels


class NumpyPackedEdgeReservoir(PackedEdgeReservoir):
    """Packed-edge random-pairing reservoir driven by a PCG64 generator.

    Storage, counters, and the random-pairing *logic* are exactly the
    base class's; every random draw instead comes from
    ``numpy.random.Generator`` so :meth:`insert_many` can vectorize the
    steady-state Algorithm R accept/evict decisions for a whole run of
    insertions. The per-item methods (``propose_insert``,
    ``insert_fast``) draw scalars from the *same* generator, so batched
    and per-event processing interleave on one coherent bitstream.

    ``get_state`` additionally records the PCG64 bitstream state under
    ``"np_rng_state"``; the inherited MT state is carried along unused
    so a state dict stays loadable by the scalar class.
    """

    __slots__ = ("_gen",)

    def __init__(self, capacity: int, seed: int | None = 0) -> None:
        super().__init__(capacity, seed=seed)
        self._gen = np.random.default_rng(seed)

    # -- scalar fallback draws (per-event path between batches) --------
    def propose_insert(self, item):  # type: ignore[override]
        from repro.sampling.random_pairing import InsertProposal

        self._population += 1
        pending = self._c_bad + self._c_good
        if pending > 0:
            if int(self._gen.integers(pending)) < self._c_bad:
                self._c_bad -= 1
                return InsertProposal(item, admit=True)
            self._c_good -= 1
            return InsertProposal(item, admit=False)
        if len(self._slots) < self._capacity:
            return InsertProposal(item, admit=True)
        if int(self._gen.integers(self._population)) < self._capacity:
            evicted = self._slots[int(self._gen.integers(len(self._slots)))]
            return InsertProposal(item, admit=True, evicted=evicted)
        return InsertProposal(item, admit=False)

    def insert_fast(self, item):  # type: ignore[override]
        from repro.sampling.random_pairing import NOT_ADMITTED

        self._population += 1
        pending = self._c_bad + self._c_good
        gen = self._gen
        if pending > 0:
            if int(gen.integers(pending)) < self._c_bad:
                self._c_bad -= 1
                self._add(item)
                return None
            self._c_good -= 1
            return NOT_ADMITTED
        slots = self._slots
        size = len(slots)
        if size < self._capacity:
            self._add(item)
            return None
        if int(gen.integers(self._population)) < self._capacity:
            evicted = slots[int(gen.integers(size))]
            self._discard(evicted)
            self._add(item)
            return evicted
        return NOT_ADMITTED

    # -- vectorized batch insertion ------------------------------------
    def insert_many(
        self,
        keys: np.ndarray,
        admitted: Optional[list] = None,
        evicted: Optional[list] = None,
    ) -> Tuple[list, list]:
        """Account for a run of insertions; returns (admitted, evicted).

        ``keys`` is a uint64 array of packed edge keys, in stream
        order. The random-pairing phases are walked exactly as the
        scalar code would — pairing drains pending deletions item by
        item, free slots fill, and only the steady-state stretch (the
        hot case: an insert-heavy stream with a full reservoir) draws
        its accept/reject and victim decisions as whole arrays.

        Results are appended to the ``admitted``/``evicted`` lists (or
        fresh ones) as plain ints, so a caller that passes its own
        lists still sees the partial outcome if a duplicate sample key
        raises mid-run (mirroring the scalar loop's finally-block
        settlement). An admitted key that is itself evicted later in
        the same run appears in both; the caller's net-diff reduction
        cancels the pair.
        """
        gen = self._gen
        capacity = self._capacity
        slots = self._slots
        slot_of = self._slot_of
        n = int(keys.size)
        if admitted is None:
            admitted = []
        if evicted is None:
            evicted = []
        i = 0
        # Phase 1: pairing — drain uncompensated deletions one draw at a
        # time (rare after a deletion burst; bounded by pending count).
        while i < n and (self._c_bad + self._c_good) > 0:
            self._population += 1
            key = int(keys[i])
            if int(gen.integers(self._c_bad + self._c_good)) < self._c_bad:
                self._c_bad -= 1
                self._add(key)
                admitted.append(key)
            else:
                self._c_good -= 1
            i += 1
        # Phase 2: free slots fill unconditionally.
        while i < n and len(slots) < capacity:
            self._population += 1
            key = int(keys[i])
            self._add(key)
            admitted.append(key)
            i += 1
        # Phase 3: steady state — vectorized Algorithm R. The k-th
        # remaining insert sees population p+k+1; accept with prob
        # capacity/(p+k+1), exactly the scalar acceptance probability.
        m = n - i
        if m > 0:
            pops = self._population + 1 + np.arange(m, dtype=np.int64)
            self._population += m
            draws = gen.integers(0, pops)
            accepted = np.nonzero(draws < capacity)[0]
            if accepted.size:
                victims = gen.integers(0, capacity, size=accepted.size)
                slot_view = np.frombuffer(slots, dtype=np.uint64)
                keys_tail = keys[i:]
                for pos, victim in zip(accepted.tolist(), victims.tolist()):
                    key = int(keys_tail[pos])
                    old = int(slot_view[victim])
                    # Overwrite the victim's slot in place. The scalar
                    # code swap-removes then appends; overwrite reaches
                    # the same uniform victim choice with one move (slot
                    # order is an internal detail that round-trips via
                    # get_state either way).
                    if key in slot_of:
                        raise ValueError(f"duplicate sample item {key!r}")
                    del slot_of[old]
                    slot_view[victim] = key
                    slot_of[key] = victim
                    evicted.append(old)
                    admitted.append(key)
        return admitted, evicted

    # -- persistence ---------------------------------------------------
    def get_state(self) -> dict:
        state = super().get_state()
        state["np_rng_state"] = self._gen.bit_generator.state
        return state

    @classmethod
    def from_state(cls, state: dict, *, id_limit: int | None = None):
        if "np_rng_state" not in state:
            raise ValueError(
                "corrupt sampler state: missing np_rng_state (this "
                "checkpoint was not written by the numpy kernel)"
            )
        sampler = super().from_state(state, id_limit=id_limit)
        sampler._gen.bit_generator.state = state["np_rng_state"]
        return sampler
