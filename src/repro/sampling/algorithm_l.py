"""Algorithm L — skip-based insert-only reservoir sampling (Li 1994).

Functionally identical to Algorithm R (uniform ``k``-sample of an
insert-only stream) but instead of drawing one random number per item it
draws geometric *skip counts*, touching the RNG only O(k log(n/k))
times. For the high-rate streams the paper targets this removes the
per-event RNG cost on the (overwhelmingly common) reject path.
"""

from __future__ import annotations

import math
from typing import Generic, List, Optional, TypeVar

from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["ReservoirL"]

T = TypeVar("T")


class ReservoirL(Generic[T]):
    """Insert-only uniform reservoir using geometric skips.

    Drop-in equivalent of :class:`repro.sampling.algorithm_r.ReservoirR`
    with an O(1)-amortized, RNG-light reject path.
    """

    def __init__(self, capacity: int, seed: int | None = 0) -> None:
        check_positive("capacity", capacity)
        self._capacity = capacity
        self._rng = make_rng(seed)
        self._items: List[T] = []
        self._stream_size = 0
        self._w = 1.0
        self._skip = -1  # items still to skip before the next admission

    @property
    def capacity(self) -> int:
        """Maximum number of resident items."""
        return self._capacity

    @property
    def stream_size(self) -> int:
        """Number of items offered so far."""
        return self._stream_size

    @property
    def items(self) -> List[T]:
        """The current sample (copy; order is not meaningful)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def _draw_skip(self) -> None:
        """Draw the gap until the next admitted item (Li's method)."""
        rng = self._rng
        self._w *= math.exp(math.log(rng.random()) / self._capacity)
        self._skip = int(math.floor(math.log(rng.random()) / math.log(1.0 - self._w)))

    def offer(self, item: T) -> Optional[T]:
        """Offer ``item``; same return contract as ``ReservoirR.offer``."""
        self._stream_size += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            if len(self._items) == self._capacity:
                self._draw_skip()
            return None
        if self._skip > 0:
            self._skip -= 1
            return item
        slot = self._rng.randrange(self._capacity)
        evicted = self._items[slot]
        self._items[slot] = item
        self._draw_skip()
        return evicted
