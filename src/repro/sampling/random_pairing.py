"""Random pairing — bounded-size reservoir under insertions *and* deletions.

Random pairing (Gemulla, Lehner, Haas; VLDB 2006) maintains a uniform
sample of the *current* population of a fully-dynamic stream without
ever consulting the population itself. It is the deletion-capable
reservoir the paper's graph reservoir sampling is built on.

Idea: a deletion is not compensated immediately. Instead two counters
record *uncompensated* deletions — ``c_bad`` for deletions that hit the
sample and ``c_good`` for deletions that missed it. A subsequent
insertion is *paired* with one of the uncompensated deletions: with
probability ``c_bad / (c_bad + c_good)`` the new item takes a vacated
sample slot (and ``c_bad`` decrements), otherwise it is skipped (and
``c_good`` decrements). When no deletions are pending the classic
Algorithm R step applies against the current population size.

Storage layout
--------------
The sample lives in a flat slot list plus an item→slot index dict, so
membership, admission, and eviction are all O(1) with no per-admission
allocation: eviction swap-removes the victim's slot and appends the
newcomer. Slot *order* is part of the observable state (the eviction
victim is picked by slot index), so it round-trips through
:meth:`get_state` exactly.

Two-phase insertions
--------------------
The streaming clusterer must be able to *veto* an admission (constraint
policies may forbid the merge an edge would cause). The sampler
therefore exposes a propose/commit protocol:

>>> rp = RandomPairingReservoir(2, seed=1)
>>> proposal = rp.propose_insert("a")
>>> proposal.admit
True
>>> rp.commit(proposal)          # or rp.abort(proposal) to veto
>>> rp.contains("a")
True

Counter bookkeeping happens at propose time (the pairing slot is
consumed whether or not the caller commits), so uniformity is preserved
exactly in the unconstrained case and degrades only by the vetoes the
caller actually issues.

For unconstrained callers on a hot path, :meth:`insert_fast` fuses
propose+commit without building an :class:`InsertProposal`, making the
exact same RNG calls in the exact same order — a stream driven through
it is bit-identical to one driven through the two-phase protocol.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, TypeVar, Union

from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = [
    "NOT_ADMITTED",
    "InsertProposal",
    "PackedEdgeReservoir",
    "RandomPairingReservoir",
]

T = TypeVar("T")


class _NotAdmitted:
    """Sentinel type for :data:`NOT_ADMITTED` (kept picklable/reprable)."""

    __slots__ = ()

    _instance: Optional["_NotAdmitted"] = None

    def __new__(cls) -> "_NotAdmitted":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NOT_ADMITTED"


#: Returned by :meth:`RandomPairingReservoir.insert_fast` when the item was
#: skipped. A distinct sentinel (not ``None``) because ``None`` means
#: "admitted into a free slot, nothing evicted".
NOT_ADMITTED = _NotAdmitted()


@dataclass(frozen=True, slots=True)
class InsertProposal(Generic[T]):
    """Outcome of :meth:`RandomPairingReservoir.propose_insert`.

    ``admit`` says whether the sampler wants the item in the sample;
    ``evicted`` names the resident that would make room (only in the
    steady-state Algorithm R case). Pass the proposal back to
    :meth:`~RandomPairingReservoir.commit` or
    :meth:`~RandomPairingReservoir.abort`.
    """

    item: T
    admit: bool
    evicted: Optional[T] = None


class RandomPairingReservoir(Generic[T]):
    """Uniform bounded-size sample of a stream with deletions."""

    __slots__ = (
        "_capacity",
        "_rng",
        "_slots",
        "_slot_of",
        "_population",
        "_c_bad",
        "_c_good",
    )

    def __init__(self, capacity: int, seed: int | None = 0) -> None:
        check_positive("capacity", capacity)
        self._capacity = capacity
        self._rng = make_rng(seed)
        self._slots: List[T] = []
        self._slot_of: Dict[T, int] = {}
        self._population = 0
        self._c_bad = 0  # uncompensated deletions that had been sampled
        self._c_good = 0  # uncompensated deletions that had not

    # ------------------------------------------------------------------
    # Slot-array primitives
    # ------------------------------------------------------------------
    def _add(self, item: T) -> None:
        if item in self._slot_of:
            raise ValueError(f"duplicate sample item {item!r}")
        self._slot_of[item] = len(self._slots)
        self._slots.append(item)

    def _discard(self, item: T) -> bool:
        pos = self._slot_of.pop(item, None)
        if pos is None:
            return False
        slots = self._slots
        last = slots.pop()
        if pos < len(slots):  # the removed item was not the tail
            slots[pos] = last
            self._slot_of[last] = pos
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum sample size."""
        return self._capacity

    @property
    def population(self) -> int:
        """Current population size implied by the insert/delete history."""
        return self._population

    @property
    def pending_deletions(self) -> int:
        """Uncompensated deletions (``c_bad + c_good``)."""
        return self._c_bad + self._c_good

    @property
    def sample_size(self) -> int:
        """Current number of sampled items."""
        return len(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def contains(self, item: T) -> bool:
        """True if ``item`` is currently in the sample."""
        return item in self._slot_of

    def __contains__(self, item: T) -> bool:
        return item in self._slot_of

    def __iter__(self) -> Iterator[T]:
        return iter(self._slots)

    def items(self) -> List[T]:
        """The current sample as a list (copy, in slot order)."""
        return list(self._slots)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete serializable state of the sampler.

        The sample is exported *in internal slot order* — eviction picks
        a victim by slot index, so order (not just membership) must
        survive a round-trip for replay determinism. The RNG state is
        exported exactly via ``random.Random.getstate``.
        """
        return {
            "capacity": self._capacity,
            "items": list(self._slots),
            "population": self._population,
            "c_bad": self._c_bad,
            "c_good": self._c_good,
            "rng_state": self._rng.getstate(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RandomPairingReservoir[T]":
        """Reconstruct a sampler from :meth:`get_state` output.

        The restored sampler makes bit-identical future decisions: the
        RNG state, counters, and sample slot order are all exact.

        The state is validated before use — an oversized or duplicated
        sample, or negative counters, can never come from
        :meth:`get_state` and would silently corrupt every later
        sampling decision, so a structurally impossible state raises
        :class:`ValueError` here (the persistence layer surfaces it as a
        :class:`~repro.errors.CheckpointError`).
        """
        capacity = state["capacity"]
        items = state["items"]
        if len(items) > capacity:
            raise ValueError(
                f"corrupt sampler state: {len(items)} sample items exceed "
                f"capacity {capacity}"
            )
        for field in ("population", "c_bad", "c_good"):
            if state[field] < 0:
                raise ValueError(
                    f"corrupt sampler state: negative {field} ({state[field]})"
                )
        sampler: "RandomPairingReservoir[T]" = cls(capacity, seed=0)
        sampler._rng.setstate(state["rng_state"])
        for item in items:
            if item in sampler._slot_of:
                raise ValueError(
                    f"corrupt sampler state: duplicate sample item {item!r}"
                )
            sampler._add(item)
        sampler._population = state["population"]
        sampler._c_bad = state["c_bad"]
        sampler._c_good = state["c_good"]
        return sampler

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def propose_insert(self, item: T) -> InsertProposal[T]:
        """Account for an insertion and propose a sample action.

        Counter updates happen here; the sample itself is only modified
        by a subsequent :meth:`commit`.
        """
        self._population += 1
        pending = self._c_bad + self._c_good
        if pending > 0:
            # Pair this insertion with a random uncompensated deletion.
            if self._rng.randrange(pending) < self._c_bad:
                self._c_bad -= 1
                return InsertProposal(item, admit=True)
            self._c_good -= 1
            return InsertProposal(item, admit=False)
        if len(self._slots) < self._capacity:
            return InsertProposal(item, admit=True)
        # Steady state: classic Algorithm R against the live population.
        if self._rng.randrange(self._population) < self._capacity:
            evicted = self._slots[self._rng.randrange(len(self._slots))]
            return InsertProposal(item, admit=True, evicted=evicted)
        return InsertProposal(item, admit=False)

    def commit(self, proposal: InsertProposal[T]) -> None:
        """Apply an admitting proposal to the sample."""
        if not proposal.admit:
            raise ValueError("cannot commit a non-admitting proposal")
        if proposal.evicted is not None:
            self._discard(proposal.evicted)
        self._add(proposal.item)

    def abort(self, proposal: InsertProposal[T]) -> None:
        """Veto a proposal; the sample is left untouched.

        Counters were already settled at propose time, so this is a
        recorded no-op kept for call-site symmetry and future auditing.
        """

    def insert(self, item: T) -> InsertProposal[T]:
        """Convenience: propose and immediately commit if admitting."""
        proposal = self.propose_insert(item)
        if proposal.admit:
            self.commit(proposal)
        return proposal

    def insert_fast(self, item: T) -> Union[T, "_NotAdmitted", None]:
        """Fused propose+commit for unconstrained hot paths.

        Returns :data:`NOT_ADMITTED` when the item was skipped, the
        evicted resident when admission displaced one, or ``None`` when
        a free (or pairing-vacated) slot absorbed the item. Draws from
        the RNG exactly as :meth:`propose_insert`/:meth:`commit` would,
        so the sampler evolves bit-identically either way.
        """
        self._population += 1
        pending = self._c_bad + self._c_good
        rng = self._rng
        if pending > 0:
            if rng.randrange(pending) < self._c_bad:
                self._c_bad -= 1
                self._add(item)
                return None
            self._c_good -= 1
            return NOT_ADMITTED
        slots = self._slots
        size = len(slots)
        if size < self._capacity:
            self._add(item)
            return None
        if rng.randrange(self._population) < self._capacity:
            evicted = slots[rng.randrange(size)]
            self._discard(evicted)
            self._add(item)
            return evicted
        return NOT_ADMITTED

    def delete(self, item: T) -> bool:
        """Account for a deletion; returns True if ``item`` left the sample."""
        if self._population <= 0:
            raise ValueError("delete from an empty population")
        self._population -= 1
        if self._discard(item):
            self._c_bad += 1
            return True
        self._c_good += 1
        return False


class PackedEdgeReservoir(RandomPairingReservoir[int]):
    """Random-pairing reservoir over packed ``(u32, u32)`` edge keys.

    Items are single non-negative ints — ``(min_id << 32) | max_id`` for
    an edge between two interned vertex ids
    (:class:`~repro.graph.intern.VertexInterner`) — so the slot array is
    a compact ``array('Q')`` (8 bytes per sampled edge instead of a
    56-byte tuple plus two object references) and the item→slot index
    dict hashes machine ints. Sampling decisions, RNG draws, and the
    slot-order state contract are exactly the base class's; only the
    slot storage differs.
    """

    __slots__ = ()

    def __init__(self, capacity: int, seed: int | None = 0) -> None:
        super().__init__(capacity, seed=seed)
        self._slots = array("Q")

    @classmethod
    def from_state(
        cls, state: dict, *, id_limit: int | None = None
    ) -> "PackedEdgeReservoir":
        """Reconstruct a packed reservoir, validating the packed keys.

        Beyond the base-class structural checks, every item must be a
        non-negative int that fits the ``(u32 << 32) | u32`` packing,
        and — when ``id_limit`` is given (the interner's table size) —
        both endpoint ids must fall inside the interner's id range: a
        key referencing an id the interner never assigned cannot come
        from :meth:`get_state` and would crash (or silently corrupt)
        every later label lookup.
        """
        for item in state["items"]:
            if type(item) is not int or item < 0 or item > 0xFFFFFFFFFFFFFFFF:
                raise ValueError(
                    f"corrupt sampler state: packed edge key {item!r} is "
                    "not a u64"
                )
            if id_limit is not None:
                hi = item >> 32
                lo = item & 0xFFFFFFFF
                if hi >= id_limit or lo >= id_limit:
                    raise ValueError(
                        f"corrupt sampler state: packed edge key {item:#x} "
                        f"references vertex id {max(hi, lo)} outside the "
                        f"intern table (size {id_limit})"
                    )
        return super().from_state(state)
