"""Benchmark harness: timing, memory, result records, table rendering."""

from repro.bench.harness import (
    ExperimentResult,
    load_results,
    repeat,
    save_results,
    sweep,
)
from repro.bench.memory import MemoryMeasurement, measure_allocations
from repro.bench.report import consolidated_report, discover_experiments, headline_summary
from repro.bench.tables import format_value, render_series, render_table
from repro.bench.throughput import (
    EventConsumer,
    ThroughputResult,
    measure_throughput,
)

__all__ = [
    "EventConsumer",
    "ExperimentResult",
    "MemoryMeasurement",
    "consolidated_report",
    "discover_experiments",
    "headline_summary",
    "ThroughputResult",
    "format_value",
    "load_results",
    "measure_allocations",
    "measure_throughput",
    "render_series",
    "render_table",
    "repeat",
    "save_results",
    "sweep",
]
