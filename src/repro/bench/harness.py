"""Experiment harness: parameter sweeps, repetitions, result records.

Each benchmark under ``benchmarks/`` builds its rows with this harness
and renders them with :mod:`repro.bench.tables`, so every experiment's
output is a self-describing record that EXPERIMENTS.md can quote
verbatim.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Sequence

__all__ = ["ExperimentResult", "repeat", "sweep", "save_results", "load_results"]


@dataclass
class ExperimentResult:
    """One experiment's rows plus identifying metadata."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable view."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "rows": self.rows,
            "metadata": self.metadata,
        }


def repeat(
    fn: Callable[[int], float], repetitions: int, seeds: Sequence[int] | None = None
) -> Dict[str, float]:
    """Run ``fn(seed)`` several times; returns mean/stdev/min/max.

    ``fn`` receives the repetition's seed and returns a scalar.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    seed_list = list(seeds) if seeds is not None else list(range(repetitions))
    if len(seed_list) < repetitions:
        raise ValueError("not enough seeds for the requested repetitions")
    values = [float(fn(seed_list[i])) for i in range(repetitions)]
    return {
        "mean": statistics.fmean(values),
        "stdev": statistics.stdev(values) if len(values) > 1 else 0.0,
        "min": min(values),
        "max": max(values),
    }


def sweep(
    parameter_values: Iterable[object],
    fn: Callable[[object], Dict[str, object]],
) -> List[Dict[str, object]]:
    """Evaluate ``fn`` at each parameter value; collect the row dicts."""
    return [fn(value) for value in parameter_values]


def save_results(result: ExperimentResult, directory: str | Path = "bench_results") -> Path:
    """Persist an experiment record as JSON; returns the file path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{result.experiment}.json"
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(result.as_dict(), handle, indent=2, default=str)
    return target


def load_results(experiment: str, directory: str | Path = "bench_results") -> ExperimentResult:
    """Load a previously saved experiment record."""
    target = Path(directory) / f"{experiment}.json"
    with open(target, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return ExperimentResult(
        experiment=payload["experiment"],
        description=payload["description"],
        rows=payload["rows"],
        metadata=payload.get("metadata", {}),
    )
