"""Throughput measurement helpers.

The paper's headline number is *update throughput* — stream events
processed per second — for the incremental clusterer versus offline
algorithms that rebuild. These helpers time any consumer with an
``apply(event)`` method over a prepared event list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.streams.events import EdgeEvent

__all__ = ["EventConsumer", "ThroughputResult", "measure_throughput"]


class EventConsumer(Protocol):
    """Anything that ingests stream events one at a time."""

    def apply(self, event: EdgeEvent) -> None: ...


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput run."""

    events: int
    seconds: float

    @property
    def events_per_second(self) -> float:
        """Throughput; infinity is never returned (min timer resolution)."""
        return self.events / max(self.seconds, 1e-9)

    @property
    def microseconds_per_event(self) -> float:
        """Mean per-event latency in µs."""
        if self.events == 0:
            return 0.0
        return 1e6 * self.seconds / self.events


def measure_throughput(
    consumer: EventConsumer, events: Sequence[EdgeEvent]
) -> ThroughputResult:
    """Feed ``events`` to ``consumer`` and time the whole ingestion."""
    apply = consumer.apply
    start = time.perf_counter()
    for event in events:
        apply(event)
    elapsed = time.perf_counter() - start
    return ThroughputResult(events=len(events), seconds=elapsed)
