"""Fixed-width table rendering for benchmark output.

Every experiment harness prints its rows through :func:`render_table`
so EXPERIMENTS.md and terminal output share one format.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly short formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]], title: str | None = None) -> str:
    """Render dict-rows as an aligned text table (keys of first row = columns)."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    x_name: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_name: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return render_table(rows, title=title)
