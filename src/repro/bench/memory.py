"""Memory-footprint measurement (experiment E10).

Uses ``tracemalloc`` to attribute allocations to the construction of a
clusterer's state, which is what the paper's memory argument is about:
the reservoir (plus its connectivity index) is the *only* state the
lean-mode algorithm keeps, and it is O(reservoir) rather than O(graph).
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

__all__ = ["MemoryMeasurement", "measure_allocations"]

T = TypeVar("T")


@dataclass(frozen=True)
class MemoryMeasurement:
    """Bytes allocated (net and peak) while running a callable."""

    net_bytes: int
    peak_bytes: int

    @property
    def net_mib(self) -> float:
        """Net allocation in MiB."""
        return self.net_bytes / (1024 * 1024)

    @property
    def peak_mib(self) -> float:
        """Peak allocation in MiB."""
        return self.peak_bytes / (1024 * 1024)


def measure_allocations(build: Callable[[], T]) -> Tuple[T, MemoryMeasurement]:
    """Run ``build`` under tracemalloc; returns (result, measurement).

    The returned *net* figure is the live allocation delta — i.e. the
    retained footprint of whatever ``build`` constructed and returned.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    result = build()
    after, peak = tracemalloc.get_traced_memory()
    if not was_tracing:
        tracemalloc.stop()
    return result, MemoryMeasurement(
        net_bytes=max(0, after - before), peak_bytes=max(0, peak - before)
    )
