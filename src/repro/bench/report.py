"""Consolidated experiment reporting.

Reads the per-experiment JSON records that the benchmarks write under
``bench_results/`` and renders one consolidated text report — the
machine-checkable source for EXPERIMENTS.md. Also usable as a module:

    python -m repro.bench.report [results_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.harness import ExperimentResult, load_results
from repro.bench.tables import render_table

__all__ = ["discover_experiments", "consolidated_report", "headline_summary"]


def discover_experiments(directory: str | Path = "bench_results") -> List[str]:
    """Names of all experiment records present in ``directory``, sorted."""
    path = Path(directory)
    if not path.is_dir():
        return []
    return sorted(p.stem for p in path.glob("*.json"))


def consolidated_report(directory: str | Path = "bench_results") -> str:
    """Render every stored experiment as one text report."""
    names = discover_experiments(directory)
    if not names:
        return f"no experiment records found under {directory!s}"
    sections: List[str] = []
    for name in names:
        result = load_results(name, directory)
        sections.append(render_table(result.rows, title=f"{name}: {result.description}"))
        if result.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(result.metadata.items()))
            sections.append(f"  metadata: {meta}")
    return "\n\n".join(sections)


def headline_summary(directory: str | Path = "bench_results") -> Dict[str, object]:
    """Extract the headline numbers the README quotes.

    Returns whichever of the following are available:
    ``throughput_gap`` (E4), ``best_constrained_nmi`` (E8),
    ``shard_balance_8`` (E7), ``streaming_events_per_sec`` (E4).
    Missing experiments are simply omitted — callers render what exists.
    """
    summary: Dict[str, object] = {}
    e4 = _try_load("e4_throughput", directory)
    if e4 is not None and e4.rows:
        summary["streaming_events_per_sec"] = e4.rows[0].get("events_per_sec")
        gap = e4.metadata.get("headline_gap")
        if gap is not None:
            summary["throughput_gap"] = round(float(gap))
    e8 = _try_load("e8_constraints", directory)
    if e8 is not None:
        nmis = [row.get("nmi") for row in e8.rows if isinstance(row.get("nmi"), (int, float))]
        if nmis:
            summary["best_constrained_nmi"] = max(nmis)
    e7 = _try_load("e7_parallel", directory)
    if e7 is not None:
        for row in e7.rows:
            if row.get("shards") == 8:
                summary["shard_balance_8"] = row.get("speedup_on_w_cores")
    return summary


def _try_load(name: str, directory: str | Path) -> Optional[ExperimentResult]:
    try:
        return load_results(name, directory)
    except (FileNotFoundError, KeyError, ValueError):
        return None


def main(argv: List[str] | None = None) -> int:
    """Module entry point: print the consolidated report."""
    args = list(sys.argv[1:] if argv is None else argv)
    directory = args[0] if args else "bench_results"
    print(consolidated_report(directory))
    summary = headline_summary(directory)
    if summary:
        print()
        print("headlines: " + ", ".join(f"{k}={v}" for k, v in sorted(summary.items())))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
