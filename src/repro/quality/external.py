"""External (ground-truth) clustering quality measures.

Used on synthetic benchmarks where the planted communities are known:

* pairwise precision / recall / F1 — over same-cluster vertex pairs,
* NMI — normalized mutual information,
* ARI — adjusted Rand index,
* purity — majority-label accuracy.

All measures are computed over the intersection of the two partitions'
vertex sets, so a clusterer that has not yet seen a vertex is not
penalized for it (callers can check coverage separately).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.quality.partition import Partition

__all__ = [
    "PairCounts",
    "pair_counts",
    "pairwise_precision_recall_f1",
    "pairwise_f1",
    "nmi",
    "ari",
    "purity",
]


@dataclass(frozen=True)
class PairCounts:
    """Confusion counts over unordered vertex pairs."""

    together_both: int  # same cluster in both partitions (true positive)
    together_predicted: int  # same cluster in `predicted`
    together_truth: int  # same cluster in `truth`
    total_pairs: int


def _contingency(
    predicted: Partition, truth: Partition
) -> Tuple[Dict[Tuple[object, object], int], Dict[object, int], Dict[object, int], int]:
    common = [v for v in predicted.vertices() if v in truth]
    joint: Dict[Tuple[object, object], int] = {}
    left: Dict[object, int] = {}
    right: Dict[object, int] = {}
    for v in common:
        lp = predicted.label_of(v)
        lt = truth.label_of(v)
        joint[(lp, lt)] = joint.get((lp, lt), 0) + 1
        left[lp] = left.get(lp, 0) + 1
        right[lt] = right.get(lt, 0) + 1
    return joint, left, right, len(common)


def pair_counts(predicted: Partition, truth: Partition) -> PairCounts:
    """Pair-level confusion counts between two partitions."""
    joint, left, right, n = _contingency(predicted, truth)
    tp = sum(c * (c - 1) // 2 for c in joint.values())
    pred_pairs = sum(c * (c - 1) // 2 for c in left.values())
    truth_pairs = sum(c * (c - 1) // 2 for c in right.values())
    return PairCounts(
        together_both=tp,
        together_predicted=pred_pairs,
        together_truth=truth_pairs,
        total_pairs=n * (n - 1) // 2,
    )


def pairwise_precision_recall_f1(
    predicted: Partition, truth: Partition
) -> Tuple[float, float, float]:
    """(precision, recall, F1) over same-cluster pairs.

    Degenerate cases follow the usual conventions: precision is 1.0 when
    the prediction puts no pair together (nothing asserted, nothing
    wrong), recall is 1.0 when the truth has no pair together.
    """
    counts = pair_counts(predicted, truth)
    precision = (
        counts.together_both / counts.together_predicted
        if counts.together_predicted
        else 1.0
    )
    recall = (
        counts.together_both / counts.together_truth if counts.together_truth else 1.0
    )
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def pairwise_f1(predicted: Partition, truth: Partition) -> float:
    """F1 over same-cluster pairs (harmonic mean of pair P and R)."""
    return pairwise_precision_recall_f1(predicted, truth)[2]


def nmi(predicted: Partition, truth: Partition) -> float:
    """Normalized mutual information, arithmetic-mean normalization.

    Returns 1.0 for identical groupings, ~0 for independent ones. By
    convention two all-singleton (or two one-cluster) partitions with
    zero entropy on both sides score 1.0.
    """
    joint, left, right, n = _contingency(predicted, truth)
    if n == 0:
        return 0.0
    h_left = -sum((c / n) * math.log(c / n) for c in left.values())
    h_right = -sum((c / n) * math.log(c / n) for c in right.values())
    mutual = 0.0
    for (lp, lt), c in joint.items():
        p_joint = c / n
        mutual += p_joint * math.log(p_joint / ((left[lp] / n) * (right[lt] / n)))
    if h_left == 0.0 and h_right == 0.0:
        return 1.0
    denominator = (h_left + h_right) / 2
    if denominator == 0.0:
        return 0.0
    return max(0.0, mutual / denominator)


def ari(predicted: Partition, truth: Partition) -> float:
    """Adjusted Rand index (1 = identical, ~0 = random agreement)."""
    joint, left, right, n = _contingency(predicted, truth)
    if n < 2:
        return 1.0
    sum_joint = sum(c * (c - 1) // 2 for c in joint.values())
    sum_left = sum(c * (c - 1) // 2 for c in left.values())
    sum_right = sum(c * (c - 1) // 2 for c in right.values())
    total = n * (n - 1) // 2
    expected = sum_left * sum_right / total
    maximum = (sum_left + sum_right) / 2
    if maximum == expected:
        return 1.0
    return (sum_joint - expected) / (maximum - expected)


def purity(predicted: Partition, truth: Partition) -> float:
    """Fraction of vertices in the majority truth-label of their cluster."""
    joint, left, _, n = _contingency(predicted, truth)
    if n == 0:
        return 0.0
    best: Dict[object, int] = {}
    for (lp, _), c in joint.items():
        if c > best.get(lp, 0):
            best[lp] = c
    return sum(best.values()) / n
