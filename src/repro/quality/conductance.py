"""Cut-based cluster quality: conductance, coverage, internal density.

For a cluster ``S`` with boundary cut ``c(S)`` (edges leaving ``S``) and
volume ``vol(S)`` (sum of degrees inside ``S``):

    φ(S) = c(S) / min(vol(S), vol(V \\ S))

Lower conductance means a better-separated cluster. A *clustering* is
scored by the average (or maximum) conductance over its non-trivial
clusters — the standard objective streaming/partitioning papers of the
era report alongside modularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from typing import TYPE_CHECKING

from repro.quality.partition import Partition

if TYPE_CHECKING:  # avoid a circular import; only needed for type hints
    from repro.graph.adjacency import AdjacencyGraph

__all__ = [
    "ClusterCutStats",
    "cluster_cut_stats",
    "conductances",
    "average_conductance",
    "max_conductance",
    "coverage",
    "internal_densities",
    "normalized_cut",
]


@dataclass(frozen=True)
class ClusterCutStats:
    """Raw cut quantities for one cluster."""

    label: object
    size: int
    volume: int  # sum of degrees of members
    cut: int  # edges with exactly one endpoint inside
    internal: int  # edges with both endpoints inside

    @property
    def conductance(self) -> float:
        """φ(S); 0 for clusters with no volume on either side."""
        denominator = min(self.volume, self.complement_volume)
        if denominator == 0:
            return 0.0
        return self.cut / denominator

    @property
    def complement_volume(self) -> int:
        """vol(V \\ S) = 2m − vol(S); filled in by the caller."""
        return self._complement_volume

    # Set post-construction by cluster_cut_stats (dataclass is frozen for
    # the user-facing fields; this backdoor keeps construction simple).
    _complement_volume: int = 0


def cluster_cut_stats(graph: "AdjacencyGraph", partition: Partition) -> List[ClusterCutStats]:
    """Per-cluster size/volume/cut/internal counts in one edge pass."""
    volume: Dict[object, int] = {}
    cut: Dict[object, int] = {}
    internal: Dict[object, int] = {}
    size: Dict[object, int] = {}
    for v in graph.vertices():
        label = partition.get(v, ("_singleton", v))
        size[label] = size.get(label, 0) + 1
        volume[label] = volume.get(label, 0) + graph.degree(v)
        cut.setdefault(label, 0)
        internal.setdefault(label, 0)
    for u, v in graph.edges():
        lu = partition.get(u, ("_singleton", u))
        lv = partition.get(v, ("_singleton", v))
        if lu == lv:
            internal[lu] += 1
        else:
            cut[lu] += 1
            cut[lv] += 1
    total_volume = 2 * graph.num_edges
    return [
        ClusterCutStats(
            label=label,
            size=size[label],
            volume=volume[label],
            cut=cut[label],
            internal=internal[label],
            _complement_volume=total_volume - volume[label],
        )
        for label in size
    ]


def conductances(
    graph: "AdjacencyGraph", partition: Partition, min_size: int = 2
) -> List[float]:
    """Conductance of every cluster with at least ``min_size`` vertices."""
    return [
        stats.conductance
        for stats in cluster_cut_stats(graph, partition)
        if stats.size >= min_size
    ]


def average_conductance(
    graph: "AdjacencyGraph", partition: Partition, min_size: int = 2
) -> float:
    """Mean conductance over non-trivial clusters (0 if there are none)."""
    values = conductances(graph, partition, min_size)
    if not values:
        return 0.0
    return sum(values) / len(values)


def max_conductance(
    graph: "AdjacencyGraph", partition: Partition, min_size: int = 2
) -> float:
    """Worst (largest) conductance over non-trivial clusters."""
    values = conductances(graph, partition, min_size)
    if not values:
        return 0.0
    return max(values)


def coverage(graph: "AdjacencyGraph", partition: Partition) -> float:
    """Fraction of edges that are intra-cluster (1.0 for one big cluster)."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    intra = sum(stats.internal for stats in cluster_cut_stats(graph, partition))
    return intra / m


def internal_densities(
    graph: "AdjacencyGraph", partition: Partition, min_size: int = 2
) -> List[float]:
    """Internal edge density of each non-trivial cluster."""
    result = []
    for stats in cluster_cut_stats(graph, partition):
        if stats.size < min_size:
            continue
        possible = stats.size * (stats.size - 1) / 2
        result.append(stats.internal / possible if possible else 0.0)
    return result


def normalized_cut(graph: "AdjacencyGraph", partition: Partition) -> float:
    """Σ_S cut(S)/vol(S) — the k-way normalized-cut objective (lower is better)."""
    total = 0.0
    for stats in cluster_cut_stats(graph, partition):
        if stats.volume > 0:
            total += stats.cut / stats.volume
    return total
