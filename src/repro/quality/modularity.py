"""Newman modularity of a partition.

Modularity compares the fraction of intra-cluster edges against the
expectation under a degree-preserving random rewiring:

    Q = Σ_c [ e_c / m  −  (d_c / 2m)² ]

where ``e_c`` is the number of edges inside cluster ``c``, ``d_c`` the
total degree of its vertices, and ``m`` the edge count. Q ∈ [−1/2, 1);
higher is better, with ≳0.3 usually read as clear community structure.
"""

from __future__ import annotations

from typing import Dict

from typing import TYPE_CHECKING

from repro.quality.partition import Partition

if TYPE_CHECKING:  # avoid a circular import; only needed for type hints
    from repro.graph.adjacency import AdjacencyGraph

__all__ = ["modularity"]


def modularity(graph: "AdjacencyGraph", partition: Partition) -> float:
    """Modularity Q of ``partition`` on ``graph``.

    Vertices of the graph missing from the partition are treated as
    singleton clusters (they contribute only their degree term). An
    empty graph has modularity 0 by convention.
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    internal: Dict[object, int] = {}
    degree_sum: Dict[object, float] = {}
    for v in graph.vertices():
        label = partition.get(v, ("_singleton", v))
        degree_sum[label] = degree_sum.get(label, 0.0) + graph.degree(v)
    for u, v in graph.edges():
        lu = partition.get(u, ("_singleton", u))
        lv = partition.get(v, ("_singleton", v))
        if lu == lv:
            internal[lu] = internal.get(lu, 0) + 1
    q = 0.0
    two_m = 2.0 * m
    for label, degrees in degree_sum.items():
        e_c = internal.get(label, 0)
        q += e_c / m - (degrees / two_m) ** 2
    return q
