"""Information-theoretic partition distances.

Complements :mod:`repro.quality.external`'s similarity scores with true
*metrics* (symmetric, triangle inequality):

* variation of information VI(X, Y) = H(X|Y) + H(Y|X) — 0 for identical
  groupings, up to log(n) for maximally different ones;
* its normalization by log(n) for cross-size comparability;
* split-join distance (van Dongen 2000) — the vertex-move count
  interpretation MCL's author introduced.

Used by the tracker/stability analyses: a drift of VI ≤ ε per snapshot
is the "clustering is stable" criterion deployments alarm on.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.quality.partition import Partition

__all__ = ["variation_of_information", "normalized_vi", "split_join_distance"]


def _joint_counts(
    a: Partition, b: Partition
) -> Tuple[Dict[Tuple[object, object], int], Dict[object, int], Dict[object, int], int]:
    common = [v for v in a.vertices() if v in b]
    joint: Dict[Tuple[object, object], int] = {}
    left: Dict[object, int] = {}
    right: Dict[object, int] = {}
    for v in common:
        la, lb = a.label_of(v), b.label_of(v)
        joint[(la, lb)] = joint.get((la, lb), 0) + 1
        left[la] = left.get(la, 0) + 1
        right[lb] = right.get(lb, 0) + 1
    return joint, left, right, len(common)


def variation_of_information(a: Partition, b: Partition) -> float:
    """VI(a, b) in nats over the common vertex set (0 = identical)."""
    joint, left, right, n = _joint_counts(a, b)
    if n == 0:
        return 0.0
    vi = 0.0
    for (la, lb), count in joint.items():
        p_joint = count / n
        p_left = left[la] / n
        p_right = right[lb] / n
        vi -= p_joint * (
            math.log(p_joint / p_left) + math.log(p_joint / p_right)
        )
    return max(0.0, vi)


def normalized_vi(a: Partition, b: Partition) -> float:
    """VI normalized by log(n) into [0, 1] (0 = identical)."""
    _, _, _, n = _joint_counts(a, b)
    if n <= 1:
        return 0.0
    return variation_of_information(a, b) / math.log(n)


def split_join_distance(a: Partition, b: Partition) -> int:
    """van Dongen's split-join distance over the common vertex set.

    ``d(a, b) = 2n − Σ_A max_B |A∩B| − Σ_B max_A |A∩B|``; the number of
    vertex moves needed to project each partition onto the other.
    0 = identical; bounded by 2(n − 1).
    """
    joint, left, right, n = _joint_counts(a, b)
    if n == 0:
        return 0
    best_for_left: Dict[object, int] = {}
    best_for_right: Dict[object, int] = {}
    for (la, lb), count in joint.items():
        if count > best_for_left.get(la, 0):
            best_for_left[la] = count
        if count > best_for_right.get(lb, 0):
            best_for_right[lb] = count
    return 2 * n - sum(best_for_left.values()) - sum(best_for_right.values())
