"""Immutable vertex partitions (clusterings).

:class:`Partition` is the common currency between the streaming
clusterer, the offline baselines, and the quality metrics: a frozen
assignment of vertices to cluster labels with convenient views.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set

from repro.streams.events import Vertex

__all__ = ["Partition"]


class Partition:
    """An immutable clustering of a vertex set.

    Construct from a label mapping or via :meth:`from_clusters`. Labels
    are arbitrary hashables; :meth:`normalized` renames them to dense
    integers ordered by decreasing cluster size (deterministic).

    >>> p = Partition.from_clusters([{1, 2, 3}, {4}])
    >>> p.num_clusters
    2
    >>> p.same_cluster(1, 3)
    True
    """

    __slots__ = ("_label", "_clusters", "_sizes", "_ordered")

    def __init__(self, labels: Mapping[Vertex, object]) -> None:
        self._label: Dict[Vertex, object] = dict(labels)
        clusters: Dict[object, Set[Vertex]] = {}
        for vertex, label in self._label.items():
            clusters.setdefault(label, set()).add(vertex)
        self._clusters: Dict[object, FrozenSet[Vertex]] = {
            label: frozenset(members) for label, members in clusters.items()
        }
        self._sizes: Dict[object, int] = {
            label: len(members) for label, members in self._clusters.items()
        }
        self._ordered: List[FrozenSet[Vertex]] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_clusters(cls, clusters: Iterable[Iterable[Vertex]]) -> "Partition":
        """Build a partition from disjoint vertex groups.

        Raises ``ValueError`` if a vertex appears in two groups.
        """
        labels: Dict[Vertex, object] = {}
        for index, members in enumerate(clusters):
            for vertex in members:
                if vertex in labels:
                    raise ValueError(f"vertex {vertex!r} appears in multiple clusters")
                labels[vertex] = index
        return cls(labels)

    @classmethod
    def singletons(cls, vertices: Iterable[Vertex]) -> "Partition":
        """Every vertex in its own cluster."""
        return cls({v: i for i, v in enumerate(vertices)})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def label_of(self, v: Vertex) -> object:
        """Cluster label of ``v``; raises ``KeyError`` for unknown vertices."""
        return self._label[v]

    def get(self, v: Vertex, default: object = None) -> object:
        """Cluster label of ``v`` or ``default``."""
        return self._label.get(v, default)

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` carry the same label."""
        return self._label[u] == self._label[v]

    def members(self, label: object) -> FrozenSet[Vertex]:
        """Vertices carrying ``label``."""
        return self._clusters[label]

    def clusters(self) -> List[FrozenSet[Vertex]]:
        """All clusters, largest first (ties broken deterministically).

        The ordering is memoized — the partition is immutable and both
        metrics and output writers call this repeatedly; a fresh list is
        returned each time so callers may mutate it.
        """
        if self._ordered is None:
            self._ordered = sorted(
                self._clusters.values(),
                key=lambda members: (-len(members), sorted(map(repr, members))),
            )
        return list(self._ordered)

    def labels(self) -> Dict[Vertex, object]:
        """Vertex → label mapping (copy)."""
        return dict(self._label)

    def sizes(self) -> List[int]:
        """Cluster sizes, descending."""
        return sorted(self._sizes.values(), reverse=True)

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self._clusters)

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the partition."""
        return len(self._label)

    @property
    def max_cluster_size(self) -> int:
        """Size of the largest cluster (0 for an empty partition)."""
        return max(self._sizes.values(), default=0)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate covered vertices."""
        return iter(self._label)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._label

    def __len__(self) -> int:
        return len(self._label)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same grouping regardless of label names."""
        if not isinstance(other, Partition):
            return NotImplemented
        if self._label.keys() != other._label.keys():
            return False
        return self.cluster_sets() == other.cluster_sets()

    def __hash__(self) -> int:
        return hash(self.cluster_sets())

    def cluster_sets(self) -> FrozenSet[FrozenSet[Vertex]]:
        """The partition as a frozen set of frozen vertex sets."""
        return frozenset(self._clusters.values())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "Partition":
        """Relabel clusters 0..k-1 by decreasing size (deterministic)."""
        ordered = self.clusters()
        labels: Dict[Vertex, object] = {}
        for index, members in enumerate(ordered):
            for vertex in members:
                labels[vertex] = index
        return Partition(labels)

    def restricted_to(self, vertices: Iterable[Vertex]) -> "Partition":
        """The partition induced on ``vertices`` (unknown ones ignored)."""
        keep = set(vertices)
        return Partition({v: l for v, l in self._label.items() if v in keep})

    def merged_small_clusters(self, min_size: int, into_label: object = "_rest") -> "Partition":
        """Coalesce all clusters smaller than ``min_size`` into one.

        Useful when comparing against baselines that do not emit
        singleton clusters.
        """
        labels: Dict[Vertex, object] = {}
        for label, members in self._clusters.items():
            target = label if len(members) >= min_size else into_label
            for vertex in members:
                labels[vertex] = target
        return Partition(labels)

    def __repr__(self) -> str:
        return (
            f"Partition(num_vertices={self.num_vertices}, "
            f"num_clusters={self.num_clusters})"
        )
