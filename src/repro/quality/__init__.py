"""Clustering quality metrics (internal and against ground truth)."""

from repro.quality.conductance import (
    ClusterCutStats,
    average_conductance,
    cluster_cut_stats,
    conductances,
    coverage,
    internal_densities,
    max_conductance,
    normalized_cut,
)
from repro.quality.external import (
    PairCounts,
    ari,
    nmi,
    pair_counts,
    pairwise_f1,
    pairwise_precision_recall_f1,
    purity,
)
from repro.quality.information import (
    normalized_vi,
    split_join_distance,
    variation_of_information,
)
from repro.quality.modularity import modularity
from repro.quality.partition import Partition

__all__ = [
    "ClusterCutStats",
    "PairCounts",
    "Partition",
    "ari",
    "average_conductance",
    "cluster_cut_stats",
    "conductances",
    "coverage",
    "internal_densities",
    "max_conductance",
    "modularity",
    "nmi",
    "normalized_cut",
    "normalized_vi",
    "pair_counts",
    "pairwise_f1",
    "pairwise_precision_recall_f1",
    "purity",
    "split_join_distance",
    "variation_of_information",
]
