"""Holm–de Lichtenberg–Thorup fully-dynamic connectivity.

This is the production connectivity structure used by the streaming
clusterer: amortized O(log² n) edge insertion/deletion and O(log n)
connectivity queries, versus the naive structure's O(component)
deletions.

Structure recap (Holm, de Lichtenberg, Thorup, JACM 2001)
---------------------------------------------------------
Every edge ``e`` carries a level ``ℓ(e) ≥ 0``. ``F_i`` denotes the
spanning forest of the sub-graph formed by edges of level ``≥ i``; the
forests are nested (``F_0 ⊇ F_1 ⊇ …``) and ``F_0`` spans the whole
graph. A tree edge of level ``ℓ`` is present in ``F_0 … F_ℓ``. The key
invariant: every component of ``F_i`` has at most ``n / 2^i`` vertices,
so levels never exceed ``log₂ n``.

* **Insert** at level 0: tree edge if the endpoints were disconnected,
  otherwise a non-tree edge stored in per-level adjacency sets.
* **Delete** of a non-tree edge: O(log n) bookkeeping.
* **Delete** of a tree edge ``{u, v}`` at level ``ℓ``: cut it from
  ``F_0 … F_ℓ``, then search for a replacement from level ``ℓ`` down to
  0. At each level the smaller side ``T_u`` has its level-``i`` tree
  edges *promoted* to ``i+1`` (they can afford it by the size invariant)
  and its level-``i`` non-tree edges are scanned: an edge crossing to
  the other side is a replacement (reconnect, stop); an internal edge is
  promoted. Every scanned edge either reconnects or rises one level, so
  each edge is touched O(log n) times over its lifetime.

The per-level forests are Euler-tour trees
(:class:`repro.connectivity.ett.EulerTourForest`) whose aggregate marks
let us enumerate level-``i`` tree edges and vertices with level-``i``
non-tree edges in O(log n) per item.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.connectivity.base import DynamicConnectivity
from repro.connectivity.ett import EulerTourForest
from repro.streams.events import Edge, Vertex, canonical_edge
from repro.util.rng import child_seed

__all__ = ["HDTConnectivity"]


class HDTConnectivity(DynamicConnectivity):
    """Fully-dynamic connectivity with poly-logarithmic updates."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        # Level-indexed forests; grown lazily as edges get promoted.
        self._forests: List[EulerTourForest] = [EulerTourForest(child_seed(seed, 0))]
        # edge -> (level, is_tree)
        self._edges: Dict[Edge, Tuple[int, bool]] = {}
        # Per-level non-tree adjacency: level -> vertex -> set of neighbours.
        self._nontree: List[Dict[Vertex, Set[Vertex]]] = [{}]
        self._num_components = 0

    # ------------------------------------------------------------------
    # Level plumbing
    # ------------------------------------------------------------------
    def _forest(self, level: int) -> EulerTourForest:
        while len(self._forests) <= level:
            self._forests.append(
                EulerTourForest(child_seed(self._seed, len(self._forests)))
            )
            self._nontree.append({})
        return self._forests[level]

    def _add_nontree(self, level: int, u: Vertex, v: Vertex) -> None:
        forest = self._forest(level)
        forest.ensure_vertex(u)
        forest.ensure_vertex(v)
        table = self._nontree[level]
        for a, b in ((u, v), (v, u)):
            bucket = table.setdefault(a, set())
            bucket.add(b)
            if len(bucket) == 1:
                forest.set_vertex_mark(a, True)

    def _remove_nontree(self, level: int, u: Vertex, v: Vertex) -> None:
        forest = self._forests[level]
        table = self._nontree[level]
        for a, b in ((u, v), (v, u)):
            bucket = table[a]
            bucket.discard(b)
            if not bucket:
                del table[a]
                forest.set_vertex_mark(a, False)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        if self._forests[0].add_vertex(v):
            self._num_components += 1
            return True
        return False

    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        u, v = canonical_edge(u, v)
        edge = (u, v)
        if edge in self._edges:
            raise ValueError(f"edge ({u!r}, {v!r}) already present")
        self.add_vertex(u)
        self.add_vertex(v)
        forest0 = self._forests[0]
        if forest0.connected(u, v):
            self._edges[edge] = (0, False)
            self._add_nontree(0, u, v)
            return False
        forest0.link(u, v)
        forest0.set_edge_mark(u, v, True)
        self._edges[edge] = (0, True)
        self._num_components -= 1
        return True

    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        u, v = canonical_edge(u, v)
        edge = (u, v)
        info = self._edges.pop(edge, None)
        if info is None:
            raise KeyError(f"edge ({u!r}, {v!r}) not present")
        level, is_tree = info
        if not is_tree:
            self._remove_nontree(level, u, v)
            return False
        # Cut the tree edge out of every forest that contains it.
        self._forests[level].set_edge_mark(u, v, False)
        for i in range(level, -1, -1):
            self._forests[i].cut(u, v)
        replaced = self._search_replacement(u, v, level)
        if not replaced:
            self._num_components += 1
            return True
        return False

    def _search_replacement(self, u: Vertex, v: Vertex, level: int) -> bool:
        """Find a replacement for the deleted tree edge, highest level first."""
        for i in range(level, -1, -1):
            forest = self._forests[i]
            # Work on the smaller side to preserve the size invariant.
            if forest.component_size(u) <= forest.component_size(v):
                small = u
            else:
                small = v
            self._promote_tree_edges(i, small)
            if self._scan_nontree_edges(i, small, u, v):
                return True
        return False

    def _promote_tree_edges(self, level: int, small: Vertex) -> None:
        """Raise all level-``level`` tree edges inside ``small``'s tree."""
        forest = self._forests[level]
        upper = self._forest(level + 1)
        while True:
            arc = forest.find_marked_edge(small)
            if arc is None:
                return
            x, y = arc
            forest.set_edge_mark(x, y, False)
            self._edges[(x, y)] = (level + 1, True)
            upper.ensure_vertex(x)
            upper.ensure_vertex(y)
            upper.link(x, y)
            upper.set_edge_mark(x, y, True)

    def _scan_nontree_edges(
        self, level: int, small: Vertex, u: Vertex, v: Vertex
    ) -> bool:
        """Scan level-``level`` non-tree edges incident to ``small``'s tree.

        Crossing edges become the replacement tree edge (returns True);
        internal edges are promoted one level.
        """
        forest = self._forests[level]
        small_root = forest.component_id(small)
        while True:
            x = forest.find_marked_vertex(small)
            if x is None:
                return False
            bucket = self._nontree[level][x]
            while bucket:
                y = next(iter(bucket))
                self._remove_nontree(level, x, y)
                if forest.component_id(y) != small_root:
                    # Replacement found: becomes a tree edge at this level.
                    self._edges[canonical_edge(x, y)] = (level, True)
                    for i in range(level, -1, -1):
                        self._forests[i].link(x, y)
                    cx, cy = canonical_edge(x, y)
                    forest.set_edge_mark(cx, cy, True)
                    return True
                self._edges[canonical_edge(x, y)] = (level + 1, False)
                self._add_nontree(level + 1, x, y)
                bucket = self._nontree[level].get(x)
                if bucket is None:
                    break

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def edge_level(self, u: Vertex, v: Vertex) -> int:
        """Current HDT level of edge ``{u, v}`` (diagnostics/tests)."""
        return self._edges[canonical_edge(u, v)][0]

    def is_tree_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if ``{u, v}`` is currently a spanning-forest edge."""
        return self._edges[canonical_edge(u, v)][1]

    def connected(self, u: Vertex, v: Vertex) -> bool:
        return self._forests[0].connected(u, v)

    def component_size(self, v: Vertex) -> int:
        return self._forests[0].component_size(v)

    def component_members(self, v: Vertex) -> Set[Vertex]:
        return self._forests[0].component_members(v)

    def component_id(self, v: Vertex) -> int:
        """Opaque component identifier, valid until the next update."""
        return self._forests[0].component_id(v)

    @property
    def num_vertices(self) -> int:
        return self._forests[0].num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges currently stored (tree + non-tree)."""
        return len(self._edges)

    @property
    def num_components(self) -> int:
        return self._num_components

    @property
    def num_levels(self) -> int:
        """Number of levels currently materialized (diagnostics)."""
        return len(self._forests)

    def vertices(self) -> Iterator[Vertex]:
        return self._forests[0].vertices()

    def edges(self) -> Iterator[Edge]:
        """Iterate all stored edges in canonical form."""
        return iter(self._edges)

    def remove_vertex_if_isolated(self, v: Vertex) -> bool:
        # Isolation check: the vertex must be a singleton in F_0 and carry
        # no non-tree edges at any level (it cannot: non-tree edges imply
        # connectivity). Dropping singleton loop nodes from every forest
        # keeps the structure lean for vertex-deletion workloads.
        forest0 = self._forests[0]
        if v not in forest0 or forest0.component_size(v) != 1:
            return False
        for level, forest in enumerate(self._forests):
            if v in forest:
                if not forest.remove_isolated_vertex(v):  # pragma: no cover
                    raise AssertionError("isolated in F_0 but linked above")
                self._nontree[level].pop(v, None)
        self._num_components -= 1
        return True
