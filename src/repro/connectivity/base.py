"""Common interface for fully-dynamic connectivity structures.

The streaming clusterer maintains the connected components of the
*sampled* sub-graph under edge insertions and deletions. Two
implementations are provided:

* :class:`repro.connectivity.naive.NaiveDynamicConnectivity` — simple
  BFS-based structure, O(component) deletions; the correctness oracle.
* :class:`repro.connectivity.hdt.HDTConnectivity` — Holm–de
  Lichtenberg–Thorup structure, amortized poly-logarithmic updates; the
  production structure.

Both implement this interface so they are interchangeable in the
clusterer (and cross-checkable in tests).
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Set

from repro.streams.events import Vertex

__all__ = ["DynamicConnectivity"]


class DynamicConnectivity(abc.ABC):
    """Fully-dynamic connectivity over an undirected simple graph."""

    @abc.abstractmethod
    def add_vertex(self, v: Vertex) -> bool:
        """Register ``v`` as an isolated vertex; False if already present."""

    @abc.abstractmethod
    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert edge ``{u, v}`` (creating endpoints as needed).

        Returns True iff the insertion merged two components. Raises
        ``ValueError`` if the edge is already present or is a self-loop.
        """

    @abc.abstractmethod
    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete edge ``{u, v}``.

        Returns True iff the deletion split a component. Raises
        ``KeyError`` if the edge is absent.
        """

    @abc.abstractmethod
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if edge ``{u, v}`` is currently present."""

    @abc.abstractmethod
    def connected(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are in the same component.

        Unknown vertices are treated as isolated singletons, so
        ``connected(x, x)`` is True for any ``x`` and ``connected(x, y)``
        is False when either endpoint is unknown (and ``x != y``).
        """

    @abc.abstractmethod
    def component_size(self, v: Vertex) -> int:
        """Number of vertices in ``v``'s component (1 for unknown ``v``)."""

    @abc.abstractmethod
    def component_members(self, v: Vertex) -> Set[Vertex]:
        """The vertex set of ``v``'s component (``{v}`` for unknown ``v``)."""

    @property
    @abc.abstractmethod
    def num_vertices(self) -> int:
        """Number of registered vertices."""

    @property
    @abc.abstractmethod
    def num_components(self) -> int:
        """Number of connected components over registered vertices."""

    @abc.abstractmethod
    def vertices(self) -> Iterator[Vertex]:
        """Iterate over registered vertices."""

    def components(self) -> List[Set[Vertex]]:
        """Materialize all components. O(n log n) generic implementation."""
        remaining = set(self.vertices())
        result: List[Set[Vertex]] = []
        while remaining:
            v = next(iter(remaining))
            members = self.component_members(v)
            remaining -= members
            result.append(members)
        return result

    def remove_vertex_if_isolated(self, v: Vertex) -> bool:
        """Optional hook: drop ``v`` if it has no incident edges.

        Default implementation keeps the vertex (structures that cannot
        cheaply verify isolation may override). Returns False.
        """
        return False
