"""Euler-tour trees over randomized treaps.

An Euler-tour tree (ETT) represents each tree of a forest as the Euler
tour of that tree, stored in a balanced binary search tree ordered by
tour position. This yields O(log n) expected time for:

* ``link(u, v)`` — join two trees with a new tree edge,
* ``cut(u, v)`` — remove a tree edge, splitting the tour,
* ``connected(u, v)`` — compare treap roots,
* ``component_size(v)`` — count of vertices in ``v``'s tree.

Tour representation
-------------------
The tour contains one *loop node* per vertex (``(v, v)``) and two *arc
nodes* per tree edge (``(u, v)`` and ``(v, u)``). A single-vertex tree is
the one-element tour ``[(v, v)]``.

HDT adornments
--------------
The Holm–de Lichtenberg–Thorup connectivity structure
(:mod:`repro.connectivity.hdt`) needs two searchable boolean marks,
aggregated over subtrees:

* ``self_nontree`` on loop nodes — vertex has level-``i`` non-tree edges;
* ``self_tree`` on canonical arc nodes — the tree edge has level exactly
  ``i`` (marked on the ``(min, max)`` arc only, so each edge counts once).

:meth:`EulerTourForest.find_marked_vertex` and
:meth:`EulerTourForest.find_marked_edge` locate a marked node in
O(log n) by descending the aggregate bits.

The treap uses parent pointers with split-by-node (walk-up) and
priority-based merge, so no positional keys are stored.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.streams.events import Vertex

__all__ = ["EulerTourForest", "TourNode"]


class TourNode:
    """One element of an Euler tour: a vertex loop or a directed arc."""

    __slots__ = (
        "u",
        "v",
        "priority",
        "left",
        "right",
        "parent",
        "size",
        "loops",
        "self_nontree",
        "self_tree",
        "sub_nontree",
        "sub_tree",
    )

    def __init__(self, u: Vertex, v: Vertex, priority: int) -> None:
        self.u = u
        self.v = v
        self.priority = priority
        self.left: Optional[TourNode] = None
        self.right: Optional[TourNode] = None
        self.parent: Optional[TourNode] = None
        self.size = 1
        self.loops = 1 if u == v else 0
        self.self_nontree = False
        self.self_tree = False
        self.sub_nontree = False
        self.sub_tree = False

    @property
    def is_loop(self) -> bool:
        """True for vertex loop nodes ``(v, v)``."""
        return self.u == self.v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "loop" if self.is_loop else "arc"
        return f"TourNode({kind} {self.u!r}->{self.v!r})"


def _update(node: TourNode) -> None:
    """Recompute ``node``'s aggregates from itself and its children."""
    size = 1
    loops = 1 if node.is_loop else 0
    nontree = node.self_nontree
    tree = node.self_tree
    left, right = node.left, node.right
    if left is not None:
        size += left.size
        loops += left.loops
        nontree = nontree or left.sub_nontree
        tree = tree or left.sub_tree
    if right is not None:
        size += right.size
        loops += right.loops
        nontree = nontree or right.sub_nontree
        tree = tree or right.sub_tree
    node.size = size
    node.loops = loops
    node.sub_nontree = nontree
    node.sub_tree = tree


def _merge(a: Optional[TourNode], b: Optional[TourNode]) -> Optional[TourNode]:
    """Concatenate tours ``a`` and ``b`` (both treap roots); returns root."""
    if a is None:
        if b is not None:
            b.parent = None
        return b
    if b is None:
        a.parent = None
        return a
    if a.priority > b.priority:
        child = _merge(a.right, b)
        a.right = child
        if child is not None:
            child.parent = a
        _update(a)
        a.parent = None
        return a
    child = _merge(a, b.left)
    b.left = child
    if child is not None:
        child.parent = b
    _update(b)
    b.parent = None
    return b


def _split_after(x: TourNode) -> Tuple[TourNode, Optional[TourNode]]:
    """Split the tour containing ``x`` into (prefix..x], (x..suffix)."""
    right = x.right
    if right is not None:
        right.parent = None
        x.right = None
        _update(x)
    left: Optional[TourNode] = x
    node: TourNode = x
    parent = x.parent
    x.parent = None
    while parent is not None:
        grand = parent.parent
        parent.parent = None
        if parent.left is node:
            parent.left = None
            _update(parent)
            right = _merge(right, parent)
        else:
            parent.right = None
            _update(parent)
            left = _merge(parent, left)
        node = parent
        parent = grand
    assert left is not None
    return left, right


def _split_before(x: TourNode) -> Tuple[Optional[TourNode], TourNode]:
    """Split the tour containing ``x`` into (prefix), [x..suffix)."""
    left = x.left
    if left is not None:
        left.parent = None
        x.left = None
        _update(x)
    right: Optional[TourNode] = x
    node: TourNode = x
    parent = x.parent
    x.parent = None
    while parent is not None:
        grand = parent.parent
        parent.parent = None
        if parent.left is node:
            parent.left = None
            _update(parent)
            right = _merge(right, parent)
        else:
            parent.right = None
            _update(parent)
            left = _merge(parent, left)
        node = parent
        parent = grand
    assert right is not None
    return left, right


def _root(node: TourNode) -> TourNode:
    """Treap root of the tour containing ``node``."""
    while node.parent is not None:
        node = node.parent
    return node


def _position(node: TourNode) -> int:
    """0-based position of ``node`` within its tour (O(log n))."""
    pos = node.left.size if node.left is not None else 0
    current = node
    parent = node.parent
    while parent is not None:
        if parent.right is current:
            pos += 1 + (parent.left.size if parent.left is not None else 0)
        current = parent
        parent = parent.parent
    return pos


class EulerTourForest:
    """A forest of Euler-tour trees with HDT mark aggregation.

    Vertices are created lazily by :meth:`add_vertex` /
    :meth:`ensure_vertex`. All operations are O(log n) expected.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._loops: Dict[Vertex, TourNode] = {}
        # One entry per directed arc of a tree edge.
        self._arcs: Dict[Tuple[Vertex, Vertex], TourNode] = {}

    # ------------------------------------------------------------------
    # Vertex management
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._loops

    def add_vertex(self, v: Vertex) -> bool:
        """Create ``v`` as a singleton tour; False if already present."""
        if v in self._loops:
            return False
        self._loops[v] = self._new_node(v, v)
        return True

    def ensure_vertex(self, v: Vertex) -> None:
        """Create ``v`` if absent."""
        self.add_vertex(v)

    def remove_isolated_vertex(self, v: Vertex) -> bool:
        """Drop ``v`` if its tour is the singleton loop; False otherwise."""
        node = self._loops.get(v)
        if node is None:
            return False
        if node.parent is not None or node.left is not None or node.right is not None:
            return False
        del self._loops[v]
        return True

    def _new_node(self, u: Vertex, v: Vertex) -> TourNode:
        return TourNode(u, v, self._rng.getrandbits(62))

    @property
    def num_vertices(self) -> int:
        """Number of vertices present in this forest."""
        return len(self._loops)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate vertices present in this forest."""
        return iter(self._loops)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected(self, u: Vertex, v: Vertex) -> bool:
        """True if ``u`` and ``v`` are in the same tree.

        Unknown vertices are singletons: equal vertices are connected,
        distinct ones are not.
        """
        if u == v:
            return True
        nu = self._loops.get(u)
        nv = self._loops.get(v)
        if nu is None or nv is None:
            return False
        return _root(nu) is _root(nv)

    def has_tree_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if ``{u, v}`` is a tree edge of this forest."""
        return (u, v) in self._arcs

    def component_size(self, v: Vertex) -> int:
        """Number of vertices in ``v``'s tree (1 for unknown vertices)."""
        node = self._loops.get(v)
        if node is None:
            return 1
        return _root(node).loops

    def component_id(self, v: Vertex) -> int:
        """Opaque component identifier, valid until the next update."""
        node = self._loops.get(v)
        if node is None:
            return id(v)
        return id(_root(node))

    def component_members(self, v: Vertex) -> Set[Vertex]:
        """Vertex set of ``v``'s tree (O(size of tree))."""
        node = self._loops.get(v)
        if node is None:
            return {v}
        return {n.u for n in self._iter_subtree(_root(node)) if n.is_loop}

    def iter_component_vertices(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate vertices of ``v``'s tree in tour order."""
        node = self._loops.get(v)
        if node is None:
            yield v
            return
        for n in self._iter_subtree(_root(node)):
            if n.is_loop:
                yield n.u

    def tour(self, v: Vertex) -> List[Tuple[Vertex, Vertex]]:
        """The full Euler tour of ``v``'s tree as (u, v) pairs (tests)."""
        node = self._loops.get(v)
        if node is None:
            return [(v, v)]
        return [(n.u, n.v) for n in self._iter_subtree(_root(node))]

    @staticmethod
    def _iter_subtree(root: TourNode) -> Iterator[TourNode]:
        """In-order traversal (iterative, no recursion limit issues)."""
        stack: List[TourNode] = []
        node: Optional[TourNode] = root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    # ------------------------------------------------------------------
    # Link / cut
    # ------------------------------------------------------------------
    def _reroot(self, v: Vertex) -> TourNode:
        """Rotate the tour of ``v``'s tree so it starts at ``v``'s loop."""
        loop = self._loops[v]
        before, after = _split_before(loop)
        result = _merge(after, before)
        assert result is not None
        return result

    def link(self, u: Vertex, v: Vertex) -> None:
        """Add tree edge ``{u, v}`` joining two distinct trees.

        Raises ``ValueError`` if the endpoints are already connected
        (a forest stays a forest).
        """
        if u == v:
            raise ValueError(f"self-loop tree edge ({u!r}, {v!r})")
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        if self.connected(u, v):
            raise ValueError(f"link({u!r}, {v!r}): already connected")
        tour_u = self._reroot(u)
        tour_v = self._reroot(v)
        arc_uv = self._new_node(u, v)
        arc_vu = self._new_node(v, u)
        self._arcs[(u, v)] = arc_uv
        self._arcs[(v, u)] = arc_vu
        _merge(_merge(_merge(tour_u, arc_uv), tour_v), arc_vu)

    def cut(self, u: Vertex, v: Vertex) -> None:
        """Remove tree edge ``{u, v}``, splitting its tree in two.

        Raises ``KeyError`` if ``{u, v}`` is not a tree edge here.
        """
        arc_a = self._arcs.pop((u, v))
        arc_b = self._arcs.pop((v, u))
        if _position(arc_a) > _position(arc_b):
            arc_a, arc_b = arc_b, arc_a
        # Tour: prefix | arc_a | middle | arc_b | suffix. ``middle`` is the
        # Euler tour of the detached side and is left as its own treap root;
        # prefix and suffix are re-joined into the remaining side's tour.
        prefix, _ = _split_before(arc_a)
        _, _ = _split_after(arc_a)  # drops arc_a ([arc_a] alone on the left)
        _, _ = _split_before(arc_b)  # left part is ``middle``, now a root
        _, suffix = _split_after(arc_b)  # drops arc_b
        _merge(prefix, suffix)

    # ------------------------------------------------------------------
    # HDT marks
    # ------------------------------------------------------------------
    def set_vertex_mark(self, v: Vertex, value: bool) -> None:
        """Set the 'has non-tree edges' mark on ``v``'s loop node."""
        node = self._loops[v]
        if node.self_nontree == value:
            return
        node.self_nontree = value
        self._pull_up(node)

    def set_edge_mark(self, u: Vertex, v: Vertex, value: bool) -> None:
        """Set the 'tree edge at this level' mark on arc ``(u, v)``.

        Callers mark exactly one canonical arc per edge so that searches
        enumerate each edge once.
        """
        node = self._arcs[(u, v)]
        if node.self_tree == value:
            return
        node.self_tree = value
        self._pull_up(node)

    @staticmethod
    def _pull_up(node: TourNode) -> None:
        current: Optional[TourNode] = node
        while current is not None:
            _update(current)
            current = current.parent

    def find_marked_vertex(self, v: Vertex) -> Optional[Vertex]:
        """A vertex in ``v``'s tree whose loop node is marked, or None."""
        loop = self._loops.get(v)
        if loop is None:
            return None
        node = _root(loop)
        if not node.sub_nontree:
            return None
        while True:
            if node.self_nontree:
                return node.u
            if node.left is not None and node.left.sub_nontree:
                node = node.left
            elif node.right is not None and node.right.sub_nontree:
                node = node.right
            else:  # pragma: no cover - aggregate invariant violated
                raise AssertionError("sub_nontree set but no marked node found")

    def find_marked_edge(self, v: Vertex) -> Optional[Tuple[Vertex, Vertex]]:
        """A marked tree arc in ``v``'s tree, or None."""
        loop = self._loops.get(v)
        if loop is None:
            return None
        node = _root(loop)
        if not node.sub_tree:
            return None
        while True:
            if node.self_tree:
                return (node.u, node.v)
            if node.left is not None and node.left.sub_tree:
                node = node.left
            elif node.right is not None and node.right.sub_tree:
                node = node.right
            else:  # pragma: no cover - aggregate invariant violated
                raise AssertionError("sub_tree set but no marked node found")
