"""Lazy-rebuild connectivity: O(α) updates, rebuild deferred to queries.

Insertions are applied to a cached union-find when it is clean (exact
and nearly free). A deletion cannot be expressed in a union-find, so it
only marks the cache dirty; the next *query* rebuilds from the live
edge set in O(edges α). Mutations never trigger a rebuild.

This is the right backend when queries are sparse relative to
deletions — e.g. an unconstrained clusterer ingesting a firehose and
snapshotting once a minute: ingestion runs at set/union-find speed and
the rebuild cost is paid per query burst, not per deletion. Query
answers are exactly equal to the other backends' at every query point
(cross-checked by tests); two contract relaxations buy the speed:

* ``insert_edge`` / ``delete_edge`` return **conservative** merge/split
  indications while the cache is dirty (``True`` = "may have
  merged/split"), so a clusterer's merge/split counters are upper
  bounds under this backend;
* constraint policies that query connectivity on every proposed merge
  force a rebuild per eviction — use HDT or naive with constraints
  (benchmark E9c quantifies both regimes).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.connectivity.base import DynamicConnectivity
from repro.connectivity.union_find import UnionFind
from repro.streams.events import Edge, Vertex, canonical_edge

__all__ = ["LazyRebuildConnectivity"]


class LazyRebuildConnectivity(DynamicConnectivity):
    """Union-find over the live edge set, rebuilt lazily after deletions."""

    def __init__(self) -> None:
        self._edges: Set[Edge] = set()
        # Insertion-ordered (dict keys): vertices() order must be a pure
        # function of the add_vertex call sequence so that checkpoints
        # restore an identical vertex list.
        self._vertices: Dict[Vertex, None] = {}
        self._union: Optional[UnionFind] = None  # None = dirty
        self.rebuilds = 0  # exposed for the cost-model benchmarks

    @property
    def dirty(self) -> bool:
        """True if the union-find cache is invalidated (pending rebuild)."""
        return self._union is None

    def mark_dirty(self) -> None:
        """Invalidate the cache explicitly.

        Used by checkpoint restore: the conservative merge/split return
        values depend on dirtiness, so a restored structure must reproduce
        it to keep replayed statistics identical.
        """
        self._union = None

    def _fresh(self) -> UnionFind:
        """The union-find cache, rebuilding it if dirty."""
        if self._union is None:
            union = UnionFind(self._vertices)
            for u, v in self._edges:
                union.union(u, v)
            self._union = union
            self.rebuilds += 1
        return self._union

    # ------------------------------------------------------------------
    # Mutation — never rebuilds
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        if v in self._vertices:
            return False
        self._vertices[v] = None
        if self._union is not None:
            self._union.add(v)
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        edge = canonical_edge(u, v)
        if edge in self._edges:
            raise ValueError(f"edge ({u!r}, {v!r}) already present")
        self.add_vertex(edge[0])
        self.add_vertex(edge[1])
        self._edges.add(edge)
        if self._union is not None:
            return self._union.union(u, v)  # exact while clean
        return True  # dirty: conservative "may have merged"

    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        edge = canonical_edge(u, v)
        if edge not in self._edges:
            raise KeyError(f"edge ({u!r}, {v!r}) not present")
        self._edges.discard(edge)
        self._union = None
        return True  # conservative "may have split"

    def remove_vertex_if_isolated(self, v: Vertex) -> bool:
        if v not in self._vertices:
            return False
        for a, b in self._edges:
            if a == v or b == v:
                return False
        del self._vertices[v]
        self._union = None
        return True

    # ------------------------------------------------------------------
    # Queries — exact (rebuild if dirty)
    # ------------------------------------------------------------------
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def connected(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return True
        if u not in self._vertices or v not in self._vertices:
            return False
        return self._fresh().connected(u, v)

    def component_size(self, v: Vertex) -> int:
        if v not in self._vertices:
            return 1
        return self._fresh().set_size(v)

    def component_members(self, v: Vertex) -> Set[Vertex]:
        if v not in self._vertices:
            return {v}
        union = self._fresh()
        root = union.find(v)
        return {w for w in self._vertices if union.find(w) == root}

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_components(self) -> int:
        return self._fresh().num_sets

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def components(self) -> List[Set[Vertex]]:
        return self._fresh().groups()
