"""Fully-dynamic connectivity structures for the sampled sub-graph.

The paper's clusters are the connected components of the reservoir
sub-graph, which changes under both edge insertions (reservoir
admissions) and deletions (reservoir evictions and stream deletions).
This package provides the machinery to maintain those components:

* :class:`UnionFind` / :class:`RollbackUnionFind` — static/undoable DSU.
* :class:`NaiveDynamicConnectivity` — BFS-based, the simple oracle.
* :class:`EulerTourForest` — balanced Euler-tour trees (the HDT substrate).
* :class:`HDTConnectivity` — Holm–de Lichtenberg–Thorup fully-dynamic
  connectivity, amortized O(log² n) updates; the production structure.
* :class:`LazyRebuildConnectivity` — union-find rebuilt lazily at query
  time; fastest for query-sparse, unconstrained ingestion.
"""

from repro.connectivity.base import DynamicConnectivity
from repro.connectivity.ett import EulerTourForest
from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.lazy import LazyRebuildConnectivity
from repro.connectivity.naive import NaiveDynamicConnectivity
from repro.connectivity.offline import resolve_sample_timeline
from repro.connectivity.union_find import RollbackUnionFind, UnionFind

__all__ = [
    "DynamicConnectivity",
    "EulerTourForest",
    "HDTConnectivity",
    "LazyRebuildConnectivity",
    "NaiveDynamicConnectivity",
    "RollbackUnionFind",
    "UnionFind",
    "resolve_sample_timeline",
]

_BACKENDS = {
    "hdt": HDTConnectivity,
    "naive": NaiveDynamicConnectivity,
    "lazy": LazyRebuildConnectivity,
}


def make_connectivity(backend: str, seed: int = 0) -> DynamicConnectivity:
    """Instantiate a connectivity backend by name (``"hdt"`` or ``"naive"``)."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown connectivity backend {backend!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        ) from None
    if cls is HDTConnectivity:
        return cls(seed=seed)
    return cls()


__all__.append("make_connectivity")
