"""Disjoint-set (union-find) structures.

Two variants:

* :class:`UnionFind` — union by size + path compression; near-O(1)
  amortized. Used by offline baselines, static component extraction, and
  the sharded clusterer's boundary merger.
* :class:`RollbackUnionFind` — union by size *without* path compression,
  with an undo stack. Needed where unions must be reverted (e.g. trial
  merges under constraint policies and FM refinement in the multilevel
  baseline).

Both accept arbitrary hashable elements and create them lazily.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

__all__ = ["UnionFind", "RollbackUnionFind"]


class UnionFind:
    """Classic DSU with union by size and path compression.

    >>> uf = UnionFind()
    >>> uf.union(1, 2)
    True
    >>> uf.connected(1, 2)
    True
    >>> uf.union(1, 2)   # already together
    False
    """

    def __init__(self, elements: Iterable[Hashable] | None = None) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._num_sets = 0
        if elements is not None:
            for element in elements:
                self.add(element)

    def add(self, x: Hashable) -> bool:
        """Register ``x`` as a singleton set; False if already present."""
        if x in self._parent:
            return False
        self._parent[x] = x
        self._size[x] = 1
        self._num_sets += 1
        return True

    def find(self, x: Hashable) -> Hashable:
        """Return the representative of ``x``'s set (adds ``x`` if new)."""
        if x not in self._parent:
            self.add(x)
            return x
        # Iterative path compression: find root, then re-point the path.
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the sets of ``x`` and ``y``; False if already merged."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._num_sets -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        """True if ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: Hashable) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets over all registered elements."""
        return self._num_sets

    @property
    def num_elements(self) -> int:
        """Number of registered elements."""
        return len(self._parent)

    def groups(self) -> List[Set[Hashable]]:
        """Materialize all sets (O(n)); mainly for snapshots and tests."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())


class RollbackUnionFind:
    """DSU with an explicit undo stack (no path compression).

    ``find`` is O(log n) thanks to union by size; every successful or
    no-op :meth:`union` pushes one undo record so that :meth:`rollback`
    can restore any earlier state exactly.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._num_sets = 0
        # Each record is (child_root, parent_root) or None for no-op unions.
        self._history: List[Tuple[Hashable, Hashable] | None] = []

    def add(self, x: Hashable) -> bool:
        """Register ``x`` as a singleton set; False if already present.

        Additions are not undoable (rollback only reverts unions), which
        is sufficient for trial-merge use cases.
        """
        if x in self._parent:
            return False
        self._parent[x] = x
        self._size[x] = 1
        self._num_sets += 1
        return True

    def find(self, x: Hashable) -> Hashable:
        """Representative of ``x``'s set (adds ``x`` if new); no compression."""
        if x not in self._parent:
            self.add(x)
            return x
        while self._parent[x] != x:
            x = self._parent[x]
        return x

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge sets of ``x``/``y``; records the operation for rollback."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            self._history.append(None)
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._num_sets -= 1
        self._history.append((ry, rx))
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        """True if ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: Hashable) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets."""
        return self._num_sets

    @property
    def checkpoint(self) -> int:
        """Opaque marker for the current state; pass to :meth:`rollback`."""
        return len(self._history)

    def rollback(self, checkpoint: int) -> None:
        """Undo all unions performed after ``checkpoint``."""
        if checkpoint > len(self._history):
            raise ValueError(
                f"checkpoint {checkpoint} is in the future "
                f"(history length {len(self._history)})"
            )
        while len(self._history) > checkpoint:
            record = self._history.pop()
            if record is None:
                continue
            child, parent = record
            self._parent[child] = child
            self._size[parent] -= self._size[child]
            self._num_sets += 1
