"""Offline dynamic connectivity over a bounded op timeline.

The batched ingestion fast path (``StreamingGraphClusterer.apply_many``)
defers the fully-dynamic connectivity structure and instead records the
sample mutations a batch performed — a chronological list of edge
insertions and deletions. The clusterer still needs the *exact* per-op
merge/split booleans the online structure would have reported (they feed
``ClustererStats.component_merges``/``component_splits``), and this
module computes them after the fact with the classic offline
divide-and-conquer:

1. Every edge's presence in the sample is an interval of timeline slots.
2. Intervals are inserted into a segment tree over the slots, so each
   edge lands in O(log T) nodes.
3. A depth-first walk of the tree unions each node's edges into a
   rollback union-find on the way down and rolls them back on the way
   up; at leaf ``t`` the structure holds exactly the sample edges alive
   at op ``t``'s query instant, so a single connectivity probe answers
   it.

Total cost is O((B + D)·log B·α + S) for a batch of B ops touching D
edges over a sample of S edges — the only S term is one flat union pass
*contracting* the sample edges untouched by the batch into component
representatives, and even that pass is skipped when the caller supplies
the base component labelling and the batch deletes no base edge.

This is exact for any backend with exact merge/split semantics (HDT and
the naive oracle agree with it by construction; property-tested in
``tests/test_apply_many_property.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

__all__ = ["resolve_sample_timeline"]

#: One timeline op: ``(is_insert, u, v)``. Ops must be the *sample*
#: mutations in chronological order, consistent with ``base_edges``: an
#: edge may only be deleted while present and inserted while absent.
#: Consistency is the caller's contract — violations that are cheap to
#: detect raise ``ValueError``, but a delete of an edge that was never
#: present is indistinguishable from a base-edge delete without an
#: O(sample) membership check, so it silently yields garbage.
TimelineOp = Tuple[bool, Hashable, Hashable]


def resolve_sample_timeline(
    base_edges: Iterable[Tuple[Hashable, Hashable]],
    ops: List[TimelineOp],
    base_labels: Optional[Dict[Hashable, Hashable]] = None,
) -> List[bool]:
    """Resolve merge/split booleans for a batch of sample mutations.

    ``base_edges`` is the sample content *before* the batch; ``ops`` the
    chronological sample mutations the batch performed. Returns one
    boolean per op:

    * insertion — True iff the edge merged two components (its endpoints
      were disconnected just before the insert);
    * deletion — True iff removing the edge split its component (its
      endpoints are disconnected just after the delete).

    ``base_labels`` may give the components of ``base_edges`` as a
    vertex → representative mapping; when no op deletes a base edge it
    substitutes for the contraction pass, making the whole resolution
    independent of the sample size.

    >>> resolve_sample_timeline([(1, 2)], [(True, 2, 3), (False, 1, 2)])
    [True, True]
    >>> resolve_sample_timeline([(1, 2), (2, 3), (1, 3)], [(False, 1, 2)])
    [False]
    """
    horizon = len(ops)
    results = [False] * horizon
    if horizon == 0:
        return results

    # -- Edge lifetimes as inclusive slot intervals -------------------------
    # Slot t is the instant op t's query is evaluated: just before an
    # insert, just after a delete — either way the op's own edge is absent
    # at its own slot, so an edge inserted at ti and deleted at td is
    # alive for slots [ti+1, td-1]; base edges start alive at slot 0.
    # Base edges are never enumerated here: a delete that does not close
    # an in-timeline insert must be a base-edge delete (born = -1).
    open_since: Dict[Tuple[Hashable, Hashable], int] = {}
    deleted_base: Dict[Tuple[Hashable, Hashable], int] = {}
    intervals: List[Tuple[int, int, Hashable, Hashable]] = []
    queries: List[Tuple[Hashable, Hashable]] = []
    append_query = queries.append
    append_interval = intervals.append
    for t, (is_insert, u, v) in enumerate(ops):
        append_query((u, v))
        edge = (u, v)
        if is_insert:
            if edge in open_since:
                raise ValueError(f"insert of already-present edge {edge!r}")
            open_since[edge] = t
        else:
            born = open_since.pop(edge, -1)
            if born < 0:
                if edge in deleted_base:
                    raise ValueError(f"delete of absent edge {edge!r}")
                deleted_base[edge] = t
            elif born + 1 <= t - 1:
                append_interval((born + 1, t - 1, u, v))
    last = horizon - 1
    for (u, v), born in open_since.items():
        if born + 1 <= last:
            append_interval((born + 1, last, u, v))

    # -- Contract untouched base edges --------------------------------------
    # Sample edges the batch never touches span every slot; union them once
    # into a compressed DSU and rewrite all other endpoints through their
    # representatives instead of replaying them at every tree node. This
    # removes the O(sample) term from every tree level — and when the
    # caller supplied the base component labels and no base edge died,
    # the labels *are* the contraction and the pass is skipped entirely.
    find: Callable[[Hashable], Hashable]
    if base_labels is not None and not deleted_base:
        get_label = base_labels.get

        def find(x: Hashable) -> Hashable:
            return get_label(x, x)

    else:
        parent: Dict[Hashable, Hashable] = {}
        weight: Dict[Hashable, int] = {}
        parent_get = parent.get
        for edge in base_edges:
            if edge in deleted_base:
                continue
            u, v = edge
            ru = parent_get(u)
            if ru is None:
                parent[u] = u
                weight[u] = 1
                ru = u
            else:
                while parent[ru] != ru:
                    ru = parent[ru]
                while parent[u] != ru:
                    parent[u], u = ru, parent[u]
            rv = parent_get(v)
            if rv is None:
                parent[v] = v
                weight[v] = 1
                rv = v
            else:
                while parent[rv] != rv:
                    rv = parent[rv]
                while parent[v] != rv:
                    parent[v], v = rv, parent[v]
            if ru != rv:
                if weight[ru] < weight[rv]:
                    ru, rv = rv, ru
                parent[rv] = ru
                weight[ru] += weight[rv]

        def find(x: Hashable) -> Hashable:
            root = parent_get(x)
            if root is None:
                return x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

    # Deleted base edges were alive from the start of the timeline. Their
    # intervals are added only now because until the full op scan we do
    # not know which deletes target base edges.
    for (u, v), died in deleted_base.items():
        if died >= 1:
            append_interval((0, died - 1, u, v))

    # -- Segment tree over slots [0, horizon) -------------------------------
    # No interval built above spans every slot (in-timeline inserts are
    # first alive at slot >= 1; deleted base edges die at slot <= last),
    # so everything left lands in the tree, endpoint-mapped through the
    # contraction. Placement uses the standard iterative bottom-up range
    # decomposition over heap-indexed nodes.
    size = 1
    while size < horizon:
        size *= 2
    node_edges: List[List[Tuple[Hashable, Hashable]]] = [[] for _ in range(2 * size)]
    for lo, hi, u, v in intervals:
        ru = find(u)
        rv = find(v)
        if ru == rv:
            continue
        pair = (ru, rv)
        left = lo + size
        right = hi + size + 1
        while left < right:
            if left & 1:
                node_edges[left].append(pair)
                left += 1
            if right & 1:
                right -= 1
                node_edges[right].append(pair)
            left >>= 1
            right >>= 1

    # Queries mapped through the contraction once, up front; endpoints
    # already connected by untouched base edges resolve to False without
    # ever probing the tree walk's union-find.
    qreps: List[Optional[Tuple[Hashable, Hashable]]] = []
    for u, v in queries:
        ru = find(u)
        rv = find(v)
        qreps.append((ru, rv) if ru != rv else None)

    # -- DFS with a rollback union-find (inlined for speed) -----------------
    # `link` maps child-root -> parent-root; roots are absent. No path
    # compression (rollback requires stable links); union by size keeps
    # find paths logarithmic. `trail` records merged child roots so each
    # node's unions pop off in LIFO order on the way back up.
    link: Dict[Hashable, Hashable] = {}
    bulk: Dict[Hashable, int] = {}
    bulk_get = bulk.get
    trail: List[Hashable] = []

    def _walk(node: int, nlo: int, nhi: int) -> None:
        if nlo >= horizon:  # padding slots past the last op hold nothing
            return
        mark = len(trail)
        for ru, rv in node_edges[node]:
            while ru in link:
                ru = link[ru]
            while rv in link:
                rv = link[rv]
            if ru != rv:
                su = bulk_get(ru, 1)
                sv = bulk_get(rv, 1)
                if su < sv:
                    ru, rv = rv, ru
                    su, sv = sv, su
                link[rv] = ru
                bulk[ru] = su + sv
                trail.append(rv)
        if nlo == nhi:
            rep_pair = qreps[nlo]
            if rep_pair is not None:
                ru, rv = rep_pair
                while ru in link:
                    ru = link[ru]
                while rv in link:
                    rv = link[rv]
                results[nlo] = ru != rv
        else:
            mid = (nlo + nhi) >> 1
            child = 2 * node
            _walk(child, nlo, mid)
            _walk(child + 1, mid + 1, nhi)
        while len(trail) > mark:
            rv = trail.pop()
            ru = link.pop(rv)
            bulk[ru] -= bulk_get(rv, 1)

    _walk(1, 0, size - 1)
    return results
