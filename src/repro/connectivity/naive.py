"""BFS-based fully-dynamic connectivity.

:class:`NaiveDynamicConnectivity` keeps explicit component labels plus
the adjacency structure. Insertions relabel the smaller component
(O(smaller)); deletions run an *alternating bidirectional* BFS from the
two endpoints, which terminates after exploring at most twice the
smaller side of the (potential) split.

This is the simple, obviously-correct structure. It is used as the
cross-validation oracle for :class:`repro.connectivity.hdt.HDTConnectivity`
and as a baseline in the connectivity ablation (experiment E9).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Set

from repro.connectivity.base import DynamicConnectivity
from repro.streams.events import Vertex, canonical_edge

__all__ = ["NaiveDynamicConnectivity"]


class NaiveDynamicConnectivity(DynamicConnectivity):
    """Label-based dynamic connectivity with smaller-side relabelling."""

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._label: Dict[Vertex, int] = {}
        self._members: Dict[int, Set[Vertex]] = {}
        self._next_label = itertools.count()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> bool:
        if v in self._adj:
            return False
        self._adj[v] = set()
        label = next(self._next_label)
        self._label[v] = label
        self._members[label] = {v}
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        u, v = canonical_edge(u, v)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            raise ValueError(f"edge ({u!r}, {v!r}) already present")
        self._adj[u].add(v)
        self._adj[v].add(u)
        lu, lv = self._label[u], self._label[v]
        if lu == lv:
            return False
        # Relabel the smaller component into the larger.
        if len(self._members[lu]) < len(self._members[lv]):
            lu, lv = lv, lu
        small = self._members.pop(lv)
        for w in small:
            self._label[w] = lu
        self._members[lu] |= small
        return True

    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        u, v = canonical_edge(u, v)
        if u not in self._adj or v not in self._adj[u]:
            raise KeyError(f"edge ({u!r}, {v!r}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        side = self._find_separated_side(u, v)
        if side is None:
            return False
        # ``side`` is the (smaller-or-equal) piece that broke off.
        old_label = self._label[next(iter(side))]
        new_label = next(self._next_label)
        for w in side:
            self._label[w] = new_label
        self._members[old_label] -= side
        self._members[new_label] = side
        return True

    def _find_separated_side(self, u: Vertex, v: Vertex) -> Set[Vertex] | None:
        """Alternating BFS from both endpoints of a just-deleted edge.

        Returns the vertex set of the side that got disconnected (the one
        whose search exhausted first), or None if ``u`` and ``v`` are
        still connected. Each step expands one vertex on each side, so
        total work is O(min-side) up to a factor of two.
        """
        seen_u: Set[Vertex] = {u}
        seen_v: Set[Vertex] = {v}
        frontier_u: List[Vertex] = [u]
        frontier_v: List[Vertex] = [v]
        while True:
            # Expand one vertex from u's side.
            if frontier_u:
                node = frontier_u.pop()
                for nb in self._adj[node]:
                    if nb in seen_v:
                        return None
                    if nb not in seen_u:
                        seen_u.add(nb)
                        frontier_u.append(nb)
            else:
                return seen_u
            # Expand one vertex from v's side.
            if frontier_v:
                node = frontier_v.pop()
                for nb in self._adj[node]:
                    if nb in seen_u:
                        return None
                    if nb not in seen_v:
                        seen_v.add(nb)
                        frontier_v.append(nb)
            else:
                return seen_v

    def remove_vertex_if_isolated(self, v: Vertex) -> bool:
        adj = self._adj.get(v)
        if adj is None or adj:
            return False
        del self._adj[v]
        label = self._label.pop(v)
        members = self._members[label]
        members.discard(v)
        if not members:
            del self._members[label]
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return False
        adj = self._adj.get(u)
        return adj is not None and v in adj

    def connected(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return True
        lu = self._label.get(u)
        lv = self._label.get(v)
        if lu is None or lv is None:
            return False
        return lu == lv

    def component_size(self, v: Vertex) -> int:
        label = self._label.get(v)
        if label is None:
            return 1
        return len(self._members[label])

    def component_members(self, v: Vertex) -> Set[Vertex]:
        label = self._label.get(v)
        if label is None:
            return {v}
        return set(self._members[label])

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_components(self) -> int:
        return len(self._members)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def components(self) -> List[Set[Vertex]]:
        """All components; O(n) here thanks to the explicit member sets."""
        return [set(members) for members in self._members.values()]
