"""Crash-safe persistence and recovery for streaming clusterers.

The stream is unbounded; the process is not. This package makes the
clusterer a restartable long-lived service:

* :mod:`repro.persist.format` — the on-disk container: magic, format
  version, payload length, CRC32, atomic write-rename.
* :mod:`repro.persist.checkpoint` — :func:`save_checkpoint` /
  :func:`load_checkpoint` for :class:`StreamingGraphClusterer`,
  :class:`ShardedClusterer`, and :class:`PipelineClusterer` (pipeline
  checkpoints are format-identical to sharded ones), plus
  :class:`PeriodicCheckpointer`.
* :mod:`repro.persist.canonical` — value-canonical payload trees, so
  checkpoint bytes are a function of state value, not of which process
  boundaries the state crossed.

Recovery contract: restore + replay-tail is bit-identical to an
uninterrupted run (same seed) — partition, statistics, and reservoir.
See ``docs/robustness.md`` for format details and operational guidance.
"""

from repro.persist.canonical import canonicalize
from repro.persist.checkpoint import (
    STATE_VERSION,
    Checkpoint,
    PeriodicCheckpointer,
    load_checkpoint,
    save_checkpoint,
)
from repro.persist.format import (
    FORMAT_VERSION,
    MAGIC,
    read_container,
    write_container,
)

__all__ = [
    "Checkpoint",
    "FORMAT_VERSION",
    "MAGIC",
    "PeriodicCheckpointer",
    "STATE_VERSION",
    "canonicalize",
    "load_checkpoint",
    "read_container",
    "save_checkpoint",
    "write_container",
]
