"""Value-canonical payload trees for byte-stable pickling.

``pickle`` memoizes by object *identity*: the first occurrence of an
object is encoded in full, later occurrences as a back-reference. Two
payloads that are equal value-by-value therefore serialize to different
bytes whenever their internal sharing differs — e.g. a vertex id that
two shards of a sequential :class:`~repro.core.sharded.ShardedClusterer`
hold as one shared ``str`` object arrives as two *distinct* (equal)
objects when the shard states were pickled back from separate worker
processes.

:func:`canonicalize` rebuilds a payload tree bottom-up so that equal
immutable leaves (and tuples of them) are represented by a single
object. After canonicalization, the pickle byte stream is a pure
function of the payload's *value*, regardless of which process
boundaries the parts crossed — the property the pipeline's
"checkpoint bytes identical to sequential execution" guarantee rests
on (see ``tests/test_pipeline.py``).

Scope: ``dict``/``list``/``tuple`` containers are rebuilt; ``int``,
``str``, ``bytes``, ``float``, and all-internable tuples are interned
by ``(type, value)`` (floats by ``repr``, so ``-0.0``, ``0.0`` and
``nan`` stay distinct); ``bool``/``None`` are interpreter singletons
already. Any other object (enums, configs, frozen dataclasses) passes
through untouched — shared or not, those are constructed once per
logical entity by both execution modes, so their identity structure
already matches.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["canonicalize"]

_TUPLE_SENTINEL = object()


def canonicalize(payload: Any) -> Any:
    """Return ``payload`` rebuilt with equal immutable values shared.

    The result is equal to the input (``==`` on every node); container
    iteration order is preserved (dicts stay insertion-ordered — the
    checkpoint format relies on that for byte-stable round-trips).
    """
    interned: Dict[tuple, Any] = {}

    def walk(node: Any) -> Tuple[Any, Optional[tuple]]:
        """Canonical node plus its intern key (None = not internable)."""
        cls = node.__class__
        if cls is bool or node is None:
            # Interpreter singletons: already canonical, but keyed so a
            # tuple containing them can still be interned ("o" cannot
            # collide with "i" keys, so True != 1 here).
            return node, ("o", node)
        if cls is int:
            key = ("i", node)
        elif cls is str:
            key = ("s", node)
        elif cls is bytes:
            key = ("b", node)
        elif cls is float:
            key = ("f", repr(node))
            node = interned.setdefault(key, node)
            return node, key
        elif cls is tuple:
            pairs = [walk(item) for item in node]
            items = tuple(pair[0] for pair in pairs)
            keys = tuple(
                pair[1] if pair[1] is not None else _TUPLE_SENTINEL
                for pair in pairs
            )
            if _TUPLE_SENTINEL in keys:
                return items, None  # holds a non-internable member
            key = ("t",) + keys
            return interned.setdefault(key, items), key
        elif cls is dict:
            return {walk(k)[0]: walk(v)[0] for k, v in node.items()}, None
        elif cls is list:
            return [walk(item)[0] for item in node], None
        else:
            return node, None  # passthrough: see module docstring
        return interned.setdefault(key, node), key

    return walk(payload)[0]
