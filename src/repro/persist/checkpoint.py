"""Checkpointing clusterers: save, load, and periodic-save wrappers.

The paper's algorithm is online over an unbounded stream; a production
deployment must therefore survive restarts *without replaying history*.
A checkpoint captures the complete clusterer state — reservoir contents
and RNG state, stream statistics, tracked graph, connectivity vertex
set — plus the stream position, so that

    crash → :func:`load_checkpoint` → replay the tail of the stream

yields the *identical* partition, statistics, and reservoir as an
uninterrupted run with the same seed (property-tested in
``tests/test_persist_property.py``).

Use :class:`PeriodicCheckpointer` to bound the replay tail: it wraps any
clusterer and rewrites the checkpoint every ``every`` events (atomic
write-rename, so a crash during the save keeps the previous one).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Union

from repro.obs import metrics as _obs
from repro.core.clusterer import StreamingGraphClusterer
from repro.core.pipeline import PipelineClusterer
from repro.core.sharded import ShardedClusterer
from repro.errors import CheckpointError
from repro.persist.canonical import canonicalize
from repro.persist.format import PathLike, read_container, write_container
from repro.streams.events import EdgeEvent, EventColumns

__all__ = [
    "STATE_VERSION",
    "Checkpoint",
    "PeriodicCheckpointer",
    "load_checkpoint",
    "save_checkpoint",
]

STATE_VERSION = 1

_KINDS = {
    "clusterer.single": StreamingGraphClusterer,
    "clusterer.sharded": ShardedClusterer,
}

Checkpointable = Union[StreamingGraphClusterer, ShardedClusterer, PipelineClusterer]


def _kind_of(clusterer: Checkpointable) -> str:
    # A pipeline's state is format-identical to a sequential sharded
    # clusterer's, and restoring as one keeps checkpoints portable: a
    # file written by an N-worker pipeline loads on a machine with no
    # multiprocessing at all (convert back explicitly with
    # PipelineClusterer.from_state to resume pipelined).
    if isinstance(clusterer, PipelineClusterer):
        return "clusterer.sharded"
    for kind, cls in _KINDS.items():
        if isinstance(clusterer, cls):
            return kind
    raise TypeError(
        f"cannot checkpoint {type(clusterer).__name__}; expected one of "
        f"{sorted(cls.__name__ for cls in _KINDS.values())}"
    )


@dataclass
class Checkpoint:
    """A restored checkpoint: the clusterer plus its stream position."""

    clusterer: Checkpointable
    position: int
    kind: str

    def remaining(self, events: Iterable[EdgeEvent]) -> Iterable[EdgeEvent]:
        """The unprocessed tail of ``events`` (skips ``position`` items).

        Use with the *same* event sequence the crashed run consumed.
        """
        return islice(iter(events), self.position, None)


def save_checkpoint(
    clusterer: Checkpointable, path: PathLike, *, position: int = 0
) -> int:
    """Atomically write ``clusterer``'s full state to ``path``.

    ``position`` records how many stream events have been consumed so a
    resuming driver knows where the tail starts. Returns the checkpoint
    size in bytes.

    Sharded-kind payloads are value-canonicalized before pickling (see
    :mod:`repro.persist.canonical`): their states may be assembled from
    worker-process pickles, whose object sharing differs from in-process
    execution, and canonicalization makes the bytes a function of the
    state's *value* — so pipeline and sequential sharded checkpoints of
    the same logical state are identical files.
    """
    kind = _kind_of(clusterer)
    state = clusterer.get_state()
    if kind == "clusterer.sharded":
        state = canonicalize(state)
    payload = {
        "state_version": STATE_VERSION,
        "kind": kind,
        "position": int(position),
        "state": state,
    }
    return write_container(path, payload)


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`~repro.errors.CheckpointError` for anything that
    cannot be trusted: corrupted files, unknown state versions, unknown
    clusterer kinds, or structurally invalid state dicts.
    """
    payload = read_container(path)
    version = payload.get("state_version")
    if version != STATE_VERSION:
        raise CheckpointError(
            f"{path}: unsupported state version {version!r} "
            f"(this build reads {STATE_VERSION})"
        )
    kind = payload.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise CheckpointError(f"{path}: unknown checkpoint kind {kind!r}")
    try:
        clusterer = cls.from_state(payload["state"])
        position = int(payload["position"])
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointError(f"{path}: invalid checkpoint state: {error}")
    return Checkpoint(clusterer=clusterer, position=position, kind=kind)


class PeriodicCheckpointer:
    """Feed a clusterer while checkpointing every ``every`` events.

    >>> import tempfile, os
    >>> from repro.core import ClustererConfig, StreamingGraphClusterer
    >>> from repro.streams import add_edge
    >>> path = os.path.join(tempfile.mkdtemp(), "ck.rpk")
    >>> pc = PeriodicCheckpointer(
    ...     StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10)),
    ...     path, every=2)
    >>> _ = pc.process([add_edge(1, 2), add_edge(2, 3), add_edge(3, 4)])
    >>> pc.position, pc.saves >= 2  # initial save + one periodic save
    (3, True)
    >>> resumed = PeriodicCheckpointer.resume(path, every=2)
    >>> resumed.position  # last periodic save was after event 2
    2

    ``every=0`` disables periodic saves; only :meth:`save` writes. An
    initial checkpoint is written at construction (unless
    ``save_initial=False``) so a crash before the first interval is
    still recoverable.
    """

    def __init__(
        self,
        clusterer: Checkpointable,
        path: PathLike,
        every: int = 0,
        *,
        position: int = 0,
        save_initial: bool = True,
    ) -> None:
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        self.clusterer = clusterer
        self.path = path
        self.every = every
        self.position = position
        self.saves = 0
        #: Stream position of the most recent durable save — the
        #: difference against ``position`` is the *checkpoint lag* (how
        #: many events a crash right now would replay).
        self.last_saved_position = position
        if save_initial:
            self.save()

    @classmethod
    def resume(cls, path: PathLike, every: int = 0) -> "PeriodicCheckpointer":
        """Restore from ``path`` and continue checkpointing to it."""
        checkpoint = load_checkpoint(path)
        return cls(
            checkpoint.clusterer,
            path,
            every,
            position=checkpoint.position,
            save_initial=False,
        )

    def save(self) -> int:
        """Write a checkpoint now (atomic); returns its size in bytes."""
        start = time.perf_counter()
        size = save_checkpoint(self.clusterer, self.path, position=self.position)
        self.saves += 1
        self.last_saved_position = self.position
        if _obs._ENABLED:
            registry = _obs.default_registry()
            registry.histogram("checkpoint.save_seconds").observe(
                time.perf_counter() - start
            )
            registry.counter("checkpoint.bytes_written").inc(size)
            registry.counter("checkpoint.saves").inc()
            registry.gauge("checkpoint.last_saved_position").set(self.position)
        return size

    def apply(self, event: EdgeEvent) -> None:
        """Apply one event, checkpointing when the interval elapses."""
        self.clusterer.apply(event)
        self.position += 1
        if self.every and self.position % self.every == 0:
            self.save()

    def apply_many(self, events: Iterable) -> None:
        """Apply a batch through the clusterer's batched fast path.

        The batch is split at checkpoint-interval boundaries, so saves
        land at exactly the same stream positions as per-event
        :meth:`apply` — a resumed run replays the identical tail.
        Accepts :class:`~repro.streams.events.EventColumns` as well as
        event iterables; column batches split by slicing (no tuple
        materialization on the columnar wire path).
        """
        if type(events) is EventColumns:
            total = len(events)
            if not total:
                return
            if not self.every:
                self.clusterer.apply_many(events)
                self.position += total
                return
            start = 0
            while start < total:
                room = self.every - self.position % self.every
                stop = min(total, start + room)
                self.clusterer.apply_many(events.slice(start, stop))
                self.position += stop - start
                if self.position % self.every == 0:
                    self.save()
                start = stop
            return
        iterator = iter(events)
        if not self.every:
            chunk = list(iterator)
            if chunk:
                self.clusterer.apply_many(chunk)
                self.position += len(chunk)
            return
        while True:
            room = self.every - self.position % self.every
            chunk = list(islice(iterator, room))
            if not chunk:
                return
            self.clusterer.apply_many(chunk)
            self.position += len(chunk)
            if self.position % self.every == 0:
                self.save()

    def process(
        self, events: Iterable, batch_size: int | None = None
    ) -> "PeriodicCheckpointer":
        """Apply a whole stream; returns self for chaining.

        ``batch_size`` chunks the stream through :meth:`apply_many`
        (checkpoints still land at exact ``every`` multiples); ``None``
        keeps the per-event path. Chunks never span more than one
        checkpoint interval — buffering past an interval would mean a
        crash mid-buffer loses events the per-event cadence would
        already have checkpointed.
        """
        if batch_size:
            if self.every:
                batch_size = min(batch_size, self.every)
            iterator = iter(events)
            while True:
                chunk = list(islice(iterator, batch_size))
                if not chunk:
                    return self
                self.apply_many(chunk)
        for event in events:
            self.apply(event)
        return self

    def remaining(self, events: Iterable[EdgeEvent]) -> Iterable[EdgeEvent]:
        """The unprocessed tail of ``events`` given the current position."""
        return islice(iter(events), self.position, None)

    def __repr__(self) -> str:
        return (
            f"PeriodicCheckpointer(path={str(self.path)!r}, "
            f"every={self.every}, position={self.position}, saves={self.saves})"
        )
