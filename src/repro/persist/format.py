"""The on-disk checkpoint container: versioned, checksummed, atomic.

Layout (all integers big-endian)::

    offset  size  field
    0       8     magic  b"RPROCKPT"
    8       2     format version (currently 1)
    10      8     payload length in bytes
    18      4     CRC32 of the payload
    22      ...   payload (pickle protocol <= 4 of a plain dict)

Writes are **atomic**: the container is serialized to a temporary file
in the target directory, flushed and fsynced, then moved over the
destination with ``os.replace``. A crash mid-write therefore leaves
either the old checkpoint or the new one — never a torn file — and any
torn/corrupted/alien file is rejected at read time with
:class:`~repro.errors.CheckpointError`.

Pickle is the payload codec because clusterer state contains arbitrary
hashable vertex ids and exact ``random.Random`` states; the surrounding
header makes corruption detectable before unpickling ever runs. Only
load checkpoints you wrote yourself — the usual pickle caveat.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Union

from repro.errors import CheckpointError

__all__ = ["FORMAT_VERSION", "MAGIC", "read_container", "write_container"]

MAGIC = b"RPROCKPT"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">8sHQI")  # magic, version, payload length, CRC32
HEADER_SIZE = _HEADER.size

PathLike = Union[str, Path]


def encode_container(payload: dict) -> bytes:
    """Serialize ``payload`` into the framed checkpoint byte format."""
    try:
        body = pickle.dumps(payload, protocol=4)
    except Exception as error:  # unpicklable state is a caller bug
        raise CheckpointError(f"checkpoint payload is not serializable: {error}")
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, len(body), zlib.crc32(body))
    return header + body


def decode_container(data: bytes, *, source: str = "<bytes>") -> dict:
    """Parse and verify framed checkpoint bytes; the inverse of
    :func:`encode_container`. Raises :class:`CheckpointError` on any
    mismatch — magic, version, length, checksum, or payload decoding."""
    if len(data) < HEADER_SIZE:
        raise CheckpointError(
            f"{source}: too short to be a checkpoint "
            f"({len(data)} bytes < {HEADER_SIZE}-byte header)"
        )
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointError(f"{source}: not a repro checkpoint (bad magic)")
    if version > FORMAT_VERSION or version < 1:
        raise CheckpointError(
            f"{source}: unsupported checkpoint format version {version} "
            f"(this build reads <= {FORMAT_VERSION})"
        )
    body = data[HEADER_SIZE:]
    if len(body) != length:
        raise CheckpointError(
            f"{source}: truncated checkpoint "
            f"(payload {len(body)} bytes, header promises {length})"
        )
    if zlib.crc32(body) != crc:
        raise CheckpointError(f"{source}: checksum mismatch (corrupted payload)")
    try:
        payload = pickle.loads(body)
    except Exception as error:
        raise CheckpointError(f"{source}: undecodable checkpoint payload: {error}")
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"{source}: unexpected payload type {type(payload).__name__}"
        )
    return payload


def write_container(path: PathLike, payload: dict) -> int:
    """Atomically write ``payload`` as a checkpoint file; returns its size.

    The temporary file lives in the destination directory so
    ``os.replace`` is a same-filesystem atomic rename. On any failure
    the temporary file is removed and the previous checkpoint (if any)
    is left untouched.
    """
    data = encode_container(payload)
    target = os.fspath(path)
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return len(data)


def read_container(path: PathLike) -> dict:
    """Read and verify a checkpoint file written by :func:`write_container`.

    Raises :class:`CheckpointError` for missing or unreadable files as
    well as for any structural damage.
    """
    target = os.fspath(path)
    try:
        with open(target, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {target!r}: {error}")
    return decode_container(data, source=target)
