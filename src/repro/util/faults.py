"""Deterministic fault injection for robustness testing.

A long-lived streaming deployment will be killed mid-stream, its
workers will hang or crash, its disks will hiccup, and its checkpoint
files will rot. This module provides *deterministic* stand-ins for all
of those so the recovery machinery (:mod:`repro.persist`, the
supervised parallel driver in :mod:`repro.core.sharded`) can be tested
without flaky timing games:

* :func:`kill_at_event` — crash a stream consumer after exactly N events;
* :class:`CrashShard` / :class:`HangShard` — picklable per-shard faults
  for the multiprocessing driver (crash or hang on the first K attempts);
* :func:`corrupt_checkpoint` — flip a byte or truncate a checkpoint file;
* :class:`FlakyOpen` — an ``open`` replacement whose first K write-mode
  opens fail, for exercising atomic-write error paths.

Faults deliberately raise :class:`SimulatedCrash` (not a
:class:`~repro.errors.ReproError`): a real crash is not a library error,
and recovery code must not be able to catch it by accident via
``except ReproError``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, TypeVar

__all__ = [
    "SimulatedCrash",
    "kill_at_event",
    "ShardFault",
    "CrashShard",
    "HangShard",
    "corrupt_checkpoint",
    "truncate_file",
    "FlakyOpen",
]

T = TypeVar("T")


class SimulatedCrash(RuntimeError):
    """An injected crash. Deliberately outside the ReproError hierarchy."""


def kill_at_event(
    events: Iterable[T],
    n: int,
    action: Optional[Callable[[], None]] = None,
) -> Iterator[T]:
    """Yield the first ``n`` events of ``events``, then crash.

    By default the crash is a :class:`SimulatedCrash` exception (so tests
    can assert on it); pass ``action=lambda: os._exit(code)`` to simulate
    a hard kill that skips all cleanup, as the CLI smoke test does.
    """
    if n < 0:
        raise ValueError(f"kill index must be >= 0, got {n}")
    for index, event in enumerate(events):
        if index >= n:
            if action is not None:
                action()
            raise SimulatedCrash(f"injected crash at event {n}")
        yield event
    # Stream shorter than n: no fault fires, mirroring a crash that was
    # scheduled after the workload finished.


class ShardFault:
    """Base class for picklable faults injected into shard workers.

    The supervised parallel driver calls ``fault(shard, attempt)`` inside
    the worker before it processes its bucket (``attempt`` counts from 1).
    Subclasses misbehave for their target shard on early attempts and
    return normally afterwards, so bounded retry can be exercised
    deterministically.
    """

    def __call__(self, shard: int, attempt: int) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class CrashShard(ShardFault):
    """Crash the worker for ``shard`` on its first ``fail_attempts`` tries.

    ``hard=True`` kills the process with ``os._exit`` (no exception, no
    result, no cleanup) — the closest stand-in for an OOM kill. The
    default raises :class:`SimulatedCrash`, which the worker wrapper
    reports as a failed attempt.
    """

    shard: int
    fail_attempts: int = 1
    hard: bool = False

    def __call__(self, shard: int, attempt: int) -> None:
        if shard == self.shard and attempt <= self.fail_attempts:
            if self.hard:
                os._exit(86)
            raise SimulatedCrash(
                f"injected crash in shard {shard} (attempt {attempt})"
            )


@dataclass
class HangShard(ShardFault):
    """Hang the worker for ``shard`` on its first ``fail_attempts`` tries.

    The sleep must exceed the supervisor's per-attempt timeout for the
    hang to be observed as one; retries after ``fail_attempts`` proceed
    normally.
    """

    shard: int
    seconds: float = 3600.0
    fail_attempts: int = 1

    def __call__(self, shard: int, attempt: int) -> None:
        if shard == self.shard and attempt <= self.fail_attempts:
            time.sleep(self.seconds)


def corrupt_checkpoint(path, *, offset: Optional[int] = None, xor: int = 0xFF) -> int:
    """Flip one byte of ``path`` in place; returns the corrupted offset.

    ``offset`` defaults to the middle of the file, which for the repro
    checkpoint container lands inside the payload (headers are 22 bytes).
    ``xor=0`` would be a no-op and is rejected.
    """
    if not 1 <= xor <= 0xFF:
        raise ValueError(f"xor must be in [1, 255], got {xor}")
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    if offset is None:
        offset = size // 2
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} out of range for {size}-byte file")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ xor]))
    return offset


def truncate_file(path, keep: int) -> None:
    """Truncate ``path`` to its first ``keep`` bytes (a torn write)."""
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    with open(path, "r+b") as handle:
        handle.truncate(keep)


@dataclass
class FlakyOpen:
    """An ``open`` replacement whose first ``failures`` write-opens fail.

    Read-mode opens always succeed. Patch it over a module's ``open``
    (e.g. ``repro.persist.format``) to verify that a failed checkpoint
    write leaves the previous checkpoint intact.
    """

    failures: int = 1
    raised: int = field(default=0, init=False)

    def __call__(self, path, mode="r", *args, **kwargs):
        if any(flag in mode for flag in "wxa+") and self.raised < self.failures:
            self.raised += 1
            raise OSError(f"injected IO fault ({self.raised}/{self.failures})")
        return open(path, mode, *args, **kwargs)
