"""Monotonic timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Stopwatch", "PhaseTimer"]


class Stopwatch:
    """A restartable monotonic stopwatch.

    >>> sw = Stopwatch()
    >>> _ = sw.start()
    >>> _ = sum(range(1000))
    >>> sw.stop() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch; returns self for chaining."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop."""
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the running segment if any."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulates elapsed time per named phase.

    Used by the harness to split, e.g., "sampling" vs "connectivity" time.

    >>> pt = PhaseTimer()
    >>> with pt.phase("setup"):
    ...     _ = list(range(10))
    >>> "setup" in pt.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def phase(self, name: str) -> "_Phase":
        """Return a context manager that accumulates into ``name``."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to phase ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.totals.values())


class _Phase:
    def __init__(self, parent: PhaseTimer, name: str) -> None:
        self._parent = parent
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._parent.add(self._name, time.perf_counter() - self._start)
