"""Argument-validation helpers with consistent error messages.

The library raises ``ValueError``/``TypeError`` eagerly at API boundaries
so misuse fails at the call site rather than deep inside an update loop.
"""

from __future__ import annotations

from typing import Any, Tuple, Type

__all__ = [
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_type(name: str, value: Any, types: Type | Tuple[Type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " or ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
