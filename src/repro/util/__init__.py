"""Shared utilities: deterministic RNG plumbing, timers, validation.

These helpers are deliberately small and dependency-free so that every
other subpackage can use them without import cycles.
"""

from repro.util.rng import child_seed, make_rng, spawn_rngs
from repro.util.timer import Stopwatch, PhaseTimer
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "child_seed",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "PhaseTimer",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
