"""Deterministic random-number plumbing.

Every stochastic component in the library (reservoirs, generators,
baselines) accepts an integer ``seed`` and derives its own independent
``random.Random`` instance from it. Components that spawn children (e.g.
a sharded clusterer creating per-shard reservoirs) derive *child seeds*
with :func:`child_seed`, which mixes the parent seed with a label so that

* runs are reproducible end-to-end from a single top-level seed, and
* sibling components do not share (and therefore do not perturb) each
  other's random streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List

__all__ = ["child_seed", "make_rng", "spawn_rngs"]

_SEED_BITS = 63
_SEED_MASK = (1 << _SEED_BITS) - 1


def child_seed(parent_seed: int, *labels: object) -> int:
    """Derive a child seed from ``parent_seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the parent seed and the labels'
    ``repr``; it is stable across processes and Python versions (unlike
    ``hash()``, which is salted for strings).

    Parameters
    ----------
    parent_seed:
        The seed of the parent component.
    labels:
        Any number of hashable-by-repr labels identifying the child, e.g.
        ``child_seed(seed, "shard", 3)``.
    """
    digest = hashlib.sha256()
    digest.update(str(int(parent_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _SEED_MASK


def make_rng(seed: int | None) -> random.Random:
    """Return a fresh ``random.Random`` seeded with ``seed``.

    ``None`` yields an OS-entropy-seeded RNG (non-reproducible); callers
    that care about reproducibility should always pass an integer.
    """
    return random.Random(seed)


def spawn_rngs(parent_seed: int, labels: Iterable[object]) -> List[random.Random]:
    """Return one independent RNG per label, derived from ``parent_seed``."""
    return [make_rng(child_seed(parent_seed, label)) for label in labels]
