"""Dataset registry: real fixtures and synthetic stand-ins for the
paper's evaluation graphs (see DESIGN.md for the substitution rationale)."""

from repro.datasets.fixtures import KARATE_EDGES, barbell, karate_club, two_triangles
from repro.datasets.registry import (
    DATASETS,
    Dataset,
    dataset_names,
    dataset_statistics,
    load_dataset,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "KARATE_EDGES",
    "barbell",
    "dataset_names",
    "dataset_statistics",
    "karate_club",
    "load_dataset",
    "two_triangles",
]
