"""Small exact graph fixtures.

Zachary's karate club (public-domain, Zachary 1977) is the one *real*
graph small enough to embed verbatim; it anchors the dataset registry's
synthetic stand-ins with an exact, widely-reproduced instance. The
remaining fixtures are hand-built structures used in tests and examples.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.quality.partition import Partition
from repro.streams.events import Edge

__all__ = [
    "KARATE_EDGES",
    "karate_club",
    "two_triangles",
    "barbell",
]

#: Zachary's karate club, 34 vertices / 78 edges, canonical 0-indexed ids.
KARATE_EDGES: List[Edge] = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
    (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19),
    (1, 21), (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13),
    (2, 27), (2, 28), (2, 32), (3, 7), (3, 12), (3, 13), (4, 6),
    (4, 10), (5, 6), (5, 10), (5, 16), (6, 16), (8, 30), (8, 32),
    (8, 33), (9, 33), (13, 33), (14, 32), (14, 33), (15, 32),
    (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32),
    (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
    (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33),
    (30, 32), (30, 33), (31, 32), (31, 33), (32, 33),
]

_MR_HI = [0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21]
_OFFICER = [9, 14, 15, 18, 20, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33]


def karate_club() -> Tuple[List[Edge], Partition]:
    """Zachary's karate club with the historical two-faction split."""
    truth = Partition.from_clusters([set(_MR_HI), set(_OFFICER)])
    return list(KARATE_EDGES), truth


def two_triangles(bridge: bool = True) -> Tuple[List[Edge], Partition]:
    """Two triangles, optionally joined by one bridge edge."""
    edges: List[Edge] = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    if bridge:
        edges.append((2, 3))
    truth = Partition.from_clusters([{0, 1, 2}, {3, 4, 5}])
    return edges, truth


def barbell(clique_size: int = 5, path_length: int = 3) -> Tuple[List[Edge], Partition]:
    """Two cliques joined by a path — the canonical low-conductance pair."""
    if clique_size < 2:
        raise ValueError("clique_size must be at least 2")
    edges: List[Edge] = []
    left = list(range(clique_size))
    right = list(range(clique_size + path_length, 2 * clique_size + path_length))
    for group in (left, right):
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                edges.append((u, v))
    chain = [left[-1]] + list(range(clique_size, clique_size + path_length)) + [right[0]]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    middle = set(range(clique_size, clique_size + path_length))
    truth = Partition.from_clusters([set(left), middle, set(right)])
    return edges, truth
