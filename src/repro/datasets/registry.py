"""Named datasets: synthetic stand-ins for the paper's real graphs.

The original evaluation ran on real web/social/collaboration graphs.
This environment has no network access, so the registry provides
**synthetic stand-ins with matched summary statistics** (scale, average
degree, community-size skew, mixing). Graph reservoir clustering reacts
only to those statistics — community structure and degree distribution
of the edge stream — so the stand-ins exercise the identical code path
and preserve the experiments' qualitative shapes. Each entry documents
what it imitates.

Datasets are deterministic in (name, seed) and cached on disk under
``.repro_cache/`` so repeated benchmark runs skip regeneration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets.fixtures import karate_club
from repro.quality.partition import Partition
from repro.streams.events import Edge
from repro.streams.generators import planted_partition
from repro.streams.lfr import lfr_graph

__all__ = ["Dataset", "DATASETS", "load_dataset", "dataset_names", "dataset_statistics"]

_CACHE_ENV = "REPRO_CACHE"
_DEFAULT_CACHE = ".repro_cache"


@dataclass(frozen=True)
class Dataset:
    """A named graph with optional ground-truth communities."""

    name: str
    description: str
    edges: List[Edge]
    truth: Optional[Partition]

    @property
    def num_vertices(self) -> int:
        """Number of distinct endpoint vertices."""
        vertices = set()
        for u, v in self.edges:
            vertices.add(u)
            vertices.add(v)
        return len(vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)


@dataclass(frozen=True)
class _Spec:
    description: str
    build: Callable[[int], Tuple[List[Edge], Optional[Partition]]]


def _build_karate(seed: int) -> Tuple[List[Edge], Optional[Partition]]:
    return karate_club()


def _build_email_like(seed: int) -> Tuple[List[Edge], Optional[Partition]]:
    graph = lfr_graph(
        1000, mu=0.3, min_degree=10, max_degree=100,
        min_community=15, max_community=120, seed=seed,
    )
    return graph.edges, graph.truth


def _build_amazon_like(seed: int) -> Tuple[List[Edge], Optional[Partition]]:
    graph = lfr_graph(
        5000, mu=0.08, min_degree=4, max_degree=60,
        min_community=6, max_community=100, seed=seed,
    )
    return graph.edges, graph.truth


def _build_dblp_like(seed: int) -> Tuple[List[Edge], Optional[Partition]]:
    graph = lfr_graph(
        20000, mu=0.18, min_degree=4, max_degree=120,
        min_community=10, max_community=400, seed=seed,
    )
    return graph.edges, graph.truth


def _build_lj_like(seed: int) -> Tuple[List[Edge], Optional[Partition]]:
    graph = planted_partition(
        50000, 200, p_in=0.05, p_out=5.0e-5, seed=seed,
    )
    return graph.edges, graph.truth


DATASETS: Dict[str, _Spec] = {
    "karate": _Spec(
        "Zachary's karate club — real, exact (34 vertices, 78 edges, "
        "two-faction ground truth).",
        _build_karate,
    ),
    "email_like": _Spec(
        "Stand-in for Email-Eu-core-scale graphs: ~1k vertices, dense "
        "(avg degree ~20), mixing mu=0.3, skewed community sizes (LFR-style).",
        _build_email_like,
    ),
    "amazon_like": _Spec(
        "Stand-in for Amazon co-purchase-style graphs: sparse (avg degree "
        "~5), many small well-separated communities, mu=0.08 (LFR-style, "
        "scaled to 5k vertices).",
        _build_amazon_like,
    ),
    "dblp_like": _Spec(
        "Stand-in for DBLP co-authorship-scale graphs: 20k vertices, avg "
        "degree ~6, power-law communities, mu=0.18 (LFR-style, scaled "
        "from DBLP's 317k).",
        _build_dblp_like,
    ),
    "lj_like": _Spec(
        "Stand-in for LiveJournal-scale streams: 50k vertices, 200 "
        "planted communities, avg degree ~15 (SBM; scaled from LJ's 4M).",
        _build_lj_like,
    ),
}


def dataset_names() -> List[str]:
    """All registered dataset names."""
    return sorted(DATASETS)


def _cache_dir() -> Path:
    return Path(os.environ.get(_CACHE_ENV, _DEFAULT_CACHE))


def _cache_paths(name: str, seed: int) -> Tuple[Path, Path]:
    base = _cache_dir() / f"{name}-{seed}"
    return base.with_suffix(".edges"), base.with_suffix(".labels")


def _write_cache(name: str, seed: int, edges: List[Edge], truth: Optional[Partition]) -> None:
    edges_path, labels_path = _cache_paths(name, seed)
    edges_path.parent.mkdir(parents=True, exist_ok=True)
    with open(edges_path, "w", encoding="utf-8") as handle:
        for u, v in edges:
            handle.write(f"{u} {v}\n")
    if truth is not None:
        with open(labels_path, "w", encoding="utf-8") as handle:
            for vertex, label in sorted(truth.labels().items(), key=lambda kv: repr(kv[0])):
                handle.write(f"{vertex} {label}\n")


def _read_cache(name: str, seed: int) -> Optional[Tuple[List[Edge], Optional[Partition]]]:
    edges_path, labels_path = _cache_paths(name, seed)
    if not edges_path.exists():
        return None
    edges: List[Edge] = []
    with open(edges_path, "r", encoding="utf-8") as handle:
        for line in handle:
            a, b = line.split()
            edges.append((int(a), int(b)))
    truth: Optional[Partition] = None
    if labels_path.exists():
        labels: Dict[int, int] = {}
        with open(labels_path, "r", encoding="utf-8") as handle:
            for line in handle:
                vertex, label = line.split()
                labels[int(vertex)] = int(label)
        truth = Partition(labels)
    return edges, truth


def load_dataset(name: str, seed: int = 0, use_cache: bool = True) -> Dataset:
    """Load (generating and caching if needed) a registered dataset."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    if use_cache:
        cached = _read_cache(name, seed)
        if cached is not None:
            edges, truth = cached
            return Dataset(name=name, description=spec.description, edges=edges, truth=truth)
    edges, truth = spec.build(seed)
    if use_cache:
        _write_cache(name, seed, edges, truth)
    return Dataset(name=name, description=spec.description, edges=edges, truth=truth)


def dataset_statistics(dataset: Dataset) -> Dict[str, object]:
    """Summary statistics for the E1 dataset table."""
    n = dataset.num_vertices
    m = dataset.num_edges
    stats: Dict[str, object] = {
        "name": dataset.name,
        "vertices": n,
        "edges": m,
        "avg_degree": round(2 * m / n, 2) if n else 0.0,
    }
    if dataset.truth is not None:
        sizes = dataset.truth.sizes()
        intra = sum(1 for u, v in dataset.edges if dataset.truth.same_cluster(u, v))
        stats["communities"] = dataset.truth.num_clusters
        stats["max_community"] = sizes[0] if sizes else 0
        stats["mixing"] = round(1 - intra / m, 3) if m else 0.0
    else:
        stats["communities"] = "-"
        stats["max_community"] = "-"
        stats["mixing"] = "-"
    return stats
