"""Thin setup.py shim.

The environment has no `wheel` package, so PEP 660 editable installs
(`pip install -e .` with pyproject-only metadata) fail with
"invalid command 'bdist_wheel'". This shim enables the legacy editable
path: `pip install -e . --no-build-isolation --no-use-pep517`.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
