"""Shared helpers for the experiment benchmarks (E1–E10).

Each ``bench_eN_*.py`` regenerates one of the paper's tables/figures
(reconstructed — see DESIGN.md): it measures the core operation with
pytest-benchmark and writes the full experiment rows to
``bench_results/eN.json`` plus a rendered table on stdout (run pytest
with ``-s`` to see it inline; the JSON is always written).
"""

from __future__ import annotations

import platform
import random
import sys
import time
from typing import Dict, Optional

from repro import obs
from repro.bench import ExperimentResult, render_table, save_results
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.datasets import Dataset, load_dataset
from repro.graph import AdjacencyGraph
from repro.quality import (
    Partition,
    average_conductance,
    modularity,
    nmi,
    pairwise_f1,
)
from repro.streams import insert_only_stream

RESULTS_DIR = "bench_results"

#: Every benchmark's randomness is either seeded explicitly (dataset and
#: clusterer seeds) or drawn from the global RNG, which is pinned here
#: at import so two runs of the same benchmark see the same stream.
GLOBAL_RNG_SEED = 0
random.seed(GLOBAL_RNG_SEED)

#: Benchmarks run with metric emission on so every saved record carries
#: the internal counters (events by kind, admissions/evictions, probe
#: budget hits, checkpoint bytes) alongside its wall-clock numbers —
#: emission is batch-granular, so throughput rows are not perturbed.
#: perf_smoke.py disables this explicitly around its measurements.
obs.enable()


def environment_record() -> Dict[str, object]:
    """The reproducibility stamp attached to every saved result record:
    the pinned global RNG seed plus the interpreter and platform that
    produced the numbers (throughput rows are meaningless without
    knowing what ran them)."""
    return {
        "global_rng_seed": GLOBAL_RNG_SEED,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def dataset_events(name: str, seed: int = 0):
    """A dataset plus its shuffled insert-only event stream."""
    dataset = load_dataset(name, seed=seed)
    return dataset, insert_only_stream(dataset.edges, seed=seed)


def run_streaming(
    events, capacity: int, constraint=None, seed: int = 0, **kwargs
) -> StreamingGraphClusterer:
    """Run the streaming clusterer over a finite stream."""
    config_kwargs: Dict = dict(
        reservoir_capacity=max(1, capacity), strict=False, seed=seed
    )
    if constraint is not None:
        config_kwargs["constraint"] = constraint
    config_kwargs.update(kwargs)
    clusterer = StreamingGraphClusterer(ClustererConfig(**config_kwargs))
    clusterer.process(events)
    return clusterer


def score_partition(
    partition: Partition,
    dataset: Dataset,
    graph: Optional[AdjacencyGraph] = None,
    min_cluster: int = 3,
) -> Dict[str, float]:
    """Standard quality row: NMI, pairwise F1, modularity, conductance."""
    if graph is None:
        graph = AdjacencyGraph(dataset.edges)
    merged = partition.merged_small_clusters(min_size=min_cluster)
    row: Dict[str, float] = {
        "clusters": partition.num_clusters,
        "max_size": partition.max_cluster_size,
        "modularity": round(modularity(graph, partition), 3),
        "avg_conductance": round(average_conductance(graph, partition, min_size=10), 3),
    }
    if dataset.truth is not None:
        row["nmi"] = round(nmi(merged, dataset.truth), 3)
        row["f1"] = round(pairwise_f1(merged, dataset.truth), 3)
    return row


def timed(fn):
    """Run ``fn()``; returns (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def finish(result: ExperimentResult) -> None:
    """Persist and print an experiment record (environment-stamped).

    Every record also embeds a snapshot of the default metrics registry,
    so benchmark trajectories (E4 throughput, E13 checkpointing, …)
    carry the internal counters that produced the wall-clock numbers,
    not just the wall-clock numbers themselves.
    """
    result.metadata.setdefault("environment", environment_record())
    result.metadata.setdefault("metrics", obs.default_registry().snapshot())
    save_results(result, RESULTS_DIR)
    print()
    print(render_table(result.rows, title=f"{result.experiment}: {result.description}"))
