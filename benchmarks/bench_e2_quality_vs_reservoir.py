"""E2 — clustering quality vs reservoir size (figure reconstruction).

The paper's central trade-off: a larger edge reservoir gives a denser
sampled sub-graph and therefore better-connected, higher-quality
clusters, at the cost of memory and slightly lower throughput. Swept on
the amazon_like stand-in with the cluster-size bound set near the true
maximum community size (the paper's recommended configuration), with
the unconstrained variant alongside to expose the giant-merge failure
mode the constraint prevents.

Expected shape: quality (NMI/F1) rises with reservoir size for the
constrained variant and saturates; the unconstrained variant peaks at a
small reservoir and then *degrades* as sampled bridge edges glue
communities together.
"""

from bench_common import dataset_events, finish, run_streaming, score_partition
from repro.bench import ExperimentResult
from repro.core import MaxClusterSize
from repro.graph import AdjacencyGraph

FRACTIONS = (0.01, 0.02, 0.05, 0.10, 0.20, 0.33)


def test_e2_quality_vs_reservoir(benchmark):
    dataset, events = dataset_events("amazon_like")
    graph = AdjacencyGraph(dataset.edges)
    m = len(dataset.edges)

    benchmark.pedantic(
        lambda: run_streaming(events, int(0.10 * m), constraint=MaxClusterSize(120)),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        "e2_quality_vs_reservoir",
        "quality vs reservoir size, amazon_like (constrained + unconstrained)",
        metadata={"dataset": "amazon_like", "edges": m},
    )
    for fraction in FRACTIONS:
        capacity = max(1, int(fraction * m))
        bounded = run_streaming(
            events, capacity, constraint=MaxClusterSize(120), seed=1
        )
        free = run_streaming(events, capacity, seed=1)
        bounded_row = score_partition(bounded.snapshot(), dataset, graph)
        free_row = score_partition(free.snapshot(), dataset, graph)
        result.add_row(
            reservoir_pct=round(100 * fraction, 1),
            capacity=capacity,
            nmi_bounded=bounded_row["nmi"],
            f1_bounded=bounded_row["f1"],
            nmi_free=free_row["nmi"],
            f1_free=free_row["f1"],
            max_size_free=free_row["max_size"],
        )
    finish(result)

    rows = result.rows
    # Constrained quality must improve substantially from 1% to 33%.
    assert rows[-1]["f1_bounded"] > rows[0]["f1_bounded"]
    # The unconstrained variant must show the giant-merge pathology.
    assert rows[-1]["max_size_free"] > 10 * 120
