"""E11 — weighted reservoir clustering (extension ablation).

The paper's model is unweighted; :class:`WeightedStreamingClusterer`
samples edges proportionally to weight (Efraimidis–Spirakis). On a
workload where community structure lives in the *weights* — strong
intra-community ties, a numerically large number of weak random
cross ties — uniform sampling admits cross edges at their count rate
and merges everything, while weight-proportional sampling recovers the
tied groups.

Expected shape: weighted NMI >> uniform NMI at equal reservoir budget;
the gap closes as the weight contrast shrinks.
"""

import random

from bench_common import finish
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
from repro.core.weighted import WeightedStreamingClusterer
from repro.quality import Partition, nmi
from repro.streams import add_edge

NUM_GROUPS = 8
GROUP_SIZE = 25
CONTRASTS = (1.0, 4.0, 16.0, 64.0)


def _workload(contrast: float, seed: int):
    """(u, v, weight) triples: strong intra ties, weak cross noise."""
    rng = random.Random(seed)
    triples = []
    n = NUM_GROUPS * GROUP_SIZE
    for _ in range(12000):
        if rng.random() < 0.5:
            group = rng.randrange(NUM_GROUPS)
            base = group * GROUP_SIZE
            u, v = rng.sample(range(base, base + GROUP_SIZE), 2)
            triples.append((u, v, contrast))
        else:
            u, v = rng.sample(range(n), 2)
            if u // GROUP_SIZE != v // GROUP_SIZE:
                triples.append((u, v, 1.0))
    truth = Partition({v: v // GROUP_SIZE for v in range(n)})
    return triples, truth


def test_e11_weighted_sampling(benchmark):
    triples, _ = _workload(16.0, seed=111)
    benchmark.pedantic(
        lambda: WeightedStreamingClusterer(
            ClustererConfig(
                reservoir_capacity=400,
                constraint=MaxClusterSize(GROUP_SIZE + 10),
                strict=False,
                seed=11,
            )
        ).add_edges(triples),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        "e11_weighted",
        "weight-proportional vs uniform sampling, by weight contrast",
    )
    scores = {}
    for contrast in CONTRASTS:
        triples, truth = _workload(contrast, seed=111)
        config = ClustererConfig(
            reservoir_capacity=400,
            constraint=MaxClusterSize(GROUP_SIZE + 10),
            strict=False,
            seed=11,
        )
        weighted = WeightedStreamingClusterer(config).add_edges(triples)
        uniform = StreamingGraphClusterer(config)
        seen = set()
        for u, v, _ in triples:
            edge = (min(u, v), max(u, v))
            if edge not in seen:  # unweighted stream: one add per edge
                seen.add(edge)
                uniform.apply(add_edge(u, v))
        weighted_nmi = nmi(weighted.snapshot().merged_small_clusters(3), truth)
        uniform_nmi = nmi(uniform.snapshot().merged_small_clusters(3), truth)
        scores[contrast] = (weighted_nmi, uniform_nmi)
        cross_sampled = sum(
            1 for u, v in weighted.sampled_edges()
            if u // GROUP_SIZE != v // GROUP_SIZE
        )
        result.add_row(
            weight_contrast=contrast,
            nmi_weighted=round(weighted_nmi, 3),
            nmi_uniform=round(uniform_nmi, 3),
            cross_in_weighted_sample=cross_sampled,
        )
    finish(result)

    # At high contrast the weighted sampler wins decisively; at contrast
    # 1 the two coincide statistically.
    assert scores[64.0][0] > scores[64.0][1] + 0.2
    assert abs(scores[1.0][0] - scores[1.0][1]) < 0.25
