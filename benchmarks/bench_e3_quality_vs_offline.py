"""E3 — clustering quality: streaming vs offline algorithms (table).

The abstract's quality claim: the streaming approach "yields clusterings
with very good quality" compared to offline algorithms that see the
whole graph at once. Reports NMI / pairwise-F1 / modularity / runtime
for the streaming clusterer (paper configuration: reservoir + size
bound) against Louvain, label propagation, spectral, METIS-like
multilevel, and MCL on the two mid-size ground-truth datasets.

Expected shape: offline global optimizers (Louvain) win on absolute
quality; the streaming clusterer lands within a useful margin while
being incremental — the quality/throughput trade-off the paper argues.
"""

import pytest

from bench_common import dataset_events, finish, run_streaming, score_partition, timed
from repro.baselines import (
    label_propagation,
    louvain,
    mcl,
    multilevel_partition,
    spectral_clustering,
)
from repro.bench import ExperimentResult
from repro.core import MaxClusterSize
from repro.graph import AdjacencyGraph

# Per-dataset operating points and expectations. email_like has mixing
# mu = 0.3 — the hard regime for sampled-components clustering (bridge
# edges are 30% of the stream), so its quality floor is set accordingly;
# the quality-vs-mixing degradation is itself part of the reproduced
# shape (offline optimizers barely degrade, the sampler does).
CASES = {
    "email_like": dict(capacity_fraction=0.1, size_bound=120, min_nmi=0.25),
    "amazon_like": dict(capacity_fraction=0.33, size_bound=120, min_nmi=0.5),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_e3_quality_vs_offline(benchmark, name):
    dataset, events = dataset_events(name)
    graph = AdjacencyGraph(dataset.edges)
    k_true = dataset.truth.num_clusters
    settings = CASES[name]
    capacity = int(settings["capacity_fraction"] * len(dataset.edges))
    bound = MaxClusterSize(settings["size_bound"])

    benchmark.pedantic(
        lambda: run_streaming(events, capacity, constraint=bound, seed=1),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        f"e3_quality_{name}",
        f"quality vs offline algorithms on {name}",
        metadata={"dataset": name, "capacity": capacity},
    )

    clusterer, seconds = timed(
        lambda: run_streaming(events, capacity, constraint=bound, seed=1)
    )
    result.add_row(
        algorithm="streaming (reservoir)",
        seconds=round(seconds, 2),
        **score_partition(clusterer.snapshot(), dataset, graph),
    )

    offline = [
        ("louvain", lambda: louvain(graph, seed=1)),
        ("label_propagation", lambda: label_propagation(graph, seed=1)),
        ("spectral", lambda: spectral_clustering(graph, k_true, seed=1)),
        ("multilevel (METIS-like)", lambda: multilevel_partition(graph, k_true, seed=1)),
        ("mcl", lambda: mcl(graph)),
    ]
    for algorithm_name, run in offline:
        partition, seconds = timed(run)
        result.add_row(
            algorithm=algorithm_name,
            seconds=round(seconds, 2),
            **score_partition(partition, dataset, graph),
        )
    finish(result)

    by_name = {row["algorithm"]: row for row in result.rows}
    # Louvain should be the quality ceiling; streaming should be useful.
    assert by_name["louvain"]["nmi"] > 0.8
    assert by_name["streaming (reservoir)"]["nmi"] > settings["min_nmi"]
