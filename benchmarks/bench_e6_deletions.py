"""E6 — deletions and drift: quality tracking under churn (figure).

The paper's stream model includes deletions; this experiment shows the
clusterer *tracking* a changing ground truth. A drifting SBM moves 25%
of the vertices to new communities each phase (deleting stale edges,
adding fresh ones). After every phase we score:

* the streaming clusterer (processed every event incrementally),
* a one-shot offline Louvain computed at phase 0 and never updated,
* a periodic Louvain recomputed once per phase (the affordable offline
  deployment).

Expected shape: streaming quality stays roughly flat across phases; the
stale offline clustering decays monotonically; periodic recompute
matches streaming quality but at E4's throughput cost.
"""

from bench_common import finish
from repro.baselines import louvain
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
from repro.graph import AdjacencyGraph
from repro.quality import pairwise_f1
from repro.streams import drifting_sbm_stream

PHASES = 6


def _phases():
    return drifting_sbm_stream(
        num_vertices=500,
        num_communities=10,
        p_in=0.2,
        p_out=0.0004,
        num_phases=PHASES,
        migrate_fraction=0.25,
        seed=61,
    )


def test_e6_deletion_tracking(benchmark):
    phases = _phases()

    def run_all():
        clusterer = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=5000,
                constraint=MaxClusterSize(80),
                strict=False,
                seed=4,
            )
        )
        for phase in phases:
            clusterer.process(phase.events)
        return clusterer

    benchmark.pedantic(run_all, rounds=3, iterations=1)

    result = ExperimentResult(
        "e6_deletions",
        "quality tracking under community drift (25% migration per phase)",
    )
    clusterer = StreamingGraphClusterer(
        ClustererConfig(
            reservoir_capacity=5000,
            constraint=MaxClusterSize(80),
            strict=False,
            seed=4,
        )
    )
    graph = AdjacencyGraph()
    stale = None
    streaming_scores = []
    stale_scores = []
    for index, phase in enumerate(phases):
        clusterer.process(phase.events)
        for event in phase.events:
            if event.kind.value == "add_edge":
                graph.add_edge(event.u, event.v)
            else:
                graph.remove_edge(event.u, event.v)
        if stale is None:
            stale = louvain(graph, seed=4)
        periodic = louvain(graph, seed=4)
        live = clusterer.snapshot().merged_small_clusters(min_size=3)
        streaming_f1 = pairwise_f1(live, phase.truth)
        stale_f1 = pairwise_f1(stale, phase.truth)
        streaming_scores.append(streaming_f1)
        stale_scores.append(stale_f1)
        result.add_row(
            phase=index,
            events=len(phase.events),
            streaming_f1=round(streaming_f1, 3),
            stale_louvain_f1=round(stale_f1, 3),
            periodic_louvain_f1=round(pairwise_f1(periodic, phase.truth), 3),
            reservoir_deletions=clusterer.stats.sample_deletions,
        )
    finish(result)

    # Streaming holds; the stale clustering decays.
    assert min(streaming_scores) > 0.6
    assert stale_scores[-1] < 0.5 * stale_scores[0]
