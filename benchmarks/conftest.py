"""Shared pytest plumbing for the benchmark suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="cProfile the hot ingestion loop of benchmarks that support "
        "it (currently E4) and print the top-20 functions by cumulative "
        "time; run with -s to see the report",
    )


@pytest.fixture
def profile_requested(request: pytest.FixtureRequest) -> bool:
    """True when the run was started with ``--profile``."""
    return bool(request.config.getoption("--profile"))
