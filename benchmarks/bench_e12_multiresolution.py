"""E12 — multi-resolution clustering (extension ablation).

:class:`MultiResolutionClusterer` runs a bank of reservoirs at
geometrically decreasing capacities over one stream, answering
"how tightly related are u and v?" by the level at which they separate.
Measured here:

* the resolution ladder (clusters per level — must increase as the
  reservoir shrinks),
* the affinity signal: intra-community pairs must separate at finer
  levels than cross-community pairs,
* the per-event overhead vs a single clusterer (≈ the level count).
"""

from bench_common import finish
from repro.bench import ExperimentResult, measure_throughput
from repro.core import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
from repro.core.hierarchy import MultiResolutionClusterer
from repro.streams import insert_only_stream, planted_partition

LEVELS = 4


def test_e12_multiresolution(benchmark):
    graph = planted_partition(600, 6, p_in=0.15, p_out=0.001, seed=121)
    events = insert_only_stream(graph.edges, seed=121)
    config = ClustererConfig(
        reservoir_capacity=len(events),
        constraint=MaxClusterSize(110),  # near the true community size
        strict=False,
        seed=12,
    )

    benchmark.pedantic(
        lambda: MultiResolutionClusterer(config, num_levels=LEVELS, ratio=6.0)
        .process(events),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        "e12_multiresolution",
        f"{LEVELS}-level resolution bank on a 6-community SBM",
    )

    single = StreamingGraphClusterer(config)
    single_outcome = measure_throughput(single, events)
    bank = MultiResolutionClusterer(config, num_levels=LEVELS, ratio=6.0)
    bank_outcome = measure_throughput(bank, events)
    overhead = single_outcome.events_per_second / bank_outcome.events_per_second

    intra_pairs = [(v, v + 6 * k) for v in range(6) for k in (1, 3, 5, 7)]
    cross_pairs = [(v, v + 1 + 6 * k) for v in range(5) for k in (1, 3, 5, 7)]

    def mean_affinity(pairs):
        return sum(bank.affinity(u, v) for u, v in pairs) / len(pairs)

    for level, capacity in enumerate(bank.capacities()):
        snapshot = bank.snapshot(level)
        result.add_row(
            level=level,
            capacity=capacity,
            clusters=snapshot.num_clusters,
            max_cluster=snapshot.max_cluster_size,
        )
    result.metadata.update(
        intra_affinity=round(mean_affinity(intra_pairs), 3),
        cross_affinity=round(mean_affinity(cross_pairs), 3),
        overhead_factor=round(overhead, 2),
        single_events_per_sec=round(single_outcome.events_per_second),
        bank_events_per_sec=round(bank_outcome.events_per_second),
    )
    finish(result)
    print(f"  intra affinity {result.metadata['intra_affinity']} vs "
          f"cross {result.metadata['cross_affinity']}; "
          f"overhead {result.metadata['overhead_factor']}x")

    counts = [row["clusters"] for row in result.rows]
    assert all(b >= a for a, b in zip(counts, counts[1:]))  # finer levels
    assert result.metadata["intra_affinity"] > result.metadata["cross_affinity"]
    assert overhead < 2 * LEVELS  # linear in levels, not worse
