"""E5 — throughput scalability with graph size (figure reconstruction).

The streaming clusterer's per-event cost is amortized poly-logarithmic
in the graph size, so throughput should stay *nearly flat* as the
stream grows from thousands to hundreds of thousands of edges — while
any offline comparator's per-event cost grows linearly (E4 shows that
side). Swept over an SBM family with fixed average degree and fixed
reservoir *fraction*.

Expected shape: events/sec roughly constant (within a small factor)
across a 32x growth in stream length.
"""

from bench_common import finish, run_streaming
from repro.bench import ExperimentResult, measure_throughput
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.streams import insert_only_stream, planted_partition

SIZES = (1000, 2000, 4000, 8000, 16000, 32000)


def _workload(n: int):
    communities = max(4, n // 250)
    graph = planted_partition(
        n, communities, p_in=min(1.0, 10.0 / (n / communities)), p_out=2.0 / n,
        seed=51,
    )
    return insert_only_stream(graph.edges, seed=51)


def test_e5_scalability(benchmark):
    events_mid = _workload(8000)
    benchmark.pedantic(
        lambda: run_streaming(events_mid, len(events_mid) // 10, seed=3),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        "e5_scalability",
        "streaming throughput vs graph size (SBM, fixed avg degree ~10)",
    )
    throughputs = []
    for n in SIZES:
        events = _workload(n)
        clusterer = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=max(1, len(events) // 10), strict=False, seed=3
            )
        )
        outcome = measure_throughput(clusterer, events)
        throughputs.append(outcome.events_per_second)
        result.add_row(
            vertices=n,
            events=len(events),
            events_per_sec=round(outcome.events_per_second),
            us_per_event=round(outcome.microseconds_per_event, 1),
            clusters=clusterer.num_clusters,
        )
    finish(result)

    # Near-flat scaling: 32x more stream, less than 4x throughput loss.
    assert max(throughputs) < 4 * min(throughputs)
