"""CI throughput smoke: fail on large ingestion-speed regressions.

Runs a pinned-seed mini version of experiment E4 (a prefix of the
dblp_like insert-only stream) through the per-event, batched (scalar
and numpy kernels), multiprocess-pipeline and served (columnar frames
over a unix socket) ingestion paths and compares events/sec against
the committed baseline in ``bench_results/perf_smoke_baseline.json``:

* a drop of more than ``TOLERANCE`` (30%) on any path fails the job;
* the batched path must also keep a healthy machine-independent margin
  over the per-event path (ratio check, immune to runner speed), and
  the numpy kernel a margin over the scalar batched path (the two are
  measured as order-balanced back-to-back pairs);
* the pipeline run (2 workers, spawn excluded from the clock) must end
  in exactly the partition sequential sharded execution reaches;
* tracemalloc peak during a batched ingest must stay within
  ``MEMORY_TOLERANCE`` (20%) of the baseline — allocation volume is
  machine-independent, so this check is much tighter than the clocks.

CI runners are slower and noisier than dev machines, so the baseline
stores *this repo's* committed reference numbers and the tolerance is
deliberately loose — the gate catches algorithmic regressions (an
accidentally quadratic loop, a disabled fast path), not 5% jitter.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py             # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --update    # rebaseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_common import dataset_events, environment_record  # noqa: E402

from repro import obs  # noqa: E402
from repro.core import (  # noqa: E402
    ClustererConfig,
    PipelineClusterer,
    ShardedClusterer,
    StreamingGraphClusterer,
)
from repro.serve import ClusterService, ServiceClient  # noqa: E402
from repro.streams.events import EventColumns  # noqa: E402

# bench_common enables metric emission for the experiment benchmarks;
# the smoke's baseline numbers are defined with emission *off* (the
# library default), so switch it back before measuring.
obs.disable()

BASELINE_PATH = Path(__file__).resolve().parent.parent / (
    "bench_results/perf_smoke_baseline.json"
)
SEED = 2
PREFIX_EVENTS = 40000
BATCH_SIZE = 1024
ROUNDS = 3  # best-of, to shed warmup and scheduler noise
TOLERANCE = 0.30  # maximum allowed events/sec regression
MEMORY_TOLERANCE = 0.20  # maximum allowed peak-ingest-memory growth
MIN_BATCH_RATIO = 2.0  # batched must stay >= 2x per-event on any machine
MIN_KERNEL_RATIO = 1.5  # numpy kernel must stay >= 1.5x the scalar batch
PIPELINE_WORKERS = 2  # small pool: the smoke gates routing/framing cost
METRICS_TOLERANCE = 0.03  # max throughput cost of the metrics layer
OVERHEAD_EVENTS = 10000  # shorter prefix: relative sync cost is length-free
OVERHEAD_ROUNDS = 20  # interleaved off/on round pairs for the overhead check


def _ingest(
    events, capacity: int, batch_size: int | None, kernel: str = "scalar"
) -> float:
    clusterer = StreamingGraphClusterer(
        ClustererConfig(
            reservoir_capacity=capacity, strict=False, seed=SEED, kernel=kernel
        )
    )
    start = time.perf_counter()
    clusterer.process(events, batch_size=batch_size)
    return time.perf_counter() - start


def _ingest_pipeline(raw, capacity: int) -> float:
    """Pipeline wall time with worker spawn excluded from the clock.

    Process startup is a fixed fee paid once per run, not an ingestion
    cost, so the pool is up before the timer starts; the trailing
    ``worker_metrics`` round-trip is a barrier that guarantees every
    frame has been decoded and applied before the timer stops.
    """
    config = ClustererConfig(reservoir_capacity=capacity, strict=False, seed=SEED)
    with PipelineClusterer(
        config, PIPELINE_WORKERS, batch_events=BATCH_SIZE
    ) as pipe:
        start = time.perf_counter()
        pipe.process(raw)
        pipe.worker_metrics()
        return time.perf_counter() - start


def _ingest_served(columns, capacity: int) -> float:
    """Served columnar ingest over a unix socket, service spawn excluded.

    The client streams codec-v3 columnar frames (``send_columns``) into
    one tenant of a fresh service and the trailing metrics query is the
    barrier that guarantees every frame has been decoded and applied
    before the timer stops — the smoke's gate on the whole wire path
    (client encode, socket, frame decode, queue, batched apply).
    """
    config = ClustererConfig(reservoir_capacity=capacity, strict=False, seed=SEED)
    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "smoke.sock")
        service = ClusterService(config, path=sock, batch_size=BATCH_SIZE)
        thread = threading.Thread(target=service.run, daemon=True)
        thread.start()
        if not service.started.wait(timeout=30.0):
            raise AssertionError("perf-smoke service failed to start")
        try:
            start = time.perf_counter()
            with ServiceClient(
                sock, tenant="smoke", batch_size=BATCH_SIZE
            ) as client:
                client.send_columns(columns)
                client.metrics()  # barrier: every frame is applied
            return time.perf_counter() - start
        finally:
            service.request_shutdown(0)
            thread.join(timeout=30.0)


def _check_pipeline_partition(raw, capacity: int) -> None:
    """The smoke's pipeline numbers only count if the answer is right."""
    config = ClustererConfig(reservoir_capacity=capacity, strict=False, seed=SEED)
    with PipelineClusterer(
        config, PIPELINE_WORKERS, batch_events=BATCH_SIZE
    ) as pipe:
        pipe.process(raw)
        got = pipe.snapshot()
    reference = ShardedClusterer(config, num_shards=PIPELINE_WORKERS).process(
        list(raw), batch_size=BATCH_SIZE
    )
    if got != reference.snapshot():
        raise AssertionError(
            "pipeline partition diverged from sequential sharded execution"
        )


def measure() -> dict:
    """Best-of-``ROUNDS`` events/sec for the three ingestion paths."""
    _, events = dataset_events("dblp_like", seed=SEED)
    events = events[:PREFIX_EVENTS]
    raw = [(event.kind, event.u, event.v) for event in events]
    capacity = max(1, len(events) // 10)
    per_event = min(_ingest(events, capacity, None) for _ in range(ROUNDS))
    # Paired, order-balanced scalar/numpy batched rounds: each round
    # times both kernels back to back and alternates which goes first,
    # so the reported ratio survives machine-level drift.
    _ingest(raw, capacity, BATCH_SIZE, kernel="numpy")  # numpy warmup
    batched_times, numpy_times = [], []
    for i in range(ROUNDS):
        order = ("scalar", "numpy") if i % 2 == 0 else ("numpy", "scalar")
        for kernel in order:
            seconds = _ingest(raw, capacity, BATCH_SIZE, kernel=kernel)
            (batched_times if kernel == "scalar" else numpy_times).append(seconds)
    batched = min(batched_times)
    numpy_kernel = min(numpy_times)
    _check_pipeline_partition(raw, capacity)
    pipeline = min(_ingest_pipeline(raw, capacity) for _ in range(ROUNDS))
    columns = [
        EventColumns(
            us=[e[1] for e in raw[i : i + BATCH_SIZE]],
            vs=[e[2] for e in raw[i : i + BATCH_SIZE]],
        )
        for i in range(0, len(raw), BATCH_SIZE)
    ]
    served = min(_ingest_served(columns, capacity) for _ in range(ROUNDS))
    return {
        "events": len(events),
        "capacity": capacity,
        "seed": SEED,
        "batch_size": BATCH_SIZE,
        "pipeline_workers": PIPELINE_WORKERS,
        "per_event_events_per_sec": round(len(events) / per_event),
        "batched_events_per_sec": round(len(events) / batched),
        "numpy_kernel_events_per_sec": round(len(events) / numpy_kernel),
        "pipeline_events_per_sec": round(len(events) / pipeline),
        "served_events_per_sec": round(len(events) / served),
    }


def peak_memory() -> dict:
    """tracemalloc peak during one batched ingest of the smoke prefix.

    Unlike the throughput numbers this is nearly machine-independent —
    allocation sizes don't drift with CPU speed — so the gate catches
    structural memory regressions (a lost ``__slots__``, labels leaking
    back into a hot dict, an accidental O(m) retained structure) with a
    tolerance far tighter than the timing checks could afford.
    """
    _, events = dataset_events("dblp_like", seed=SEED)
    events = events[:PREFIX_EVENTS]
    raw = [(event.kind, event.u, event.v) for event in events]
    capacity = max(1, len(events) // 10)
    tracemalloc.start()
    try:
        _ingest(raw, capacity, BATCH_SIZE)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {"peak_ingest_bytes": peak}


def metrics_overhead() -> dict:
    """Throughput cost of the observability layer on the batched path.

    Measures the same pinned-seed ingest with metric emission disabled
    (the library default: one branch per batch) and fully enabled
    (batch-granular counter/gauge sync into the default registry).
    Disabled mode does strictly less work than enabled mode, so showing
    the *enabled* cost stays under ``METRICS_TOLERANCE`` bounds the
    no-op mode's cost a fortiori.

    The measurement is paired and order-balanced: each round runs both
    modes back to back, alternating which goes first, and the gate
    compares best-of-rounds. Interleaving spreads machine-level drift
    (thermal throttling, a background task) over both sides, and
    alternating the within-pair order cancels allocator/cache carryover
    from the preceding run — without it the second position measures a
    systematic several-percent advantage that dwarfs the real cost.
    """
    _, events = dataset_events("dblp_like", seed=SEED)
    events = events[:OVERHEAD_EVENTS]
    raw = [(event.kind, event.u, event.v) for event in events]
    capacity = max(1, len(events) // 10)
    disabled_times, enabled_times = [], []
    try:
        for i in range(OVERHEAD_ROUNDS):
            order = (False, True) if i % 2 else (True, False)
            for run_disabled in order:
                if run_disabled:
                    obs.disable()
                    disabled_times.append(_ingest(raw, capacity, BATCH_SIZE))
                else:
                    obs.enable()
                    enabled_times.append(_ingest(raw, capacity, BATCH_SIZE))
    finally:
        obs.disable()
        obs.default_registry().reset()
    disabled = min(disabled_times)
    enabled = min(enabled_times)
    return {
        "metrics_disabled_events_per_sec": round(len(events) / disabled),
        "metrics_enabled_events_per_sec": round(len(events) / enabled),
        "metrics_overhead_fraction": round(1.0 - disabled / enabled, 4)
        if enabled
        else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline JSON"
    )
    args = parser.parse_args(argv)

    current = measure()
    current.update(peak_memory())
    print(f"per-event: {current['per_event_events_per_sec']:,} ev/s")
    print(f"batched (batch={BATCH_SIZE}): {current['batched_events_per_sec']:,} ev/s")
    print(
        f"numpy kernel (batch={BATCH_SIZE}): "
        f"{current['numpy_kernel_events_per_sec']:,} ev/s"
    )
    print(
        f"pipeline ({PIPELINE_WORKERS} workers): "
        f"{current['pipeline_events_per_sec']:,} ev/s"
    )
    print(
        f"served (columnar, batch={BATCH_SIZE}): "
        f"{current['served_events_per_sec']:,} ev/s"
    )
    print(f"peak ingest memory: {current['peak_ingest_bytes'] / 2**20:.1f} MiB")

    if args.update:
        payload = dict(current)
        payload["environment"] = environment_record()
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key in (
        "per_event_events_per_sec",
        "batched_events_per_sec",
        "numpy_kernel_events_per_sec",
        "pipeline_events_per_sec",
        "served_events_per_sec",
    ):
        floor = baseline[key] * (1.0 - TOLERANCE)
        status = "ok" if current[key] >= floor else "REGRESSION"
        print(
            f"{key}: {current[key]:,} vs baseline {baseline[key]:,} "
            f"(floor {floor:,.0f}) {status}"
        )
        if current[key] < floor:
            failures.append(key)

    ratio = current["batched_events_per_sec"] / current["per_event_events_per_sec"]
    print(f"batched/per-event ratio: {ratio:.2f}x (floor {MIN_BATCH_RATIO}x)")
    if ratio < MIN_BATCH_RATIO:
        failures.append("batched/per-event ratio")

    kernel_ratio = (
        current["numpy_kernel_events_per_sec"] / current["batched_events_per_sec"]
    )
    print(
        f"numpy/scalar kernel ratio: {kernel_ratio:.2f}x "
        f"(floor {MIN_KERNEL_RATIO}x)"
    )
    if kernel_ratio < MIN_KERNEL_RATIO:
        failures.append("numpy/scalar kernel ratio")

    ceiling = baseline["peak_ingest_bytes"] * (1.0 + MEMORY_TOLERANCE)
    status = "ok" if current["peak_ingest_bytes"] <= ceiling else "REGRESSION"
    print(
        f"peak_ingest_bytes: {current['peak_ingest_bytes']:,} vs baseline "
        f"{baseline['peak_ingest_bytes']:,} (ceiling {ceiling:,.0f}) {status}"
    )
    if current["peak_ingest_bytes"] > ceiling:
        failures.append("peak ingest memory")

    overhead = metrics_overhead()
    print(
        f"metrics overhead: {overhead['metrics_overhead_fraction']:+.1%} "
        f"({overhead['metrics_disabled_events_per_sec']:,} ev/s off, "
        f"{overhead['metrics_enabled_events_per_sec']:,} ev/s on, "
        f"ceiling {METRICS_TOLERANCE:.0%})"
    )
    if overhead["metrics_overhead_fraction"] > METRICS_TOLERANCE:
        failures.append("metrics overhead")

    if failures:
        print(f"perf smoke FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
