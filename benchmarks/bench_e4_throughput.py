"""E4 — update throughput: streaming vs offline recompute (headline table).

The abstract's headline: "orders of magnitude higher throughput, when
compared to offline algorithms". An offline algorithm that must keep
its clustering fresh within K stream updates pays a full O(graph)
recomputation every K events; the streaming clusterer pays amortized
poly-log per event.

Reported on the dblp_like stand-in (20k vertices / 84k edges):

* streaming ingestion throughput (events/second), and
* the periodic-recompute baselines at freshness K ∈ {5000, 1000, 200},
  measured on a stream prefix (their cost per event *grows* with the
  graph, so prefix numbers flatter them), and
* the fully-fresh baseline (K = 1), whose throughput is 1 / (one full
  run on the final graph) — measured directly, no extrapolation.

Expected shape: streaming sits 3–5 orders of magnitude above the K=1
baselines and 1–2 above practical K; this is the paper's headline gap.
"""

from bench_common import dataset_events, finish, run_streaming, timed
from repro.baselines import PeriodicRecomputeClusterer, label_propagation, louvain
from repro.bench import ExperimentResult, measure_throughput
from repro.graph import AdjacencyGraph

PREFIX = 20000  # events given to the periodic baselines


def test_e4_throughput(benchmark):
    dataset, events = dataset_events("dblp_like")
    capacity = len(events) // 10

    def ingest():
        return run_streaming(events, capacity, seed=2)

    benchmark.pedantic(ingest, rounds=3, iterations=1)

    result = ExperimentResult(
        "e4_throughput",
        "update throughput on dblp_like (20k vertices, 84k edge events)",
        metadata={"events": len(events), "capacity": capacity},
    )

    clusterer, seconds = timed(ingest)
    result.add_row(
        algorithm="streaming (reservoir)",
        freshness_events=1,
        events_per_sec=round(len(events) / seconds),
        us_per_event=round(1e6 * seconds / len(events), 1),
        speedup_vs_fresh_louvain="(baseline below)",
    )

    prefix = events[:PREFIX]
    for name, algorithm, interval in [
        ("louvain", louvain, 5000),
        ("louvain", louvain, 1000),
        ("label_propagation", label_propagation, 1000),
        ("louvain", louvain, 200),
    ]:
        offline = PeriodicRecomputeClusterer(algorithm, interval)
        outcome = measure_throughput(offline, prefix)
        result.add_row(
            algorithm=f"periodic {name}",
            freshness_events=interval,
            events_per_sec=round(outcome.events_per_second),
            us_per_event=round(outcome.microseconds_per_event, 1),
            speedup_vs_fresh_louvain="",
        )

    # Fully fresh (K=1) offline: one full run on the final graph bounds
    # the per-event cost from below.
    graph = AdjacencyGraph(dataset.edges)
    for name, run in [
        ("louvain", lambda: louvain(graph, seed=1)),
        ("label_propagation", lambda: label_propagation(graph, seed=1)),
    ]:
        _, run_seconds = timed(run)
        result.add_row(
            algorithm=f"fresh {name} (K=1)",
            freshness_events=1,
            events_per_sec=round(1.0 / run_seconds, 2),
            us_per_event=round(1e6 * run_seconds, 1),
            speedup_vs_fresh_louvain="",
        )

    streaming_tp = result.rows[0]["events_per_sec"]
    fresh_louvain_tp = next(
        row["events_per_sec"]
        for row in result.rows
        if row["algorithm"] == "fresh louvain (K=1)"
    )
    gap = streaming_tp / fresh_louvain_tp
    result.rows[0]["speedup_vs_fresh_louvain"] = f"{gap:,.0f}x"
    result.metadata["headline_gap"] = gap
    finish(result)

    # Orders of magnitude at equal freshness; >10x even at lax freshness.
    assert gap > 1000
    practical = next(
        row for row in result.rows
        if row["algorithm"] == "periodic louvain" and row["freshness_events"] == 200
    )
    assert streaming_tp > 10 * practical["events_per_sec"]
