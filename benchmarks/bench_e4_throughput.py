"""E4 — update throughput: streaming vs offline recompute (headline table).

The abstract's headline: "orders of magnitude higher throughput, when
compared to offline algorithms". An offline algorithm that must keep
its clustering fresh within K stream updates pays a full O(graph)
recomputation every K events; the streaming clusterer pays amortized
poly-log per event.

Reported on the dblp_like stand-in (20k vertices / 84k edges):

* streaming ingestion throughput (events/second), and
* the periodic-recompute baselines at freshness K ∈ {5000, 1000, 200},
  measured on a stream prefix (their cost per event *grows* with the
  graph, so prefix numbers flatter them), and
* the fully-fresh baseline (K = 1), whose throughput is 1 / (one full
  run on the final graph) — measured directly, no extrapolation.

Expected shape: streaming sits 3–5 orders of magnitude above the K=1
baselines and 1–2 above practical K; this is the paper's headline gap.

On top of the per-event headline row, the batch-size sweep measures the
batched ingestion fast path (``apply_many`` over raw event tuples) at
batch sizes 1, 64, 1024, and 8192 and asserts it delivers at least 3×
the per-event throughput at batch >= 1024. Run with ``--profile -s`` to
cProfile the batched hot loop (top-20 by cumulative time).
"""

import cProfile
import pstats

from bench_common import dataset_events, finish, run_streaming, timed
from repro.baselines import PeriodicRecomputeClusterer, label_propagation, louvain
from repro.bench import ExperimentResult, measure_throughput
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.graph import AdjacencyGraph

PREFIX = 20000  # events given to the periodic baselines
BATCH_SIZES = (1, 64, 1024, 8192)
KERNELS = ("scalar", "numpy")
BATCH_SPEEDUP_FLOOR = 3.0  # required at batch >= 1024
KERNEL_SPEEDUP_FLOOR = 3.0  # numpy vs scalar kernel at batch 8192


def test_e4_throughput(benchmark, profile_requested):
    dataset, events = dataset_events("dblp_like")
    capacity = len(events) // 10

    def ingest():
        return run_streaming(events, capacity, seed=2)

    benchmark.pedantic(ingest, rounds=3, iterations=1)

    result = ExperimentResult(
        "e4_throughput",
        "update throughput on dblp_like (20k vertices, 84k edge events)",
        metadata={"events": len(events), "capacity": capacity},
    )

    clusterer, seconds = timed(ingest)
    per_event_tp = len(events) / seconds
    result.add_row(
        algorithm="streaming (reservoir)",
        freshness_events=1,
        events_per_sec=round(per_event_tp),
        us_per_event=round(1e6 * seconds / len(events), 1),
        speedup_vs_fresh_louvain="(baseline below)",
    )

    # -- Batched ingestion sweep ---------------------------------------
    # Same stream as raw (kind, u, v) tuples through apply_many, once
    # per execution kernel. The scalar kernel's final reservoir must be
    # identical to the per-event run (the bit-exact equivalence
    # contract), so its rows measure pure overhead removal; the numpy
    # kernel draws batched PCG64 decisions — distribution-equivalent,
    # deliberately not bit-identical — so it is excluded from the
    # reservoir-equality assert. Each (batch, rep) times both kernels
    # back to back in alternating order (paired A/B), so machine drift
    # lands on both sides and the reported ratio is honest.
    raw_events = [(event.kind, event.u, event.v) for event in events]

    def make_batched(kernel, batch_size):
        def ingest_batched():
            batched = StreamingGraphClusterer(
                ClustererConfig(
                    reservoir_capacity=max(1, capacity),
                    strict=False,
                    seed=2,
                    kernel=kernel,
                )
            )
            batched.process(raw_events, batch_size=batch_size)
            return batched

        return ingest_batched

    # Untimed warmup: first-touch numpy import and kernel caches.
    make_batched("numpy", 1024)()
    batched_tp = {}
    for batch_size in BATCH_SIZES:
        runs = {k: make_batched(k, batch_size) for k in KERNELS}
        best = {k: float("inf") for k in KERNELS}
        for rep in range(3):
            order = KERNELS if rep % 2 == 0 else KERNELS[::-1]
            for kernel in order:
                best[kernel] = min(best[kernel], timed(runs[kernel])[1])
        for kernel in KERNELS:
            batched_tp[kernel, batch_size] = len(events) / best[kernel]
            result.add_row(
                algorithm=(
                    f"streaming (batched, kernel={kernel}, "
                    f"batch={batch_size})"
                ),
                freshness_events=batch_size,
                events_per_sec=round(batched_tp[kernel, batch_size]),
                us_per_event=round(1e6 * best[kernel] / len(events), 1),
                speedup_vs_fresh_louvain="",
            )
    assert sorted(make_batched("scalar", 8192)().reservoir_edges()) == sorted(
        clusterer.reservoir_edges()
    )
    result.metadata["batched_speedup_at_1024"] = round(
        batched_tp["scalar", 1024] / per_event_tp, 2
    )
    result.metadata["numpy_kernel_speedup_at_8192"] = round(
        batched_tp["numpy", 8192] / batched_tp["scalar", 8192], 2
    )

    if profile_requested:
        profiler = cProfile.Profile()
        profiler.enable()
        make_batched("numpy", 1024)()
        profiler.disable()
        print()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)

    prefix = events[:PREFIX]
    for name, algorithm, interval in [
        ("louvain", louvain, 5000),
        ("louvain", louvain, 1000),
        ("label_propagation", label_propagation, 1000),
        ("louvain", louvain, 200),
    ]:
        offline = PeriodicRecomputeClusterer(algorithm, interval)
        outcome = measure_throughput(offline, prefix)
        result.add_row(
            algorithm=f"periodic {name}",
            freshness_events=interval,
            events_per_sec=round(outcome.events_per_second),
            us_per_event=round(outcome.microseconds_per_event, 1),
            speedup_vs_fresh_louvain="",
        )

    # Fully fresh (K=1) offline: one full run on the final graph bounds
    # the per-event cost from below.
    graph = AdjacencyGraph(dataset.edges)
    for name, run in [
        ("louvain", lambda: louvain(graph, seed=1)),
        ("label_propagation", lambda: label_propagation(graph, seed=1)),
    ]:
        _, run_seconds = timed(run)
        result.add_row(
            algorithm=f"fresh {name} (K=1)",
            freshness_events=1,
            events_per_sec=round(1.0 / run_seconds, 2),
            us_per_event=round(1e6 * run_seconds, 1),
            speedup_vs_fresh_louvain="",
        )

    streaming_tp = result.rows[0]["events_per_sec"]
    fresh_louvain_tp = next(
        row["events_per_sec"]
        for row in result.rows
        if row["algorithm"] == "fresh louvain (K=1)"
    )
    gap = streaming_tp / fresh_louvain_tp
    result.rows[0]["speedup_vs_fresh_louvain"] = f"{gap:,.0f}x"
    result.metadata["headline_gap"] = gap
    finish(result)

    # Orders of magnitude at equal freshness; >10x even at lax freshness.
    assert gap > 1000
    practical = next(
        row for row in result.rows
        if row["algorithm"] == "periodic louvain" and row["freshness_events"] == 200
    )
    assert streaming_tp > 10 * practical["events_per_sec"]
    # The batched fast path must pay for itself: >= 3x per-event
    # throughput at batch >= 1024 on this add-only workload.
    for batch_size in (1024, 8192):
        scalar_tp = batched_tp["scalar", batch_size]
        assert scalar_tp >= BATCH_SPEEDUP_FLOOR * per_event_tp, (
            f"batch={batch_size}: {scalar_tp:.0f} ev/s < "
            f"{BATCH_SPEEDUP_FLOOR}x per-event {per_event_tp:.0f} ev/s"
        )
    # And the numpy kernel must pay for *itself* on top of the batched
    # scalar path (paired A/B above, so this ratio is drift-free).
    kernel_gain = batched_tp["numpy", 8192] / batched_tp["scalar", 8192]
    assert kernel_gain >= KERNEL_SPEEDUP_FLOOR, (
        f"numpy kernel at batch 8192: {kernel_gain:.2f}x < "
        f"{KERNEL_SPEEDUP_FLOOR}x over the scalar kernel"
    )
