"""E1 — dataset statistics table (stands in for the paper's Table 1).

Regenerates the evaluation datasets and reports vertices, edges, average
degree, community count, and mixing for each. The pytest-benchmark
measurement is the generation cost of the mid-size LFR stand-in (the
dominant setup cost of the quality experiments).
"""

from bench_common import finish
from repro.bench import ExperimentResult
from repro.datasets import dataset_names, dataset_statistics, load_dataset
from repro.streams import lfr_graph


def test_e1_dataset_table(benchmark):
    benchmark.pedantic(
        lambda: lfr_graph(5000, mu=0.08, min_degree=4, max_degree=60,
                          min_community=6, max_community=100, seed=123),
        rounds=3,
        iterations=1,
    )
    result = ExperimentResult(
        "e1_datasets",
        "evaluation datasets (synthetic stand-ins; see DESIGN.md)",
    )
    for name in dataset_names():
        dataset = load_dataset(name)
        result.add_row(**dataset_statistics(dataset))
    finish(result)
    assert len(result.rows) == len(dataset_names())
