"""E9 — ablations of the design choices DESIGN.md calls out.

(a) **Deletion handling in the reservoir.** Random pairing (the paper's
    building block: uniform under deletions, no graph access) vs.
    resample-from-graph (rebuilds the sample on underflow — restores
    size instantly but costs O(m) per rebuild and needs the full edge
    set in memory). Measured on a sliding-window stream where every
    arrival eventually becomes a deletion.

(b) **Dynamic connectivity backend.** HDT (amortized O(log² n)) vs. the
    naive BFS structure (O(component) per split check) under the same
    deletion-heavy stream.

Expected shapes: random pairing sustains higher throughput than
periodic resampling at comparable quality; HDT and naive are comparable
at small scale with HDT pulling ahead as components grow (constants in
pure Python are visible — the asymptotic gap is the point).
"""

from bench_common import finish
from repro.bench import ExperimentResult, measure_throughput
from repro.core import (
    ClustererConfig,
    DeletionPolicy,
    SlidingWindowClusterer,
    StreamingGraphClusterer,
)
from repro.streams import insert_only_stream, planted_partition


def _window_workload():
    graph = planted_partition(2000, 10, p_in=0.05, p_out=0.0005, seed=91)
    # Repeat the stream 3x so most edges get added, expired, re-added.
    events = insert_only_stream(graph.edges, seed=91)
    more = insert_only_stream(graph.edges, seed=92)
    return events + more


def test_e9a_deletion_policy(benchmark):
    events = _window_workload()

    def run(policy, threshold=0.5):
        window = SlidingWindowClusterer(
            ClustererConfig(
                reservoir_capacity=1500,
                deletion_policy=policy,
                resample_threshold=threshold,
                strict=False,
                seed=7,
            ),
            window=5000,
        )
        return window, measure_throughput(window, events)

    benchmark.pedantic(
        lambda: run(DeletionPolicy.RANDOM_PAIRING), rounds=3, iterations=1
    )

    result = ExperimentResult(
        "e9a_deletion_policy",
        "reservoir deletion handling on a sliding-window stream",
    )
    for label, policy, threshold in [
        ("random pairing (paper)", DeletionPolicy.RANDOM_PAIRING, 0.5),
        ("resample on underflow (50%)", DeletionPolicy.RESAMPLE, 0.5),
        ("resample on underflow (90%)", DeletionPolicy.RESAMPLE, 0.9),
    ]:
        window, outcome = run(policy, threshold)
        result.add_row(
            policy=label,
            events_per_sec=round(outcome.events_per_second),
            us_per_event=round(outcome.microseconds_per_event, 1),
            resamples=window.inner.stats.resamples,
            final_sample=window.inner.reservoir_size,
            clusters=window.num_clusters,
        )
    finish(result)

    rows = {row["policy"]: row for row in result.rows}
    pairing = rows["random pairing (paper)"]
    aggressive = rows["resample on underflow (90%)"]
    assert pairing["resamples"] == 0
    assert aggressive["resamples"] >= 1
    assert pairing["events_per_sec"] > aggressive["events_per_sec"]


def _cycle_churn_workload(n: int = 3000, churn: int = 4000):
    """Adversarial for BFS connectivity: a fully-sampled n-cycle with
    single-edge delete/re-add churn. Deleting a cycle edge leaves a
    Hamiltonian path, so the BFS split check costs O(n) while HDT pays
    O(log² n)."""
    import random

    from repro.streams import add_edge, delete_edge

    ring = [(i, (i + 1) % n) for i in range(n)]
    rng = random.Random(5)
    events = [add_edge(u, v) for u, v in ring]
    for _ in range(churn):
        u, v = ring[rng.randrange(n)]
        events.append(delete_edge(u, v))
        events.append(add_edge(u, v))
    return events


def test_e9b_connectivity_backend(benchmark):
    window_events = _window_workload()
    cycle_events = _cycle_churn_workload()

    def run_window(backend):
        window = SlidingWindowClusterer(
            ClustererConfig(
                reservoir_capacity=1500,
                connectivity_backend=backend,
                strict=False,
                seed=7,
            ),
            window=5000,
        )
        return window, measure_throughput(window, window_events)

    def run_cycle(backend):
        clusterer = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=3000,
                connectivity_backend=backend,
                strict=False,
                seed=9,
            )
        )
        return clusterer, measure_throughput(clusterer, cycle_events)

    benchmark.pedantic(lambda: run_window("hdt"), rounds=3, iterations=1)

    result = ExperimentResult(
        "e9b_connectivity_backend",
        "dynamic connectivity backend: typical churn vs adversarial cycle",
    )
    partitions = {}
    throughput = {}
    for backend in ("hdt", "naive"):
        window, outcome = run_window(backend)
        partitions[backend] = window.snapshot()
        result.add_row(
            workload="window churn (small components)",
            backend=backend,
            events_per_sec=round(outcome.events_per_second),
            us_per_event=round(outcome.microseconds_per_event, 1),
            splits=window.inner.stats.component_splits,
        )
    for backend in ("hdt", "naive"):
        clusterer, outcome = run_cycle(backend)
        throughput[backend] = outcome.events_per_second
        result.add_row(
            workload="cycle churn (adversarial)",
            backend=backend,
            events_per_sec=round(outcome.events_per_second),
            us_per_event=round(outcome.microseconds_per_event, 1),
            splits=clusterer.stats.component_splits,
        )
    finish(result)

    # Identical seeds → identical sampling decisions → identical clusters.
    assert partitions["hdt"] == partitions["naive"]
    # On the adversarial structure the asymptotics win despite Python
    # constants (on typical small-component churn, naive's constants win
    # — both rows are the reported finding).
    assert throughput["hdt"] > throughput["naive"]
