"""E7 — parallel scaling by hash-sharding (figure reconstruction).

The abstract: the algorithm "can be easily parallelized". Shards ingest
disjoint hash-partitions of the edge stream with zero coordination;
clusters are the components of the union of shard samples, merged at
query time with a cheap union-find pass.

Reported per shard count W ∈ {1, 2, 4, 8}:

* shard balance = total events / busiest shard — the speedup a W-core
  machine achieves (ingestion is embarrassingly parallel), measured,
  not modeled;
* merge cost — the wall-clock of the query-time component merge;
* merged clustering quality (to show sharding does not hurt quality).

This host has a single core, so wall-clock speedup cannot be observed
directly; the balance column is the hardware-independent quantity (see
DESIGN.md substitutions). Expected shape: balance ≈ W, flat quality.
"""

from bench_common import dataset_events, finish, timed
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, MaxClusterSize, ShardedClusterer
from repro.quality import nmi

SHARDS = (1, 2, 4, 8)


def test_e7_parallel_scaling(benchmark):
    dataset, events = dataset_events("amazon_like")
    config = ClustererConfig(
        reservoir_capacity=len(events) // 3,
        constraint=MaxClusterSize(120),
        strict=False,
        seed=5,
    )

    benchmark.pedantic(
        lambda: ShardedClusterer(config, num_shards=4).process(events),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        "e7_parallel",
        "shard scaling on amazon_like (balance = speedup on W cores)",
    )
    for shards in SHARDS:
        sharded = ShardedClusterer(config, num_shards=shards).process(events)
        merged, merge_seconds = timed(sharded.snapshot)
        quality = nmi(merged.merged_small_clusters(min_size=3), dataset.truth)
        result.add_row(
            shards=shards,
            busiest_shard_events=max(sharded.shard_events),
            speedup_on_w_cores=round(sharded.shard_balance, 2),
            merge_ms=round(1000 * merge_seconds, 1),
            merged_nmi=round(quality, 3),
        )
    finish(result)

    rows = {row["shards"]: row for row in result.rows}
    assert rows[4]["speedup_on_w_cores"] > 3.5
    assert rows[8]["speedup_on_w_cores"] > 6.5
    # Sharding must not collapse quality.
    assert rows[8]["merged_nmi"] > 0.7 * rows[1]["merged_nmi"]
