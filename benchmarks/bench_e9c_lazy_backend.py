"""E9c — the lazy connectivity backend's cost model (ablation).

``LazyRebuildConnectivity`` moves all deletion cost to query time: a
firehose consumer that snapshots rarely should ingest at near
union-find speed. Measured on a deletion-heavy (sliding-window) stream
under two query patterns:

* ingest-only (single snapshot at the end) — lazy's home turf;
* query-per-100-events — the rebuild-per-query regime where the
  always-current backends win.

Expected shape: lazy >> naive ≥ hdt on ingest-only; the ordering
flips as query frequency rises.
"""

from bench_common import finish
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, SlidingWindowClusterer
from repro.streams import insert_only_stream, planted_partition
from repro.util.timer import Stopwatch

QUERY_EVERY = 100


def _workload():
    graph = planted_partition(2000, 10, p_in=0.05, p_out=0.0005, seed=93)
    return insert_only_stream(graph.edges, seed=93) + insert_only_stream(
        graph.edges, seed=94
    )


def _run(backend: str, events, query_every: int | None):
    window = SlidingWindowClusterer(
        ClustererConfig(
            reservoir_capacity=1500,
            connectivity_backend=backend,
            strict=False,
            seed=7,
        ),
        window=5000,
    )
    watch = Stopwatch().start()
    for index, event in enumerate(events):
        window.apply(event)
        if query_every is not None and index % query_every == 0:
            window.inner.num_clusters  # noqa: B018 - the query under test
    seconds = watch.stop()
    return window, seconds


def test_e9c_lazy_backend_cost_model(benchmark):
    events = _workload()
    benchmark.pedantic(lambda: _run("lazy", events, None), rounds=3, iterations=1)

    result = ExperimentResult(
        "e9c_lazy_backend",
        "lazy vs eager backends under two query patterns (window churn)",
    )
    throughput = {}
    for pattern, query_every in (("ingest-only", None), (f"query/{QUERY_EVERY}", QUERY_EVERY)):
        for backend in ("lazy", "naive", "hdt"):
            window, seconds = _run(backend, events, query_every)
            events_per_sec = round(len(events) / seconds)
            throughput[(pattern, backend)] = events_per_sec
            row = {
                "pattern": pattern,
                "backend": backend,
                "events_per_sec": events_per_sec,
                "clusters": window.num_clusters,
            }
            inner_conn = window.inner._conn
            row["rebuilds"] = getattr(inner_conn, "rebuilds", "-")
            result.add_row(**row)
    finish(result)

    # Lazy dominates when queries are rare...
    assert throughput[("ingest-only", "lazy")] > throughput[("ingest-only", "hdt")]
    assert throughput[("ingest-only", "lazy")] > throughput[("ingest-only", "naive")]
    # ...and pays for it when they are frequent.
    assert (
        throughput[(f"query/{QUERY_EVERY}", "lazy")]
        < throughput[("ingest-only", "lazy")]
    )
