"""E5b — pipeline scaling: persistent workers vs single-process batched.

The multiprocess pipeline (:mod:`repro.core.pipeline`) overlaps three
stages: the parent parses/routes/frames events while W long-lived worker
processes decode and cluster their shards. Its throughput ceiling is the
busiest *stage*, not the sum of stages.

Reported per worker count W ∈ {1, 2, 4, 8}, over the E4 workload
(dblp_like, batched at 1024):

* producer CPU — parent-side routing + framing cost for the whole
  stream (``time.process_time`` delta);
* busiest-worker CPU — max per-worker ``busy_seconds`` from the worker
  metrics channel (decode + apply);
* projected pipelined speedup — single-process batched CPU time divided
  by the busiest stage's CPU time: the throughput multiple on a machine
  with ≥ W+1 free cores, where stages genuinely overlap;
* host wall-clock, reported honestly.

This host has a single core (same substitution as E7 — see DESIGN.md):
all stages multiplex one core, so observed wall-clock cannot beat the
baseline and the hardware-independent per-stage CPU times are the
quantity the sweep records and gates on. The floor asserted below: at
W = 4 the projected speedup must be ≥ 2× the single-process batched
path, and the W = 4 pipeline partition must equal sequential sharded
execution (the equivalence contract from ``tests/test_pipeline.py``).
"""

import time

from bench_common import dataset_events, finish
from repro.bench import ExperimentResult
from repro.core import (
    ClustererConfig,
    PipelineClusterer,
    ShardedClusterer,
    StreamingGraphClusterer,
)

WORKERS = (1, 2, 4, 8)
BATCH = 1024
SPEEDUP_FLOOR = 2.0  # projected, at 4 workers


def test_e5b_pipeline_scaling(benchmark):
    _, events = dataset_events("dblp_like")
    raw = [(event.kind, event.u, event.v) for event in events]
    capacity = len(events) // 10
    config = ClustererConfig(reservoir_capacity=capacity, strict=False, seed=2)

    def single():
        clusterer = StreamingGraphClusterer(config)
        clusterer.process(raw, batch_size=BATCH)
        return clusterer

    benchmark.pedantic(single, rounds=3, iterations=1)

    cpu0, wall0 = time.process_time(), time.perf_counter()
    single()
    baseline_cpu = time.process_time() - cpu0
    baseline_wall = time.perf_counter() - wall0

    result = ExperimentResult(
        "e5b_pipeline",
        "pipeline scaling on dblp_like (projected = speedup with >= W+1 cores)",
        metadata={
            "events": len(raw),
            "capacity": capacity,
            "batch_events": BATCH,
            "baseline": "single-process batched (batch=1024)",
            "baseline_cpu_seconds": round(baseline_cpu, 3),
            "baseline_wall_seconds": round(baseline_wall, 3),
            "note": "1-core host: projected speedup is CPU-accounted "
            "per stage; wall-clock cannot overlap here",
        },
    )

    projected = {}
    for workers in WORKERS:
        with PipelineClusterer(config, workers, batch_events=BATCH) as pipe:
            cpu0, wall0 = time.process_time(), time.perf_counter()
            pipe.process(raw)
            producer_cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
            busy = [m["busy_seconds"] for m in pipe.worker_metrics()]
            if workers == 4:
                reference = ShardedClusterer(config, num_shards=4).process(
                    list(raw), batch_size=BATCH
                )
                assert pipe.snapshot() == reference.snapshot(), (
                    "pipeline partition diverged from sequential sharded"
                )
        bottleneck = max(producer_cpu, max(busy))
        projected[workers] = baseline_cpu / bottleneck
        result.add_row(
            workers=workers,
            producer_cpu_s=round(producer_cpu, 3),
            busiest_worker_cpu_s=round(max(busy), 3),
            worker_cpu_total_s=round(sum(busy), 3),
            projected_speedup=round(projected[workers], 2),
            host_wall_s=round(wall, 3),
        )
    finish(result)

    assert projected[4] >= SPEEDUP_FLOOR, (
        f"projected pipeline speedup at 4 workers {projected[4]:.2f}x "
        f"is below the {SPEEDUP_FLOOR}x floor"
    )
