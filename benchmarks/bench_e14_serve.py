"""E14 — service-loop overhead on the columnar wire path (extension).

The streaming service (`repro.serve`) puts a socket, a wire codec and a
per-tenant queue between the producer and the clusterer. The number
that matters operationally is the *tax*: events/sec through one socket
tenant versus the same stream applied inline with the same kernel and
the same batch boundaries. With codec-v3 columnar frames the wire path
is frame-to-kernel — `np.frombuffer` straight into the batch kernel —
so the tax is asserted, not just observed: ≤ 20% per kernel, and the
served numpy kernel at least 2.5x the served scalar kernel.

Methodology (see docs/performance.md):

* **Paired A/B.** Inline and served runs of the same kernel are
  interleaved and order-balanced (A/B then B/A), best-of-3 each, in one
  process, so machine drift hits both sides equally.
* **Pre-encoded frames.** The stream is encoded into wire frames once,
  outside every timed region, and replayed verbatim per run
  (`ServiceClient.send_frames`). Client-side encoding shares the GIL
  with the server in a same-process benchmark, so timing it in-band
  would charge the server for producer work that a deployment runs on
  another machine; it is measured separately as the `client_encode`
  row.
* **Frame = batch.** Frames carry exactly ``BATCH`` events (asserted),
  matching the server's ``--batch-size``, so the coalescer never moves
  a boundary and the served numpy partition is deterministic and equal
  to the inline numpy run at the same boundaries. Every served tenant's
  snapshot is asserted against the inline snapshot (outside the timed
  region — snapshot rendering is not ingest).

Expected shape: the scalar kernel pays mostly for its own per-event
apply loop, so the wire adds a modest fraction; the numpy kernel is
fast enough that only the (vectorized) decode and queue hops are left
to pay, and the tax drops to single digits. Concurrent tenants share
one drain loop, so aggregate throughput saturates rather than scales.
"""

import gc
import os
import tempfile
import threading

from bench_common import finish, timed
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.datasets import load_dataset
from repro.serve import ClusterService, ServiceClient
from repro.serve.protocol import DEFAULT_MAX_WIRE_BYTES, render_snapshot
from repro.streams import insert_only_columns
from repro.streams.codec import FrameEncoder

CAPACITY = 5000
BATCH = 8192
REPS = 3
KERNELS = ("scalar", "numpy")
TENANT_COUNTS = (2, 4)

#: Asserted floors — the E14 gate. Regressions on the wire path fail
#: the benchmark run rather than just shifting a number in the JSON.
MAX_TAX_PCT = 20.0
MIN_SERVED_NUMPY_SPEEDUP = 2.5


def _config(kernel: str = "scalar") -> ClustererConfig:
    return ClustererConfig(
        reservoir_capacity=CAPACITY,
        track_graph=False,
        strict=False,
        seed=14,
        kernel=kernel,
    )


def _inline_run(batches, kernel: str):
    """Apply the column batches inline; returns (clusterer, seconds)."""
    clusterer = StreamingGraphClusterer(_config(kernel))

    def run():
        for batch in batches:
            clusterer.apply_many(batch)

    _, elapsed = timed(run)
    return clusterer, elapsed


def _served_run(
    frames, kernel: str, sock_path: str, *, tenants: int = 1, expected=None
) -> float:
    """Replay the pre-encoded frames as ``tenants`` concurrent tenants
    against a fresh service; returns elapsed seconds for send + barrier.

    The metrics query is the barrier (it reflects everything sent
    before it); snapshot equivalence against ``expected`` is asserted
    after the clock stops, through a fresh connection per tenant.
    """
    service = ClusterService(_config(), path=sock_path, batch_size=BATCH)
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.started.wait(timeout=30.0)

    def stream(tenant: str) -> None:
        with ServiceClient(
            sock_path, tenant=tenant, kernel=kernel, batch_size=BATCH
        ) as client:
            client.send_frames(frames)
            client.metrics()  # barrier: every frame is applied

    workers = [
        threading.Thread(target=stream, args=(f"t{i}",))
        for i in range(tenants)
    ]
    _, elapsed = timed(lambda: [
        [w.start() for w in workers],
        [w.join() for w in workers],
    ])
    if expected is not None:
        for i in range(tenants):
            with ServiceClient(sock_path, tenant=f"t{i}") as client:
                assert client.snapshot() == expected, f"tenant t{i} diverged"
    service.request_shutdown(0)
    thread.join(timeout=30.0)
    return elapsed


def test_e14_serve(benchmark):
    dataset = load_dataset("lj_like", seed=14)
    batches = list(insert_only_columns(dataset.edges, BATCH, seed=14))
    num_events = sum(len(batch) for batch in batches)
    result = ExperimentResult(
        "e14_serve",
        f"columnar wire-path tax vs inline ({num_events} lj_like events, "
        f"batch {BATCH}, unix socket, paired A/B best-of-{REPS})",
    )

    # Encode once, outside every timed region (rationale in the module
    # docstring); the one-frame-per-batch invariant keeps the server's
    # coalescer from ever moving a batch boundary.
    def encode():
        encoder = FrameEncoder()
        frames = []
        for batch in batches:
            frames.extend(
                encoder.encode_columns(
                    batch.us, batch.vs, max_bytes=DEFAULT_MAX_WIRE_BYTES - 1
                )
            )
        return frames

    frames, encode_s = timed(encode)
    assert len(frames) == len(batches), "frame/batch boundary mismatch"
    result.rows.append({
        "mode": "client_encode", "kernel": "-", "tenants": 1,
        "events_per_s": round(num_events / encode_s),
        "aggregate_events_per_s": round(num_events / encode_s),
        "tax_pct": 0.0,
    })

    inline_eps = {}
    served_eps = {}
    tax = {}
    with tempfile.TemporaryDirectory() as tmp:
        for kernel in KERNELS:
            # Untimed warmup also yields the equivalence reference.
            reference, _ = _inline_run(batches, kernel)
            expected = render_snapshot(reference.snapshot())

            inline_best = None
            served_best = None
            for rep in range(REPS):
                gc.collect()
                sock = os.path.join(tmp, f"{kernel}{rep}.sock")
                inline_first = rep % 2 == 0  # order-balanced pairs
                for side in (0, 1):
                    if (side == 0) == inline_first:
                        _, elapsed = _inline_run(batches, kernel)
                        inline_best = (
                            elapsed if inline_best is None
                            else min(inline_best, elapsed)
                        )
                    else:
                        elapsed = _served_run(
                            frames, kernel, sock, expected=expected
                        )
                        served_best = (
                            elapsed if served_best is None
                            else min(served_best, elapsed)
                        )

            inline_eps[kernel] = num_events / inline_best
            served_eps[kernel] = num_events / served_best
            tax[kernel] = 100.0 * (1.0 - served_eps[kernel] / inline_eps[kernel])
            result.rows.append({
                "mode": "inline", "kernel": kernel, "tenants": 1,
                "events_per_s": round(inline_eps[kernel]),
                "aggregate_events_per_s": round(inline_eps[kernel]),
                "tax_pct": 0.0,
            })
            result.rows.append({
                "mode": "served", "kernel": kernel, "tenants": 1,
                "events_per_s": round(served_eps[kernel]),
                "aggregate_events_per_s": round(served_eps[kernel]),
                "tax_pct": round(tax[kernel], 1),
            })

        # Aggregate scaling under the shared drain loop (numpy kernel —
        # the wire path's steady-state deployment shape).
        for tenants in TENANT_COUNTS:
            sock = os.path.join(tmp, f"multi{tenants}.sock")
            elapsed = _served_run(
                frames, "numpy", sock, tenants=tenants, expected=None
            )
            per_tenant = num_events / elapsed
            result.rows.append({
                "mode": "served", "kernel": "numpy", "tenants": tenants,
                "events_per_s": round(per_tenant),
                "aggregate_events_per_s": round(tenants * per_tenant),
                "tax_pct": round(
                    100.0 * (1.0 - per_tenant / inline_eps["numpy"]), 1
                ),
            })

        # The pytest-benchmark row: the steady-state served numpy loop.
        sock = os.path.join(tmp, "bench_loop.sock")
        benchmark.pedantic(
            lambda: _served_run(frames, "numpy", sock),
            rounds=1, iterations=1,
        )

    # The E14 gate.
    for kernel in KERNELS:
        assert tax[kernel] <= MAX_TAX_PCT, (
            f"single-tenant serve tax for {kernel} kernel is "
            f"{tax[kernel]:.1f}% (floor: {MAX_TAX_PCT}%)"
        )
    speedup = served_eps["numpy"] / served_eps["scalar"]
    assert speedup >= MIN_SERVED_NUMPY_SPEEDUP, (
        f"served numpy is only {speedup:.2f}x served scalar "
        f"(floor: {MIN_SERVED_NUMPY_SPEEDUP}x at batch {BATCH})"
    )

    finish(result)
