"""E14 — service-loop overhead (extension).

The streaming service (`repro.serve`) puts a socket, a wire codec and a
per-tenant queue between the producer and the clusterer. The number
that matters operationally is the *tax*: events/sec through one socket
tenant versus the same stream applied inline, and how that tax amortizes
with concurrent tenants (separate sessions share nothing but the event
loop, so aggregate throughput should grow with tenant count until the
single-threaded drain saturates).

Measured on the amazon_like stream over a unix-domain socket (the
deployment case the CI smoke covers; TCP adds only kernel loopback
cost). Each served run asserts the equivalence contract on the exact
stream being benchmarked: the served snapshot must equal the inline
snapshot.

Expected shape: a single tenant pays a moderate constant factor for
framing + queue hops; N tenants streaming concurrently recover most of
it in aggregate because client encoding overlaps server drain.
"""

import os
import tempfile
import threading

from bench_common import dataset_events, finish, timed
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.serve import ClusterService, ServiceClient
from repro.serve.protocol import render_snapshot

CAPACITY = 5000
TENANT_COUNTS = (1, 2, 4)


def _config() -> ClustererConfig:
    return ClustererConfig(
        reservoir_capacity=CAPACITY, track_graph=False, strict=False, seed=14
    )


def _serve_tenants(events, num_tenants: int, sock_path: str) -> float:
    """Stream ``events`` as ``num_tenants`` concurrent tenants; returns
    elapsed seconds (snapshot equivalence asserted against inline)."""
    inline = StreamingGraphClusterer(_config())
    inline.process(list(events))
    expected = render_snapshot(inline.snapshot())

    service = ClusterService(_config(), path=sock_path)
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.started.wait(timeout=30.0)

    snapshots = {}

    def stream(tenant: str) -> None:
        with ServiceClient(sock_path, tenant=tenant) as client:
            client.send_events(events)
            snapshots[tenant] = client.snapshot()

    workers = [
        threading.Thread(target=stream, args=(f"t{i}",))
        for i in range(num_tenants)
    ]
    _, elapsed = timed(lambda: [
        [w.start() for w in workers],
        [w.join() for w in workers],
    ])
    service.request_shutdown(0)
    thread.join(timeout=30.0)
    for tenant, snapshot in snapshots.items():
        assert snapshot == expected, f"tenant {tenant} diverged"
    return elapsed


def test_e14_serve(benchmark):
    _, events = dataset_events("amazon_like", seed=14)
    events = list(events)
    result = ExperimentResult(
        "e14_serve",
        f"service-loop tax vs inline ({len(events)} amazon_like events, "
        "unix socket)",
    )

    # The inline baseline uses apply_many — the same batched fast path
    # the server's drain loop uses — so the tax measured is the socket,
    # codec and queue, not a difference in apply paths.
    clusterer = StreamingGraphClusterer(_config())
    _, inline_s = timed(lambda: clusterer.apply_many(events))
    inline_eps = len(events) / inline_s
    result.rows.append({
        "mode": "inline", "tenants": 1,
        "events_per_s": round(inline_eps),
        "aggregate_events_per_s": round(inline_eps),
        "tax_pct": 0.0,
    })

    with tempfile.TemporaryDirectory() as tmp:
        for num_tenants in TENANT_COUNTS:
            sock = os.path.join(tmp, f"bench{num_tenants}.sock")
            elapsed = _serve_tenants(events, num_tenants, sock)
            aggregate = num_tenants * len(events) / elapsed
            per_tenant = len(events) / elapsed
            result.rows.append({
                "mode": "served", "tenants": num_tenants,
                "events_per_s": round(per_tenant),
                "aggregate_events_per_s": round(aggregate),
                "tax_pct": round(100.0 * (1.0 - per_tenant / inline_eps), 1),
            })

        # The pytest-benchmark row: the steady-state single-tenant loop.
        sock = os.path.join(tmp, "bench_loop.sock")
        benchmark.pedantic(
            lambda: _serve_tenants(events, 1, sock), rounds=1, iterations=1
        )

    finish(result)
