"""E8 — effect of the admission constraints (figure reconstruction).

The paper's reservoir maintains "desired properties like bounding number
of clusters or cluster-sizes". This experiment varies the constraint on
a fixed workload and reports cluster-shape and quality consequences:

* ``MaxClusterSize`` sweep — the bound caps the largest cluster (hard
  invariant) and, set near the true community size, *improves* quality
  by rejecting the bridge edges that cause giant merges;
* ``MinClusterCount`` — keeps at least k clusters alive;
* unconstrained — the baseline showing the giant-merge failure.

Expected shape: unconstrained has a giant cluster and poor NMI; the
size bound trades a hair of coverage for large NMI gains, best when the
bound ≈ the true maximum community size (97 for amazon_like).
"""

from bench_common import dataset_events, finish, run_streaming, score_partition
from repro.bench import ExperimentResult
from repro.core import MaxClusterSize, MinClusterCount
from repro.graph import AdjacencyGraph

BOUNDS = (30, 60, 120, 240, 480)


def test_e8_constraints(benchmark):
    dataset, events = dataset_events("amazon_like")
    graph = AdjacencyGraph(dataset.edges)
    capacity = len(events) // 3

    benchmark.pedantic(
        lambda: run_streaming(events, capacity, constraint=MaxClusterSize(120), seed=6),
        rounds=3,
        iterations=1,
    )

    result = ExperimentResult(
        "e8_constraints",
        "constraint policies on amazon_like (33% reservoir)",
        metadata={"true_max_community": dataset.truth.sizes()[0]},
    )

    free = run_streaming(events, capacity, seed=6)
    row = score_partition(free.snapshot(), dataset, graph)
    result.add_row(constraint="unconstrained", vetoes=free.stats.vetoes, **row)

    for bound in BOUNDS:
        clusterer = run_streaming(
            events, capacity, constraint=MaxClusterSize(bound), seed=6
        )
        row = score_partition(clusterer.snapshot(), dataset, graph)
        result.add_row(
            constraint=f"MaxClusterSize({bound})",
            vetoes=clusterer.stats.vetoes,
            **row,
        )
        assert row["max_size"] <= bound  # the hard invariant

    floor = run_streaming(
        events, capacity, constraint=MinClusterCount(500), seed=6
    )
    row = score_partition(floor.snapshot(), dataset, graph)
    result.add_row(constraint="MinClusterCount(500)", vetoes=floor.stats.vetoes, **row)
    assert row["clusters"] >= 500
    finish(result)

    rows = {r["constraint"]: r for r in result.rows}
    # The well-chosen bound beats unconstrained by a wide margin.
    assert rows["MaxClusterSize(120)"]["nmi"] > rows["unconstrained"]["nmi"] + 0.2
    # Too-tight bounds shred communities: quality drops again.
    assert rows["MaxClusterSize(120)"]["f1"] > rows["MaxClusterSize(30)"]["f1"]
