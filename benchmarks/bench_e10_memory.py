"""E10 — memory footprint vs reservoir size (figure reconstruction).

The memory argument: in lean mode (``track_graph=False``) the
clusterer's retained state is the reservoir plus its connectivity
index — O(reservoir), independent of the stream length — whereas any
offline algorithm (and the tracked-graph convenience mode) must hold
the full O(m) graph.

Measured with tracemalloc on prefixes of the lj_like stream (373k
edges): retained bytes after ingesting 200k events at various
capacities, against the tracked-graph mode at one capacity.

Expected shape: lean-mode footprint grows linearly in the *capacity*
(plus the interner's O(V) label table, paid by both modes), while the
tracked-graph mode additionally retains the full O(m) edge set;
bytes-per-sampled-edge is roughly constant.
"""

from bench_common import finish
from repro.bench import ExperimentResult, measure_allocations
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.datasets import load_dataset
from repro.streams import insert_only_stream

CAPACITIES = (1000, 5000, 20000, 50000)
PREFIX = 200000


def test_e10_memory(benchmark):
    dataset = load_dataset("lj_like")
    events = insert_only_stream(dataset.edges, seed=10)[:PREFIX]

    def build(capacity: int, track: bool) -> StreamingGraphClusterer:
        clusterer = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=capacity,
                track_graph=track,
                strict=False,
                seed=8,
            )
        )
        clusterer.process(events)
        return clusterer

    benchmark.pedantic(lambda: build(5000, False), rounds=1, iterations=1)

    result = ExperimentResult(
        "e10_memory",
        f"retained state after {PREFIX} lj_like events (tracemalloc)",
    )
    lean_bytes = {}
    for capacity in CAPACITIES:
        clusterer, measurement = measure_allocations(lambda c=capacity: build(c, False))
        lean_bytes[capacity] = measurement.net_bytes
        result.add_row(
            mode="lean (reservoir only)",
            capacity=capacity,
            sampled_edges=clusterer.reservoir_size,
            net_mib=round(measurement.net_mib, 1),
            bytes_per_sampled_edge=round(
                measurement.net_bytes / max(1, clusterer.reservoir_size)
            ),
            sample_structure_bytes=clusterer.sample_structure_bytes(),
        )
    clusterer, measurement = measure_allocations(lambda: build(5000, True))
    result.add_row(
        mode="tracked full graph",
        capacity=5000,
        sampled_edges=clusterer.reservoir_size,
        net_mib=round(measurement.net_mib, 1),
        bytes_per_sampled_edge=round(measurement.net_bytes / 5000),
        sample_structure_bytes=clusterer.sample_structure_bytes(),
    )
    tracked_bytes = measurement.net_bytes
    finish(result)

    # Footprint scales with capacity...
    assert lean_bytes[50000] > 5 * lean_bytes[1000]
    # ...and tracked mode pays for the full O(m) graph on top of the
    # lean state: at the same capacity the retained difference must be
    # at least a conservative per-event floor (a set-of-neighbours
    # adjacency costs well over 64 bytes per edge).  Asserting on the
    # *difference* rather than a ratio of totals keeps the check stable
    # as the lean footprint itself evolves (e.g. the interner's O(V)
    # label table is paid by both modes).
    assert tracked_bytes - lean_bytes[5000] > 64 * PREFIX
