"""E13 — checkpointing overhead and recovery fidelity (extension).

A long-lived streaming deployment checkpoints periodically so a crash
replays only the stream tail. Two costs matter operationally:

* the *latency* of one atomic save/load (scales with reservoir
  capacity, not stream length — lean-mode state is O(capacity));
* the *throughput overhead* of saving every N events.

Measured on the amazon_like stream: save/load wall time and file size
at several capacities, then end-to-end ingest throughput at several
checkpoint intervals against the no-checkpoint baseline. A final
kill/resume pass asserts the recovery identity contract (restored +
tail == uninterrupted) on the exact stream being benchmarked.

Expected shape: checkpoint size and latency grow with capacity; the
throughput tax is proportional to save frequency and modest at
intervals of a few thousand events.
"""

import os
import tempfile

from bench_common import dataset_events, finish, timed
from repro.bench import ExperimentResult
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.persist import PeriodicCheckpointer, load_checkpoint, save_checkpoint

CAPACITIES = (1000, 5000, 20000)
INTERVALS = (0, 5000, 1000)
CAPACITY = 5000
KILL_AT = 12500
EVERY = 2000


def _config(capacity: int) -> ClustererConfig:
    return ClustererConfig(
        reservoir_capacity=capacity, track_graph=False, strict=False, seed=13
    )


def test_e13_checkpoint(benchmark):
    _, events = dataset_events("amazon_like", seed=13)
    result = ExperimentResult(
        "e13_checkpoint",
        f"checkpoint save/load cost and ingest overhead ({len(events)} "
        "amazon_like events, lean mode)",
    )

    def add_row(**values):
        row = dict.fromkeys(
            ("measure", "capacity", "every", "file_kib", "save_ms",
             "load_ms", "events_per_s", "overhead_pct", "detail"), "",
        )
        row.update(values)
        result.rows.append(row)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.rpk")

        # --- save/load latency vs capacity -------------------------------
        for capacity in CAPACITIES:
            clusterer = StreamingGraphClusterer(_config(capacity))
            clusterer.process(events)
            _, save_s = timed(lambda: save_checkpoint(clusterer, path,
                                                      position=len(events)))
            restored, load_s = timed(lambda: load_checkpoint(path))
            assert restored.clusterer.snapshot() == clusterer.snapshot()
            add_row(
                measure="save+load",
                capacity=capacity,
                file_kib=round(os.path.getsize(path) / 1024, 1),
                save_ms=round(save_s * 1e3, 2),
                load_ms=round(load_s * 1e3, 2),
            )

        # --- ingest overhead vs checkpoint interval ----------------------
        def ingest(every: int) -> None:
            clusterer = StreamingGraphClusterer(_config(CAPACITY))
            if every == 0:
                clusterer.process(events)
            else:
                PeriodicCheckpointer(clusterer, path, every=every,
                                     save_initial=False).process(events)

        benchmark.pedantic(lambda: ingest(0), rounds=1, iterations=1)

        baseline_s = None
        for every in INTERVALS:
            _, elapsed = timed(lambda e=every: ingest(e))
            if every == 0:
                baseline_s = elapsed
            add_row(
                measure="ingest",
                capacity=CAPACITY,
                every=every or "off",
                events_per_s=round(len(events) / elapsed),
                overhead_pct=round(100 * (elapsed / baseline_s - 1), 1),
            )

        # --- recovery identity on this exact workload --------------------
        full = StreamingGraphClusterer(_config(CAPACITY)).process(events)
        pc = PeriodicCheckpointer(StreamingGraphClusterer(_config(CAPACITY)),
                                  path, every=EVERY)
        pc.process(events[:KILL_AT])  # "crash" here; state beyond is lost
        resumed = PeriodicCheckpointer.resume(path, every=EVERY)
        assert resumed.position == KILL_AT - (KILL_AT % EVERY)
        replay = len(events) - resumed.position
        _, recover_s = timed(
            lambda: resumed.process(resumed.remaining(events))
        )
        assert resumed.clusterer.snapshot() == full.snapshot()
        assert resumed.clusterer.stats.as_dict() == full.stats.as_dict()
        add_row(
            measure="kill+resume",
            capacity=CAPACITY,
            every=EVERY,
            detail=(
                f"killed at {KILL_AT}, replayed {replay} events in "
                f"{recover_s * 1e3:.0f} ms, output identical"
            ),
        )

    finish(result)

    # Sanity floor: a sparse checkpoint cadence costs well under 2x.
    sparse = next(r for r in result.rows
                  if r["measure"] == "ingest" and r["every"] == INTERVALS[1])
    assert sparse["overhead_pct"] < 100
