"""Tracking drifting communities with a single online clusterer.

Scenario: a social graph whose community structure *changes* — users
migrate between interest groups, their old ties dissolve and new ones
form. An offline algorithm would have to re-run after every batch; the
streaming clusterer just keeps consuming the add/delete stream and its
clustering follows the drift.

The script generates several drift phases (each moves 25% of the users
to a new community), scores the clustering against the *current* ground
truth after each phase, and also scores a stale offline clustering
computed once at the start — showing why incremental matters.

Run:  python examples/community_drift_tracking.py
"""

from repro import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
from repro.baselines import louvain
from repro.graph import AdjacencyGraph
from repro.quality import pairwise_f1
from repro.streams import drifting_sbm_stream


def main() -> None:
    phases = drifting_sbm_stream(
        num_vertices=400,
        num_communities=8,
        p_in=0.25,
        p_out=0.0005,
        num_phases=6,
        migrate_fraction=0.25,
        seed=13,
    )
    total_events = sum(len(phase.events) for phase in phases)
    print(f"workload: 400 vertices, 8 drifting communities, "
          f"{len(phases)} phases, {total_events} events total\n")

    clusterer = StreamingGraphClusterer(
        ClustererConfig(
            reservoir_capacity=4000, constraint=MaxClusterSize(80), seed=13
        )
    )

    # Offline comparator: clustered once on the phase-0 graph, never updated.
    stale_partition = None

    print(f"{'phase':>5}  {'events':>7}  {'streaming F1':>12}  {'stale offline F1':>16}")
    for index, phase in enumerate(phases):
        clusterer.process(phase.events)
        live = clusterer.snapshot().merged_small_clusters(min_size=3)
        streaming_score = pairwise_f1(live, phase.truth)
        if stale_partition is None:
            graph = AdjacencyGraph(
                clusterer.graph.edges() if clusterer.graph else []
            )
            stale_partition = louvain(graph, seed=13)
        stale_score = pairwise_f1(stale_partition, phase.truth)
        print(f"{index:>5}  {len(phase.events):>7}  {streaming_score:>12.3f}  "
              f"{stale_score:>16.3f}")

    print("\nThe streaming clusterer's quality holds as communities move;")
    print("the one-shot offline clustering decays with every phase.")
    stats = clusterer.stats
    print(f"\nstream stats: {stats.edge_adds} adds, {stats.edge_deletes} deletes, "
          f"{stats.sample_deletions} reservoir deletions, "
          f"{stats.component_splits} cluster splits")


if __name__ == "__main__":
    main()
