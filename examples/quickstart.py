"""Quickstart: cluster a streaming graph with graph reservoir sampling.

Feeds a planted-community edge stream (with some churn) through the
streaming clusterer and compares the declared clusters against the
planted ground truth and an offline Louvain run.

Run:  python examples/quickstart.py
"""

from repro import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
from repro.baselines import louvain
from repro.graph import AdjacencyGraph
from repro.quality import modularity, nmi, pairwise_f1
from repro.streams import insert_delete_stream, planted_partition


def main() -> None:
    # A 1000-vertex graph with 10 planted communities.
    graph = planted_partition(
        num_vertices=1000, num_communities=10, p_in=0.2, p_out=0.0002, seed=7
    )
    print(f"workload: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"{graph.truth.num_clusters} planted communities")

    # Stream it with 30% of the edges churned (deleted and re-added),
    # exercising the full add/delete path.
    events = insert_delete_stream(graph.edges, churn=0.3, seed=7)
    print(f"stream: {len(events)} events (adds + deletes)")

    # The clusterer keeps a ~17% edge reservoir and bounds cluster sizes
    # near the planted community size to stop bridge edges from gluing
    # communities together.
    config = ClustererConfig(
        reservoir_capacity=graph.num_edges // 6,
        constraint=MaxClusterSize(150),
        seed=7,
    )
    clusterer = StreamingGraphClusterer(config)
    clusterer.process(events)

    snapshot = clusterer.snapshot()
    print(f"\nstreaming result: {snapshot.num_clusters} clusters, "
          f"largest {snapshot.max_cluster_size}")
    print(f"  reservoir: {clusterer.reservoir_size}/{config.reservoir_capacity} edges")
    print(f"  events processed: {clusterer.stats.events} "
          f"(admissions {clusterer.stats.admissions}, vetoes {clusterer.stats.vetoes})")

    full_graph = AdjacencyGraph(graph.edges)
    offline = louvain(full_graph, seed=7)
    print("\nquality vs planted communities (higher is better):")
    print(f"  streaming : NMI {nmi(snapshot, graph.truth):.3f}  "
          f"F1 {pairwise_f1(snapshot, graph.truth):.3f}  "
          f"Q {modularity(full_graph, snapshot):.3f}")
    print(f"  louvain   : NMI {nmi(offline, graph.truth):.3f}  "
          f"F1 {pairwise_f1(offline, graph.truth):.3f}  "
          f"Q {modularity(full_graph, offline):.3f}")

    # Point queries are O(log n) at any moment during the stream.
    u, v = 0, 10  # same planted community (vertex % 10 == community)
    print(f"\nsame_cluster({u}, {v}) = {clusterer.same_cluster(u, v)}")
    print(f"cluster_size({u}) = {clusterer.cluster_size(u)}")


if __name__ == "__main__":
    main()
