"""Multi-resolution clustering + lifecycle tracking on one stream.

Two extensions working together:

* :class:`MultiResolutionClusterer` maintains clusterings at several
  reservoir sizes at once, so "how tightly related are u and v?" gets a
  graded answer (the level where they separate) instead of a boolean.
* :class:`ClusterTracker` turns raw component labels into *stable*
  cluster identities with BORN/DIED/CONTINUED/SPLIT/MERGED events —
  what a monitoring deployment actually alerts on.

The workload drifts: after an initial phase, two communities merge
(their members start interacting) and one community splits. Watch the
tracker report exactly those events at the working resolution.

Run:  python examples/multiresolution_tracking.py
"""

import random

from repro import ClustererConfig, MaxClusterSize
from repro.core.hierarchy import MultiResolutionClusterer
from repro.core.tracking import ClusterEventKind, ClusterTracker
from repro.streams import add_edge

GROUPS = {name: list(range(i * 40, (i + 1) * 40))
          for i, name in enumerate(["alpha", "beta", "gamma", "delta"])}


def phase_events(rng, phase, count):
    """Intra-group edges; in phase 2+ alpha+beta behave as one group and
    gamma behaves as two halves."""
    events = []
    for _ in range(count):
        if phase >= 2 and rng.random() < 0.3:
            members = GROUPS["alpha"] + GROUPS["beta"]  # merged behaviour
        elif phase >= 2 and rng.random() < 0.4:
            half = GROUPS["gamma"][:20] if rng.random() < 0.5 else GROUPS["gamma"][20:]
            members = half  # split behaviour
        else:
            name = rng.choice(list(GROUPS))
            members = GROUPS[name]
            if phase >= 2 and name == "gamma":
                members = GROUPS["gamma"][:20]  # old gamma ties fade
        u, v = rng.sample(members, 2)
        events.append(add_edge(u, v))
    return events


def main() -> None:
    rng = random.Random(47)
    bank = MultiResolutionClusterer(
        ClustererConfig(
            reservoir_capacity=3000,
            constraint=MaxClusterSize(100),
            strict=False,
            seed=47,
        ),
        num_levels=3,
        ratio=5.0,
    )
    print(f"resolution bank capacities: {bank.capacities()}\n")
    tracker = ClusterTracker(threshold=0.25, min_size=10)

    for phase in (1, 2, 3):
        bank.process(phase_events(rng, phase, 4000))
        report = tracker.update(bank.snapshot(0))  # track at the coarsest level
        print(f"phase {phase}:")
        for event in report.events:
            if event.kind is ClusterEventKind.CONTINUED:
                print(f"  continued cluster #{event.stable_ids[0]} (size {event.size})")
            elif event.kind is ClusterEventKind.MERGED:
                parents = ", ".join(f"#{i}" for i in event.stable_ids[:-1])
                print(f"  MERGED {parents} -> #{event.stable_ids[-1]} (size {event.size})")
            elif event.kind is ClusterEventKind.SPLIT:
                print(f"  SPLIT from #{event.stable_ids[0]} -> #{event.stable_ids[1]} "
                      f"(size {event.size})")
            elif event.kind is ClusterEventKind.BORN:
                print(f"  born cluster #{event.stable_ids[0]} (size {event.size})")
            else:
                print(f"  died cluster #{event.stable_ids[0]}")
        print(f"  snapshot stability (ARI vs previous): {report.stability:.3f}")

        a, b = GROUPS["alpha"][0], GROUPS["beta"][0]
        level = bank.coarsest_split_level(a, b)
        print(f"  alpha[0] vs beta[0]: affinity {bank.affinity(a, b):.2f}, "
              f"separate at level {level}\n")


if __name__ == "__main__":
    main()
