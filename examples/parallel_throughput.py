"""Throughput: streaming vs offline recompute, and shard parallelism.

Reproduces the paper's headline claims at example scale:

1. To keep cluster answers *fresh*, an offline algorithm must re-run
   every K updates, paying O(graph) each time; the incremental
   clusterer pays O(polylog) per update regardless. The gap therefore
   grows both with graph size and with the freshness requirement —
   benchmark E4 sweeps both; this example fixes K=150 on a mid-size
   graph and already shows an order of magnitude.
2. Hash-sharding the stream parallelizes near-perfectly — shards never
   coordinate during ingestion, so the speedup on W cores is governed
   only by the shard balance, which this script measures.

Run:  python examples/parallel_throughput.py
"""

from repro import (
    ClustererConfig,
    MaxClusterSize,
    ShardedClusterer,
    StreamingGraphClusterer,
)
from repro.baselines import PeriodicRecomputeClusterer, label_propagation, louvain
from repro.bench import measure_throughput, render_table
from repro.quality import nmi
from repro.streams import insert_only_stream, planted_partition


def main() -> None:
    graph = planted_partition(
        num_vertices=3000, num_communities=20, p_in=0.09, p_out=0.00001, seed=17
    )
    events = insert_only_stream(graph.edges, seed=17)
    print(f"workload: {graph.num_vertices} vertices, {len(events)} edge events")
    print("freshness requirement: clustering current within 150 updates\n")

    capacity = len(events) // 5
    config = ClustererConfig(
        reservoir_capacity=capacity,
        constraint=MaxClusterSize(200),
        strict=False,
        seed=17,
    )
    rows = []

    streaming = StreamingGraphClusterer(config)
    result = measure_throughput(streaming, events)
    snapshot = streaming.snapshot().merged_small_clusters(min_size=3)
    rows.append({
        "clusterer": "streaming (this paper)",
        "events_per_sec": round(result.events_per_second),
        "us_per_event": round(result.microseconds_per_event, 1),
        "nmi": round(nmi(snapshot, graph.truth), 3),
    })

    offline_events = events[: len(events) // 2]  # offline pays per event; keep it short
    for name, algorithm in [("louvain", louvain), ("label prop", label_propagation)]:
        offline = PeriodicRecomputeClusterer(algorithm, interval=150)
        result = measure_throughput(offline, offline_events)
        rows.append({
            "clusterer": f"{name} every 150 events",
            "events_per_sec": round(result.events_per_second),
            "us_per_event": round(result.microseconds_per_event, 1),
            "nmi": round(nmi(offline.snapshot(), graph.truth.restricted_to(
                offline.snapshot().vertices())), 3),
        })

    print(render_table(rows, title="ingestion throughput (single worker)"))
    speedup = rows[0]["events_per_sec"] / rows[1]["events_per_sec"]
    print(f"\nstreaming vs fresh louvain: {speedup:.0f}x higher throughput "
          "(gap grows with graph size — see benchmarks/bench_e4_throughput.py)\n")

    # Shard parallelism: balance bounds multi-core speedup.
    balance_rows = []
    for shards in (1, 2, 4, 8):
        sharded = ShardedClusterer(config, num_shards=shards)
        sharded.process(events)
        merged = sharded.snapshot().merged_small_clusters(min_size=3)
        balance_rows.append({
            "shards": shards,
            "busiest_shard_events": max(sharded.shard_events),
            "speedup_bound": round(sharded.shard_balance, 2),
            "merged_nmi": round(nmi(merged, graph.truth), 3),
        })
    print(render_table(balance_rows, title="shard balance (speedup on W cores)"))


if __name__ == "__main__":
    main()
