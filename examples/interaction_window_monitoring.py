"""Monitoring live interaction clusters over a sliding window.

Scenario: a message/interaction stream (chat, transactions, packet
flows) where only *recent* activity matters. The sliding-window
clusterer keeps the clustering of the last W interactions: each arrival
implicitly expires the oldest one, driving the reservoir's deletion
path at full stream rate.

The workload interleaves three behaviours commonly seen in interaction
streams:
* stable working groups (repeated intra-group messages),
* a "flash event" burst that temporarily links two groups,
* random background noise.

Watch the largest clusters merge during the burst and separate again as
the burst leaves the window.

Run:  python examples/interaction_window_monitoring.py
"""

import random

from repro import ClustererConfig, SlidingWindowClusterer, add_edge

GROUPS = {
    "engineering": list(range(0, 30)),
    "sales": list(range(30, 55)),
    "support": list(range(55, 75)),
}
NOISE_USERS = list(range(75, 120))


def interaction_stream(rng: random.Random, phase: str):
    """One interaction event according to the current phase."""
    roll = rng.random()
    if phase == "burst" and roll < 0.45:
        # Flash event: engineering and sales talk to each other a lot.
        return add_edge(rng.choice(GROUPS["engineering"]), rng.choice(GROUPS["sales"]))
    if roll < 0.85:
        members = GROUPS[rng.choice(list(GROUPS))]
        u, v = rng.sample(members, 2)
        return add_edge(u, v)
    u, v = rng.sample(NOISE_USERS + GROUPS["support"], 2)
    return add_edge(u, v) if u != v else None


def snapshot_line(window: SlidingWindowClusterer) -> str:
    sizes = window.snapshot().sizes()[:4]
    eng_sales_merged = window.same_cluster(GROUPS["engineering"][0], GROUPS["sales"][0])
    return (f"live edges {window.num_live_edges:>4}  top clusters {sizes}  "
            f"eng+sales merged: {eng_sales_merged}")


def main() -> None:
    rng = random.Random(29)
    window = SlidingWindowClusterer(
        ClustererConfig(reservoir_capacity=600, seed=29, strict=False),
        window=1500,
    )
    schedule = [("steady", 3000), ("burst", 1500), ("steady", 3000)]
    step = 0
    for phase, length in schedule:
        for _ in range(length):
            event = interaction_stream(rng, phase)
            if event is not None:
                window.apply(event)
            step += 1
            if step % 1500 == 0:
                print(f"[{step:>5}] phase={phase:<6} {snapshot_line(window)}")

    stats = window.inner.stats
    print(f"\nprocessed {stats.events} clusterer events "
          f"({stats.edge_adds} adds, {stats.edge_deletes} window expiries)")
    print(f"reservoir: {window.inner.reservoir_size} sampled edges; "
          f"{stats.component_splits} cluster splits from expiry")


if __name__ == "__main__":
    main()
