"""Unit tests for VI, normalized VI, and split-join distance."""

import math

import pytest

from repro.quality import (
    Partition,
    normalized_vi,
    split_join_distance,
    variation_of_information,
)


def clusters(*groups):
    return Partition.from_clusters([set(g) for g in groups])


class TestVariationOfInformation:
    def test_identical_is_zero(self):
        p = clusters({1, 2}, {3, 4})
        assert variation_of_information(p, p) == 0.0

    def test_label_permutation_is_zero(self):
        a = Partition({1: 0, 2: 0, 3: 1})
        b = Partition({1: "x", 2: "x", 3: "y"})
        assert variation_of_information(a, b) == pytest.approx(0.0)

    def test_crossed_pairs_value(self):
        # {12}{34} vs {13}{24} on 4 items: VI = 2 ln 2.
        a = clusters({1, 2}, {3, 4})
        b = clusters({1, 3}, {2, 4})
        assert variation_of_information(a, b) == pytest.approx(2 * math.log(2))

    def test_symmetry(self):
        a = clusters({1, 2, 3}, {4})
        b = clusters({1, 2}, {3, 4})
        assert variation_of_information(a, b) == pytest.approx(
            variation_of_information(b, a)
        )

    def test_refinement_value(self):
        # All-in-one vs all-singletons on n items: VI = ln n.
        n = 8
        whole = Partition({i: 0 for i in range(n)})
        singles = Partition.singletons(range(n))
        assert variation_of_information(whole, singles) == pytest.approx(math.log(n))

    def test_disjoint_vertex_sets(self):
        assert variation_of_information(Partition({1: 0}), Partition({2: 0})) == 0.0


class TestNormalizedVI:
    def test_bounds(self):
        whole = Partition({i: 0 for i in range(10)})
        singles = Partition.singletons(range(10))
        assert normalized_vi(whole, singles) == pytest.approx(1.0)
        assert normalized_vi(whole, whole) == 0.0

    def test_single_vertex(self):
        p = Partition({1: 0})
        assert normalized_vi(p, p) == 0.0


class TestSplitJoin:
    def test_identical_is_zero(self):
        p = clusters({1, 2}, {3, 4})
        assert split_join_distance(p, p) == 0

    def test_known_value(self):
        a = clusters({1, 2, 3, 4})
        b = clusters({1, 2}, {3, 4})
        # Projecting a onto b costs 2 moves; b onto a costs 0.
        assert split_join_distance(a, b) == 2

    def test_symmetry(self):
        a = clusters({1, 2, 3}, {4, 5})
        b = clusters({1, 2}, {3, 4, 5})
        assert split_join_distance(a, b) == split_join_distance(b, a)

    def test_upper_bound(self):
        a = clusters({1, 2}, {3, 4})
        b = clusters({1, 3}, {2, 4})
        assert split_join_distance(a, b) <= 2 * (4 - 1)

    def test_empty_intersection(self):
        assert split_join_distance(Partition({1: 0}), Partition({2: 0})) == 0
