"""Smoke tests: the shipped examples must run end to end.

The slowest example (parallel_throughput) is exercised by benchmark E4
instead; the rest run here so a refactor cannot silently break them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> None:
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "community_drift_tracking.py",
        "interaction_window_monitoring.py",
        "multiresolution_tracking.py",
    ],
)
def test_example_runs(script, capsys):
    _run_example(script)
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_examples_directory_complete():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5
