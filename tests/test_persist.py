"""Unit tests for the checkpoint container format and save/load API."""

import os

import pytest

from repro.core import ClustererConfig, ShardedClusterer, StreamingGraphClusterer
from repro.errors import CheckpointError
from repro.persist import (
    PeriodicCheckpointer,
    load_checkpoint,
    save_checkpoint,
    read_container,
    write_container,
)
from repro.persist.format import HEADER_SIZE, MAGIC, decode_container, encode_container
from repro.streams import add_edge, delete_edge, insert_delete_stream, planted_partition
from repro.util.faults import (
    FlakyOpen,
    SimulatedCrash,
    corrupt_checkpoint,
    kill_at_event,
    truncate_file,
)


@pytest.fixture
def churn_events():
    graph = planted_partition(80, 4, p_in=0.3, p_out=0.02, seed=13)
    return insert_delete_stream(graph.edges, churn=0.4, seed=13)


def make_clusterer(**kwargs) -> StreamingGraphClusterer:
    defaults = dict(reservoir_capacity=100, seed=7, strict=False)
    defaults.update(kwargs)
    return StreamingGraphClusterer(ClustererConfig(**defaults))


class TestContainerFormat:
    def test_bytes_roundtrip(self):
        payload = {"hello": [1, 2, ("a", "b")], "n": 42}
        assert decode_container(encode_container(payload)) == payload

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "ck"
        payload = {"x": 1}
        size = write_container(path, payload)
        assert os.path.getsize(path) == size
        assert read_container(path) == payload

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_container(tmp_path / "absent")

    def test_alien_file_rejected(self, tmp_path):
        path = tmp_path / "alien"
        path.write_bytes(b"x" * 100)
        with pytest.raises(CheckpointError, match="bad magic"):
            read_container(path)

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(CheckpointError, match="too short"):
            read_container(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future"
        data = bytearray(encode_container({"x": 1}))
        data[8:10] = (99).to_bytes(2, "big")
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="version 99"):
            read_container(path)

    def test_truncation_rejected(self, tmp_path):
        path = tmp_path / "ck"
        write_container(path, {"data": list(range(1000))})
        truncate_file(path, os.path.getsize(path) - 7)
        with pytest.raises(CheckpointError, match="truncated"):
            read_container(path)

    def test_truncated_to_header_rejected(self, tmp_path):
        path = tmp_path / "ck"
        write_container(path, {"data": "abc"})
        truncate_file(path, HEADER_SIZE)
        with pytest.raises(CheckpointError, match="truncated"):
            read_container(path)

    def test_flipped_payload_byte_rejected(self, tmp_path):
        path = tmp_path / "ck"
        write_container(path, {"data": list(range(1000))})
        corrupt_checkpoint(path)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            read_container(path)

    def test_every_flipped_byte_is_detected(self, tmp_path):
        """No single-byte corruption anywhere in the file loads silently."""
        path = tmp_path / "ck"
        write_container(path, {"data": list(range(50))})
        size = os.path.getsize(path)
        for offset in range(0, size, 7):
            write_container(path, {"data": list(range(50))})
            corrupt_checkpoint(path, offset=offset)
            with pytest.raises(CheckpointError):
                read_container(path)

    def test_non_dict_payload_rejected(self, tmp_path):
        import pickle
        import struct
        import zlib

        body = pickle.dumps([1, 2, 3])
        header = struct.pack(">8sHQI", MAGIC, 1, len(body), zlib.crc32(body))
        path = tmp_path / "ck"
        path.write_bytes(header + body)
        with pytest.raises(CheckpointError, match="unexpected payload type"):
            read_container(path)

    def test_atomic_write_keeps_previous_on_failure(self, tmp_path, monkeypatch):
        import repro.persist.format as fmt

        path = tmp_path / "ck"
        write_container(path, {"generation": 1})
        monkeypatch.setattr(fmt, "open", FlakyOpen(failures=1), raising=False)
        with pytest.raises(OSError, match="injected IO fault"):
            write_container(path, {"generation": 2})
        # The old checkpoint survives and no temp litter remains.
        assert read_container(path) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["ck"]


class TestSaveLoad:
    def test_single_roundtrip(self, tmp_path, churn_events):
        clusterer = make_clusterer().process(churn_events)
        path = tmp_path / "ck"
        save_checkpoint(clusterer, path, position=len(churn_events))
        restored = load_checkpoint(path)
        assert restored.kind == "clusterer.single"
        assert restored.position == len(churn_events)
        assert restored.clusterer.snapshot() == clusterer.snapshot()
        assert restored.clusterer.stats.as_dict() == clusterer.stats.as_dict()
        assert restored.clusterer.reservoir_edges() == clusterer.reservoir_edges()
        assert restored.clusterer.graph.num_edges == clusterer.graph.num_edges

    def test_sharded_roundtrip(self, tmp_path, churn_events):
        sharded = ShardedClusterer(
            ClustererConfig(reservoir_capacity=200, seed=3, strict=False), 4
        ).process(churn_events)
        path = tmp_path / "ck"
        save_checkpoint(sharded, path, position=len(churn_events))
        restored = load_checkpoint(path)
        assert restored.kind == "clusterer.sharded"
        assert restored.clusterer.snapshot() == sharded.snapshot()
        assert restored.clusterer.shard_events == sharded.shard_events
        assert restored.clusterer.total_reservoir_size == sharded.total_reservoir_size

    def test_lean_mode_roundtrip(self, tmp_path):
        clusterer = make_clusterer(track_graph=False)
        clusterer.process([add_edge(i, i + 1) for i in range(50)])
        path = tmp_path / "ck"
        save_checkpoint(clusterer, path)
        restored = load_checkpoint(path).clusterer
        assert restored.graph is None
        assert restored.snapshot() == clusterer.snapshot()

    def test_string_vertices_roundtrip(self, tmp_path):
        clusterer = make_clusterer()
        clusterer.process([add_edge(f"u{i}", f"u{i+1}") for i in range(30)])
        clusterer.apply(delete_edge("u3", "u4"))
        path = tmp_path / "ck"
        save_checkpoint(clusterer, path)
        assert load_checkpoint(path).clusterer.snapshot() == clusterer.snapshot()

    def test_wrong_object_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            save_checkpoint(object(), tmp_path / "ck")

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "ck"
        write_container(
            path, {"state_version": 1, "kind": "clusterer.quantum", "position": 0,
                   "state": {}}
        )
        with pytest.raises(CheckpointError, match="unknown checkpoint kind"):
            load_checkpoint(path)

    def test_unknown_state_version_rejected(self, tmp_path):
        path = tmp_path / "ck"
        write_container(
            path, {"state_version": 999, "kind": "clusterer.single", "position": 0,
                   "state": {}}
        )
        with pytest.raises(CheckpointError, match="state version 999"):
            load_checkpoint(path)

    def test_structurally_invalid_state_rejected(self, tmp_path):
        path = tmp_path / "ck"
        write_container(
            path, {"state_version": 1, "kind": "clusterer.single", "position": 0,
                   "state": {"config": None}}
        )
        with pytest.raises(CheckpointError, match="invalid checkpoint state"):
            load_checkpoint(path)

    def test_corrupted_clusterer_checkpoint_never_loads(self, tmp_path, churn_events):
        path = tmp_path / "ck"
        save_checkpoint(make_clusterer().process(churn_events), path)
        corrupt_checkpoint(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestPeriodicCheckpointer:
    def test_initial_save_makes_early_crash_recoverable(self, tmp_path):
        path = tmp_path / "ck"
        PeriodicCheckpointer(make_clusterer(), path, every=100)
        restored = PeriodicCheckpointer.resume(path)
        assert restored.position == 0

    def test_saves_at_interval(self, tmp_path):
        path = tmp_path / "ck"
        pc = PeriodicCheckpointer(make_clusterer(), path, every=10)
        pc.process([add_edge(i, i + 1) for i in range(35)])
        assert pc.saves == 1 + 3  # initial + events 10, 20, 30
        assert load_checkpoint(path).position == 30

    def test_every_zero_only_saves_explicitly(self, tmp_path):
        path = tmp_path / "ck"
        pc = PeriodicCheckpointer(make_clusterer(), path, every=0)
        pc.process([add_edge(i, i + 1) for i in range(25)])
        assert pc.saves == 1  # just the initial one
        pc.save()
        assert load_checkpoint(path).position == 25

    def test_crash_restore_replay_identical(self, tmp_path, churn_events):
        full = make_clusterer().process(churn_events)

        path = tmp_path / "ck"
        pc = PeriodicCheckpointer(make_clusterer(), path, every=50)
        with pytest.raises(SimulatedCrash):
            pc.process(kill_at_event(churn_events, 333))
        # The in-memory clusterer is gone with the crash; recover from disk.
        resumed = PeriodicCheckpointer.resume(path, every=50)
        assert resumed.position == 300  # latest multiple of 50 before the kill
        resumed.process(resumed.remaining(churn_events))
        assert resumed.position == len(churn_events)
        assert resumed.clusterer.snapshot() == full.snapshot()
        assert resumed.clusterer.stats.as_dict() == full.stats.as_dict()
        assert resumed.clusterer.reservoir_edges() == full.reservoir_edges()

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            PeriodicCheckpointer(make_clusterer(), tmp_path / "ck", every=-1)


class TestCanonicalize:
    def test_equal_values_become_shared_objects(self):
        from repro.persist import canonicalize
        import pickle

        a = {"x": ("v" + str(1), 2.5), "y": ("v1", 2.5)}
        b = {"x": ("v1", 2.5), "y": ("v1", 2.5)}
        assert pickle.dumps(a, protocol=4) != pickle.dumps(b, protocol=4)
        ca, cb = canonicalize(a), canonicalize(b)
        assert ca == a and cb == b
        assert pickle.dumps(ca, protocol=4) == pickle.dumps(cb, protocol=4)
        assert ca["x"] is ca["y"]

    def test_preserves_values_and_order(self):
        from repro.persist import canonicalize

        payload = {
            "ints": [1, 2, 3],
            "floats": [0.0, -0.0, float("inf")],
            "nested": ({"k": (True, None, b"raw")},),
            "text": "naïve",
        }
        result = canonicalize(payload)
        assert result == payload
        assert list(result) == list(payload)
        assert repr(result["floats"]) == repr(payload["floats"])

    def test_true_and_one_stay_distinct(self):
        from repro.persist import canonicalize

        result = canonicalize([(True, 0), (1, False)])
        assert result[0][0] is True and result[1][0] == 1
        assert result[0][0] is not result[1][0] or True != 1

    def test_unknown_objects_pass_through_untouched(self):
        from repro.persist import canonicalize

        config = ClustererConfig(reservoir_capacity=10)
        result = canonicalize({"config": config, "pair": (config, "x")})
        assert result["config"] is config
        assert result["pair"][0] is config
