"""Unit tests for Euler-tour trees."""

import random

import pytest

from repro.connectivity.ett import EulerTourForest


class TestBasicStructure:
    def test_singleton_vertices(self):
        f = EulerTourForest()
        f.add_vertex(1)
        f.add_vertex(2)
        assert f.connected(1, 1)
        assert not f.connected(1, 2)
        assert f.component_size(1) == 1

    def test_unknown_vertices_are_singletons(self):
        f = EulerTourForest()
        assert f.connected("x", "x")
        assert not f.connected("x", "y")
        assert f.component_size("x") == 1
        assert f.component_members("x") == {"x"}

    def test_link_connects(self):
        f = EulerTourForest()
        f.link(1, 2)
        assert f.connected(1, 2)
        assert f.component_size(1) == 2

    def test_link_already_connected_raises(self):
        f = EulerTourForest()
        f.link(1, 2)
        f.link(2, 3)
        with pytest.raises(ValueError, match="already connected"):
            f.link(1, 3)

    def test_link_self_loop_raises(self):
        f = EulerTourForest()
        with pytest.raises(ValueError):
            f.link(1, 1)

    def test_cut_splits(self):
        f = EulerTourForest()
        f.link(1, 2)
        f.link(2, 3)
        f.cut(1, 2)
        assert not f.connected(1, 2)
        assert f.connected(2, 3)
        assert f.component_size(1) == 1
        assert f.component_size(3) == 2

    def test_cut_absent_edge_raises(self):
        f = EulerTourForest()
        f.link(1, 2)
        with pytest.raises(KeyError):
            f.cut(1, 3)

    def test_tour_length_invariant(self):
        # A tree with n vertices and n-1 edges has tour length n + 2(n-1).
        f = EulerTourForest()
        for i in range(7):
            f.link(i, i + 1)
        assert len(f.tour(0)) == 8 + 2 * 7

    def test_component_members_and_iteration(self):
        f = EulerTourForest()
        f.link(1, 2)
        f.link(1, 3)
        assert f.component_members(3) == {1, 2, 3}
        assert set(f.iter_component_vertices(2)) == {1, 2, 3}

    def test_component_id_stability(self):
        f = EulerTourForest()
        f.link(1, 2)
        assert f.component_id(1) == f.component_id(2)
        assert f.component_id(1) != f.component_id(99)

    def test_remove_isolated_vertex(self):
        f = EulerTourForest()
        f.add_vertex(1)
        f.link(2, 3)
        assert f.remove_isolated_vertex(1)
        assert not f.remove_isolated_vertex(2)  # still linked
        assert not f.remove_isolated_vertex(1)  # already gone
        assert 1 not in f


class TestMarks:
    def _path(self, n):
        f = EulerTourForest()
        for i in range(n - 1):
            f.link(i, i + 1)
        return f

    def test_vertex_mark_roundtrip(self):
        f = self._path(10)
        assert f.find_marked_vertex(0) is None
        f.set_vertex_mark(6, True)
        assert f.find_marked_vertex(3) == 6
        f.set_vertex_mark(6, False)
        assert f.find_marked_vertex(3) is None

    def test_vertex_mark_survives_restructuring(self):
        f = self._path(10)
        f.set_vertex_mark(4, True)
        f.cut(7, 8)
        assert f.find_marked_vertex(0) == 4
        assert f.find_marked_vertex(9) is None
        f.link(0, 9)
        assert f.find_marked_vertex(9) == 4

    def test_edge_mark_roundtrip(self):
        f = self._path(6)
        f.set_edge_mark(2, 3, True)
        assert f.find_marked_edge(5) == (2, 3)
        f.set_edge_mark(2, 3, False)
        assert f.find_marked_edge(5) is None

    def test_multiple_marks_found_one_at_a_time(self):
        f = self._path(8)
        for v in (1, 4, 6):
            f.set_vertex_mark(v, True)
        found = set()
        while True:
            v = f.find_marked_vertex(0)
            if v is None:
                break
            found.add(v)
            f.set_vertex_mark(v, False)
        assert found == {1, 4, 6}

    def test_unknown_vertex_mark_queries(self):
        f = EulerTourForest()
        assert f.find_marked_vertex("nope") is None
        assert f.find_marked_edge("nope") is None


class TestRandomizedAgainstOracle:
    def test_matches_networkx_forest(self):
        nx = pytest.importorskip("networkx")
        rng = random.Random(99)
        f = EulerTourForest(seed=5)
        G = nx.Graph()
        nodes = list(range(40))
        for v in nodes:
            f.add_vertex(v)
            G.add_node(v)
        tree_edges = set()
        for _ in range(3000):
            u, v = rng.sample(nodes, 2)
            if not f.connected(u, v):
                f.link(u, v)
                G.add_edge(u, v)
                tree_edges.add((u, v))
            elif tree_edges and rng.random() < 0.5:
                edge = rng.choice(sorted(tree_edges))
                tree_edges.discard(edge)
                f.cut(*edge)
                G.remove_edge(*edge)
            a, b = rng.sample(nodes, 2)
            assert f.connected(a, b) == nx.has_path(G, a, b)
            c = rng.choice(nodes)
            assert f.component_size(c) == len(nx.node_connected_component(G, c))
