"""Unit tests for modularity, conductance, and external metrics."""

import pytest

from repro.graph import AdjacencyGraph
from repro.quality import (
    Partition,
    ari,
    average_conductance,
    cluster_cut_stats,
    conductances,
    coverage,
    internal_densities,
    max_conductance,
    modularity,
    nmi,
    normalized_cut,
    pair_counts,
    pairwise_f1,
    pairwise_precision_recall_f1,
    purity,
)


@pytest.fixture
def bridged(triangle_graph):
    return triangle_graph  # (graph with two triangles + bridge, truth)


class TestModularity:
    def test_known_value(self, bridged):
        graph, truth = bridged
        # Two triangles + bridge: Q = 2*(3/7 - (7/14)^2) = 5/14.
        assert modularity(graph, truth) == pytest.approx(5 / 14)

    def test_single_cluster_is_zero(self, bridged):
        graph, _ = bridged
        whole = Partition({v: 0 for v in graph.vertices()})
        assert modularity(graph, whole) == pytest.approx(0.0)

    def test_empty_graph(self):
        assert modularity(AdjacencyGraph(), Partition({})) == 0.0

    def test_uncovered_vertices_are_singletons(self, bridged):
        graph, truth = bridged
        partial = truth.restricted_to([0, 1, 2])
        full = Partition({**partial.labels(), 3: "s3", 4: "s4", 5: "s5"})
        assert modularity(graph, partial) == pytest.approx(modularity(graph, full))

    def test_matches_networkx(self, karate_graph):
        nx = pytest.importorskip("networkx")
        import networkx.algorithms.community as nxc

        graph, truth = karate_graph
        G = nx.Graph(list(graph.edges()))
        expected = nxc.modularity(G, [set(c) for c in truth.clusters()])
        assert modularity(graph, truth) == pytest.approx(expected)


class TestConductance:
    def test_bridge_cut(self, bridged):
        graph, truth = bridged
        values = conductances(graph, truth)
        # Each triangle has volume 7, cut 1 → φ = 1/7.
        assert values == pytest.approx([1 / 7, 1 / 7])
        assert average_conductance(graph, truth) == pytest.approx(1 / 7)
        assert max_conductance(graph, truth) == pytest.approx(1 / 7)

    def test_perfect_separation_is_zero(self):
        graph = AdjacencyGraph([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        truth = Partition.from_clusters([{0, 1, 2}, {3, 4, 5}])
        assert average_conductance(graph, truth) == 0.0

    def test_coverage(self, bridged):
        graph, truth = bridged
        assert coverage(graph, truth) == pytest.approx(6 / 7)

    def test_normalized_cut(self, bridged):
        graph, truth = bridged
        assert normalized_cut(graph, truth) == pytest.approx(2 / 7)

    def test_internal_density(self, bridged):
        graph, truth = bridged
        assert internal_densities(graph, truth) == pytest.approx([1.0, 1.0])

    def test_cut_stats_fields(self, bridged):
        graph, truth = bridged
        stats = {s.size: s for s in cluster_cut_stats(graph, truth)}
        assert stats[3].internal == 3
        assert stats[3].cut == 1
        assert stats[3].volume == 7

    def test_min_size_filter(self, bridged):
        graph, truth = bridged
        assert conductances(graph, truth, min_size=4) == []
        assert average_conductance(graph, truth, min_size=4) == 0.0


class TestExternalMetrics:
    def test_identical_partitions_score_one(self):
        p = Partition.from_clusters([{1, 2}, {3, 4}])
        assert nmi(p, p) == pytest.approx(1.0)
        assert ari(p, p) == pytest.approx(1.0)
        assert pairwise_f1(p, p) == pytest.approx(1.0)
        assert purity(p, p) == pytest.approx(1.0)

    def test_permuted_labels_score_one(self):
        a = Partition({1: 0, 2: 0, 3: 1, 4: 1})
        b = Partition({1: "z", 2: "z", 3: "q", 4: "q"})
        assert nmi(a, b) == pytest.approx(1.0)
        assert ari(a, b) == pytest.approx(1.0)

    def test_pair_counts(self):
        predicted = Partition.from_clusters([{1, 2, 3}, {4}])
        truth = Partition.from_clusters([{1, 2}, {3, 4}])
        counts = pair_counts(predicted, truth)
        assert counts.together_predicted == 3
        assert counts.together_truth == 2
        assert counts.together_both == 1
        assert counts.total_pairs == 6

    def test_precision_recall_f1(self):
        predicted = Partition.from_clusters([{1, 2, 3}, {4}])
        truth = Partition.from_clusters([{1, 2}, {3, 4}])
        precision, recall, f1 = pairwise_precision_recall_f1(predicted, truth)
        assert precision == pytest.approx(1 / 3)
        assert recall == pytest.approx(1 / 2)
        assert f1 == pytest.approx(2 * (1 / 3) * (1 / 2) / (1 / 3 + 1 / 2))

    def test_all_singletons_vs_truth(self):
        truth = Partition.from_clusters([{1, 2}, {3, 4}])
        singles = Partition.singletons([1, 2, 3, 4])
        precision, recall, f1 = pairwise_precision_recall_f1(singles, truth)
        assert precision == 1.0  # vacuous: no pairs asserted
        assert recall == 0.0
        assert f1 == 0.0
        assert purity(singles, truth) == 1.0

    def test_disjoint_vertex_sets(self):
        a = Partition({1: 0})
        b = Partition({2: 0})
        assert nmi(a, b) == 0.0
        assert purity(a, b) == 0.0

    def test_nmi_against_manual_value(self):
        # 4 items: predicted {12}{34}, truth {13}{24} → MI = 0.
        predicted = Partition.from_clusters([{1, 2}, {3, 4}])
        truth = Partition.from_clusters([{1, 3}, {2, 4}])
        assert nmi(predicted, truth) == pytest.approx(0.0, abs=1e-12)
        assert ari(predicted, truth) <= 0.0 + 1e-12

    def test_metrics_computed_on_intersection(self):
        predicted = Partition({1: 0, 2: 0, 99: 5})
        truth = Partition({1: "a", 2: "a", 3: "b"})
        assert pairwise_f1(predicted, truth) == pytest.approx(1.0)
