"""Tests for the supervised parallel driver and deterministic faults."""

import time

import pytest

from repro.core import ClustererConfig, SupervisorConfig, cluster_stream_parallel
from repro.core.sharded import _shard_of, _stable_vertex_key
from repro.streams import insert_delete_stream, planted_partition
from repro.util.faults import CrashShard, HangShard, SimulatedCrash, kill_at_event


@pytest.fixture(scope="module")
def events():
    graph = planted_partition(60, 3, p_in=0.3, p_out=0.02, seed=21)
    return insert_delete_stream(graph.edges, churn=0.3, seed=21)


CONFIG = ClustererConfig(reservoir_capacity=60, seed=9, strict=False)
FAST = SupervisorConfig(timeout=20.0, max_attempts=3, backoff=0.01)


def baseline(events):
    partition, results = cluster_stream_parallel(events, CONFIG, 3)
    assert all(not r.failed for r in results)
    return partition


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(timeout=0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_factor=0.5)

    def test_backoff_schedule(self):
        sup = SupervisorConfig(backoff=0.1, backoff_factor=2.0)
        assert sup.delay_before(1) == 0.0
        assert sup.delay_before(2) == pytest.approx(0.1)
        assert sup.delay_before(3) == pytest.approx(0.2)
        assert sup.delay_before(4) == pytest.approx(0.4)


class TestSupervisedPool:
    def test_unfaulted_supervised_matches_plain_parallel(self, events):
        partition, results = cluster_stream_parallel(
            events, CONFIG, 3, supervisor=FAST
        )
        assert partition == baseline(events)
        assert [r.attempts for r in results] == [1, 1, 1]

    def test_crash_is_retried_and_result_is_unaffected(self, events):
        partition, results = cluster_stream_parallel(
            events, CONFIG, 3, fault=CrashShard(shard=1, fail_attempts=1),
            supervisor=FAST,
        )
        assert partition == baseline(events)
        assert results[1].attempts == 2 and not results[1].failed
        assert results[0].attempts == 1 and results[2].attempts == 1

    def test_hard_crash_is_detected_and_retried(self, events):
        """os._exit leaves no exception and no queue entry; the supervisor
        must notice the dead process and reschedule."""
        partition, results = cluster_stream_parallel(
            events, CONFIG, 3,
            fault=CrashShard(shard=0, fail_attempts=1, hard=True),
            supervisor=FAST,
        )
        assert partition == baseline(events)
        assert results[0].attempts == 2 and not results[0].failed

    def test_hang_is_terminated_and_retried(self, events):
        start = time.monotonic()
        partition, results = cluster_stream_parallel(
            events, CONFIG, 3,
            fault=HangShard(shard=2, seconds=30.0, fail_attempts=1),
            supervisor=SupervisorConfig(timeout=0.5, max_attempts=2, backoff=0.01),
        )
        elapsed = time.monotonic() - start
        assert elapsed < 15.0  # nowhere near the 30s hang
        assert partition == baseline(events)
        assert results[2].attempts == 2 and not results[2].failed
        assert "timeout" not in (results[2].error or "")

    def test_permanent_failure_degrades_gracefully(self, events):
        with pytest.warns(RuntimeWarning, match="shard 1 failed permanently"):
            partition, results = cluster_stream_parallel(
                events, CONFIG, 3,
                fault=CrashShard(shard=1, fail_attempts=99),
                supervisor=SupervisorConfig(timeout=20.0, max_attempts=2,
                                            backoff=0.01),
            )
        tombstone = results[1]
        assert tombstone.failed and tombstone.attempts == 2
        assert tombstone.sampled_edges == [] and "SimulatedCrash" in tombstone.error
        # The other shards still contribute a usable partition.
        assert results[0].attempts == 1 and results[2].attempts == 1
        assert partition.num_vertices > 0
        # Losing shard 1's sample can only remove merges: the degraded
        # partition is strictly more fragmented (deterministic seeds).
        assert partition.num_clusters > baseline(events).num_clusters

    def test_failed_shard_vertices_absent_from_merge(self, events):
        with pytest.warns(RuntimeWarning):
            partition, results = cluster_stream_parallel(
                events, CONFIG, 3,
                fault=CrashShard(shard=0, fail_attempts=99),
                supervisor=SupervisorConfig(timeout=20.0, max_attempts=1),
            )
        _, healthy = cluster_stream_parallel(events, CONFIG, 3)
        surviving = set(partition.vertices())
        for result in healthy:
            if result.shard == 0:
                continue
            assert surviving >= set(result.vertices)


class TestSupervisedInline:
    def test_crash_is_retried_inline(self, events):
        partition, results = cluster_stream_parallel(
            events, CONFIG, 3, pool_processes=1,
            fault=CrashShard(shard=1, fail_attempts=1), supervisor=FAST,
        )
        assert partition == baseline(events)
        assert results[1].attempts == 2 and not results[1].failed

    def test_permanent_failure_degrades_inline(self, events):
        with pytest.warns(RuntimeWarning, match="failed permanently"):
            _, results = cluster_stream_parallel(
                events, CONFIG, 3, pool_processes=1,
                fault=CrashShard(shard=2, fail_attempts=99),
                supervisor=SupervisorConfig(max_attempts=2, backoff=0.0),
            )
        assert results[2].failed and results[2].attempts == 2

    def test_fault_implies_supervision(self, events):
        # No explicit SupervisorConfig: passing a fault turns it on.
        partition, results = cluster_stream_parallel(
            events, CONFIG, 3, pool_processes=1,
            fault=CrashShard(shard=0, fail_attempts=1),
        )
        assert partition == baseline(events)
        assert results[0].attempts == 2


class TestStableSharding:
    def test_int_keys_are_identity(self):
        assert _stable_vertex_key(42) == 42
        assert _stable_vertex_key(-7) == -7

    def test_bool_is_not_treated_as_int_surrogate(self):
        # bool subclasses int; routing must still be deterministic and
        # distinct from the strings "True"/"False".
        assert _stable_vertex_key(True) == _stable_vertex_key(True)

    def test_string_keys_stable_across_processes(self):
        """Shard routing for non-int ids must not depend on
        PYTHONHASHSEED (i.e. never falls back to builtin hash)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "from repro.core.sharded import _shard_of;"
            "print([_shard_of((f'u{i}', f'v{i}'), 8) for i in range(64)])"
        )
        src = str(Path(__file__).resolve().parents[1] / "src")

        def run(hashseed):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src)
            return subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            ).stdout

        assert run("1") == run("2")

    def test_mixed_types_spread_over_shards(self):
        shards = {
            _shard_of((f"user-{i}", i * 31), 8) for i in range(200)
        }
        assert len(shards) == 8


class TestKillAtEvent:
    def test_yields_prefix_then_raises(self):
        it = kill_at_event(range(10), 3)
        assert [next(it) for _ in range(3)] == [0, 1, 2]
        with pytest.raises(SimulatedCrash, match="event 3"):
            next(it)

    def test_short_stream_never_faults(self):
        assert list(kill_at_event(range(3), 10)) == [0, 1, 2]

    def test_custom_action_runs_instead(self):
        fired = []
        it = kill_at_event(range(5), 2, action=lambda: fired.append(True))
        with pytest.raises(SimulatedCrash):
            list(it)
        assert fired == [True]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            list(kill_at_event(range(3), -1))
