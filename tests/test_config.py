"""Unit tests for ClustererConfig validation."""

import pytest

from repro.core import ClustererConfig, DeletionPolicy, MaxClusterSize


class TestValidation:
    def test_defaults_are_valid(self):
        config = ClustererConfig(reservoir_capacity=100)
        assert config.connectivity_backend == "hdt"
        assert config.track_graph is True
        assert config.deletion_policy is DeletionPolicy.RANDOM_PAIRING

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ClustererConfig(reservoir_capacity=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="connectivity_backend"):
            ClustererConfig(reservoir_capacity=10, connectivity_backend="magic")

    def test_constraint_type_checked(self):
        with pytest.raises(TypeError, match="ConstraintPolicy"):
            ClustererConfig(reservoir_capacity=10, constraint="max_size_5")

    def test_deletion_policy_type_checked(self):
        with pytest.raises(TypeError, match="DeletionPolicy"):
            ClustererConfig(reservoir_capacity=10, deletion_policy="resample")

    def test_resample_requires_tracking(self):
        with pytest.raises(ValueError, match="track_graph"):
            ClustererConfig(
                reservoir_capacity=10,
                deletion_policy=DeletionPolicy.RESAMPLE,
                track_graph=False,
                strict=False,
            )

    def test_strict_requires_tracking(self):
        with pytest.raises(ValueError, match="strict"):
            ClustererConfig(reservoir_capacity=10, track_graph=False)

    def test_lean_mode_is_expressible(self):
        config = ClustererConfig(reservoir_capacity=10, track_graph=False, strict=False)
        assert config.track_graph is False

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            ClustererConfig(reservoir_capacity=10, resample_threshold=1.5)

    def test_constraint_instance_accepted(self):
        config = ClustererConfig(reservoir_capacity=10, constraint=MaxClusterSize(5))
        assert config.constraint.limit == 5
