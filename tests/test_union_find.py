"""Unit tests for UnionFind and RollbackUnionFind."""

import random

import pytest

from repro.connectivity import RollbackUnionFind, UnionFind


class TestUnionFind:
    def test_basic_union_and_find(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.union(2, 1)

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find(7) == 7
        assert uf.num_elements == 1

    def test_num_sets_tracking(self):
        uf = UnionFind(range(5))
        assert uf.num_sets == 5
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        assert uf.num_sets == 2

    def test_set_size(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.set_size(1) == 3
        assert uf.set_size(99) == 1

    def test_groups(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        groups = sorted(map(sorted, uf.groups()))
        assert groups == [[0, 1], [2], [3]]

    def test_matches_reference_on_random_ops(self, rng):
        uf = UnionFind()
        reference = {i: {i} for i in range(30)}
        for _ in range(200):
            a, b = rng.randrange(30), rng.randrange(30)
            uf.union(a, b)
            if reference[a] is not reference[b]:
                merged = reference[a] | reference[b]
                for member in merged:
                    reference[member] = merged
            x, y = rng.randrange(30), rng.randrange(30)
            assert uf.connected(x, y) == (reference[x] is reference[y])


class TestRollbackUnionFind:
    def test_rollback_restores_state(self):
        uf = RollbackUnionFind()
        uf.union(1, 2)
        mark = uf.checkpoint
        uf.union(3, 4)
        uf.union(1, 4)
        assert uf.connected(2, 3)
        uf.rollback(mark)
        assert uf.connected(1, 2)
        assert not uf.connected(3, 4)
        assert not uf.connected(1, 3)

    def test_rollback_over_noop_unions(self):
        uf = RollbackUnionFind()
        uf.union(1, 2)
        mark = uf.checkpoint
        uf.union(1, 2)  # no-op, still recorded
        uf.rollback(mark)
        assert uf.connected(1, 2)

    def test_rollback_to_future_raises(self):
        uf = RollbackUnionFind()
        with pytest.raises(ValueError):
            uf.rollback(5)

    def test_num_sets_after_rollback(self):
        uf = RollbackUnionFind()
        for i in range(6):
            uf.add(i)
        mark = uf.checkpoint
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.num_sets == 4
        uf.rollback(mark)
        assert uf.num_sets == 6

    def test_interleaved_checkpoints(self, rng):
        uf = RollbackUnionFind()
        snapshots = []
        for step in range(100):
            if rng.random() < 0.3:
                snapshots.append((uf.checkpoint, {frozenset(_group(uf, i) for i in range(20))}))
            uf.union(rng.randrange(20), rng.randrange(20))
        while snapshots:
            mark, state = snapshots.pop()
            uf.rollback(mark)
            assert {frozenset(_group(uf, i) for i in range(20))} == state


def _group(uf: RollbackUnionFind, x: int) -> frozenset:
    root = uf.find(x)
    return frozenset(i for i in range(20) if uf.find(i) == root)
