"""Columnar wire-path tests for the streaming service.

The served determinism/equivalence contract under test:

* a tenant streamed as codec-v3 columnar frames under ``--kernel
  numpy`` yields a partition that is a deterministic function of
  (seed, stream, frame boundaries) — two identical served runs agree,
  and both equal an inline ``kernel="numpy"`` run applied at the same
  batch boundaries;
* a scalar tenant stays *byte-identical* to the inline scalar run no
  matter how the stream is framed or coalesced (split invariance);
* the drain loop coalesces adjacent small frames up to the server's
  batch size, visibly in ``coalesced_batches``, without changing the
  scalar result;
* kernel conflicts — against a live session or a resumed checkpoint —
  are refused at HELLO.
"""

import pytest

from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.errors import ServiceError
from repro.obs import metrics as _obs
from repro.serve import ClusterService, ServiceClient
from repro.serve.protocol import OP_OK, recv_message, render_snapshot, send_message
from repro.streams import planted_partition, insert_only_stream_raw
from repro.streams.codec import FrameEncoder, encode_hello
from repro.streams.events import EventColumns

from tests.test_serve import OP_ERROR, OP_EVENTS, OP_HELLO, _RunningService, _config

BATCH = 256


def _columns(seed=5, n=160, k=4, batch=BATCH):
    graph = planted_partition(n, k, 0.3, 0.002, seed=seed)
    events = insert_only_stream_raw(graph.edges, seed=7)
    us = [e[1] for e in events]
    vs = [e[2] for e in events]
    return [
        EventColumns(us=us[s : s + batch], vs=vs[s : s + batch])
        for s in range(0, len(us), batch)
    ]


def _inline_snapshot(config, batches):
    clusterer = StreamingGraphClusterer(config)
    for batch in batches:
        clusterer.apply_many(batch)
    return render_snapshot(clusterer.snapshot())


class TestServedColumnar:
    def test_served_numpy_deterministic_and_matches_inline(self):
        batches = _columns()
        service = ClusterService(_config(), batch_size=BATCH)
        snapshots = []
        with _RunningService(service) as running:
            for tenant in ("np-a", "np-b"):
                with ServiceClient(
                    running.endpoint,
                    tenant=tenant,
                    kernel="numpy",
                    batch_size=BATCH,
                ) as client:
                    assert client.send_columns(batches) == sum(
                        len(b) for b in batches
                    )
                    snapshots.append(client.snapshot())
        assert snapshots[0] == snapshots[1]
        inline = _inline_snapshot(_config(kernel="numpy"), batches)
        assert snapshots[0] == inline

    def test_served_scalar_byte_identical_to_inline(self):
        batches = _columns()
        service = ClusterService(_config(), batch_size=BATCH)
        with _RunningService(service) as running:
            with ServiceClient(
                running.endpoint, tenant="sc", batch_size=BATCH
            ) as client:
                client.send_columns(batches)
                served = client.snapshot()
        assert served == _inline_snapshot(_config(), batches)

    def test_columnar_frames_counted(self):
        batches = _columns()
        service = ClusterService(_config(), batch_size=BATCH)
        counter = _obs.default_registry().counter("serve.codec_columnar_frames")
        before = counter.value
        with _RunningService(service) as running:
            with ServiceClient(
                running.endpoint, tenant="counted", batch_size=BATCH
            ) as client:
                client.send_columns(batches)
                client.metrics()  # barrier: all frames are through
        assert counter.value - before >= len(batches)

    def test_small_frames_coalesce_without_changing_result(self):
        # 16-event client frames against a 256-event server batch: the
        # drain loop merges adjacent queued frames, the merge shows up
        # in the metrics, and the scalar result is unchanged (split
        # invariance makes coalescing safe).
        small = _columns(batch=16)
        service = ClusterService(_config(), batch_size=BATCH, queue_depth=512)
        with _RunningService(service) as running:
            with ServiceClient(
                running.endpoint, tenant="tiny", batch_size=16
            ) as client:
                client.send_columns(small)
                metrics = client.metrics()
                served = client.snapshot()
        assert metrics["coalesced_batches"] > 0
        assert served == _inline_snapshot(_config(), small)

    def test_session_records_requested_kernel(self):
        service = ClusterService(_config(), batch_size=BATCH)
        with _RunningService(service) as running:
            with ServiceClient(
                running.endpoint, tenant="pinned", kernel="numpy"
            ) as client:
                client.metrics()
                session = service._sessions["pinned"]
                assert session.config.kernel == "numpy"
                assert session.clusterer.config.kernel == "numpy"

    def test_live_kernel_conflict_refused(self):
        service = ClusterService(_config(), batch_size=BATCH)
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="t", kernel="numpy"):
                with pytest.raises(ServiceError, match="kernel"):
                    ServiceClient(running.endpoint, tenant="t", kernel="scalar")
                # Same kernel (or no preference) is still admitted.
                with ServiceClient(
                    running.endpoint, tenant="t", kernel="numpy"
                ) as again:
                    again.metrics()
                with ServiceClient(running.endpoint, tenant="t") as agnostic:
                    agnostic.metrics()

    def test_resume_kernel_conflict_refused(self, tmp_path):
        batches = _columns(n=60)
        checkpoints = str(tmp_path)
        service = ClusterService(
            _config(), batch_size=BATCH, checkpoint_dir=checkpoints
        )
        with _RunningService(service) as running:
            with ServiceClient(
                running.endpoint, tenant="durable", kernel="numpy"
            ) as client:
                client.send_columns(batches)
                client.metrics()
        # The final checkpoint recorded kernel="numpy"; a resumed
        # session under a conflicting kernel is refused at HELLO.
        resumed = ClusterService(
            _config(), batch_size=BATCH, checkpoint_dir=checkpoints, resume=True
        )
        with _RunningService(resumed) as running:
            with pytest.raises(ServiceError, match="kernel"):
                ServiceClient(running.endpoint, tenant="durable", kernel="scalar")
            with ServiceClient(
                running.endpoint, tenant="durable", kernel="numpy"
            ) as client:
                assert client.metrics()["position"] == sum(
                    len(b) for b in batches
                )

    def test_corrupt_columnar_frame_rejected_connection_only(self):
        import socket as socket_module

        service = ClusterService(_config(), batch_size=BATCH)
        with _RunningService(service) as running:
            sock = socket_module.create_connection(running.endpoint, timeout=10.0)
            sock.settimeout(10.0)
            send_message(sock, OP_HELLO, encode_hello("surgeon"))
            assert recv_message(sock)[0] == OP_OK
            (frame,) = FrameEncoder().encode_columns([1, 2], [2, 3])
            mangled = bytearray(frame)
            mangled[-1] = 0xFF  # v-index far past the vertex table
            send_message(sock, OP_EVENTS, bytes(mangled))
            op, payload = recv_message(sock)
            assert op == OP_ERROR
            assert b"corrupt event frame" in bytes(payload)
            sock.close()
            # The daemon survives; a fresh client still gets service.
            with ServiceClient(running.endpoint, tenant="surgeon") as client:
                client.send_columns(_columns(n=40))
                assert client.metrics()["events"] > 0
