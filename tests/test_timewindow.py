"""Unit tests for timestamped streams and time-window clustering."""

import pytest

from repro.core import ClustererConfig
from repro.core.timewindow import TimeWindowClusterer
from repro.errors import UnsupportedOperationError
from repro.streams import add_edge, add_vertex, delete_edge
from repro.streams.timestamped import (
    TimestampedEvent,
    validate_timestamps,
    with_poisson_timestamps,
)


def ts(t, u, v):
    return TimestampedEvent(t, add_edge(u, v))


def make(horizon=10.0, capacity=100):
    return TimeWindowClusterer(
        ClustererConfig(reservoir_capacity=capacity), horizon=horizon
    )


class TestTimestampedStream:
    def test_poisson_timestamps_monotone(self):
        events = [add_edge(i, i + 1) for i in range(200)]
        stream = with_poisson_timestamps(events, rate=5.0, seed=1)
        validate_timestamps(stream)
        assert len(stream) == 200

    def test_poisson_rate_approximate(self):
        events = [add_edge(i, i + 1) for i in range(2000)]
        stream = with_poisson_timestamps(events, rate=10.0, seed=2)
        duration = stream[-1].timestamp - stream[0].timestamp
        assert 2000 / duration == pytest.approx(10.0, rel=0.15)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            with_poisson_timestamps([], rate=0.0)

    def test_validate_rejects_regression(self):
        stream = [ts(1.0, 1, 2), ts(0.5, 3, 4)]
        with pytest.raises(ValueError, match="regress"):
            validate_timestamps(stream)


class TestTimeWindow:
    def test_edges_expire_by_time(self):
        w = make(horizon=10.0)
        w.apply(ts(0.0, 1, 2))
        w.apply(ts(5.0, 3, 4))
        assert w.same_cluster(1, 2)
        w.apply(ts(11.0, 5, 6))  # pushes t=0 out of [1, 11]
        assert not w.same_cluster(1, 2)
        assert w.same_cluster(3, 4)

    def test_advance_to_expires_without_events(self):
        w = make(horizon=10.0)
        w.apply(ts(0.0, 1, 2))
        expired = w.advance_to(100.0)
        assert expired == 1
        assert not w.same_cluster(1, 2)
        assert w.num_live_edges == 0

    def test_reoccurrence_refreshes(self):
        w = make(horizon=10.0)
        w.apply(ts(0.0, 1, 2))
        w.apply(ts(8.0, 1, 2))  # refresh
        w.advance_to(15.0)  # first copy expired, second still live
        assert w.same_cluster(1, 2)
        w.advance_to(19.0)
        assert not w.same_cluster(1, 2)

    def test_clock_regression_rejected(self):
        w = make()
        w.apply(ts(5.0, 1, 2))
        with pytest.raises(ValueError, match="regress"):
            w.apply(ts(4.0, 3, 4))
        with pytest.raises(ValueError):
            w.advance_to(1.0)

    def test_vertex_adds_pass_through(self):
        w = make()
        w.apply(TimestampedEvent(0.0, add_vertex(42)))
        assert 42 in w.snapshot()

    def test_deletes_rejected(self):
        w = make()
        with pytest.raises(UnsupportedOperationError):
            w.apply(TimestampedEvent(0.0, delete_edge(1, 2)))

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            make(horizon=0.0)

    def test_process_poisson_stream_end_to_end(self):
        from repro.streams import insert_only_stream, planted_partition

        graph = planted_partition(60, 3, 0.4, 0.01, seed=44)
        events = insert_only_stream(graph.edges, seed=44)
        stream = with_poisson_timestamps(events, rate=100.0, seed=44)
        w = make(horizon=2.0, capacity=300)
        w.process(stream)
        # 2s horizon at 100 ev/s keeps ~200 of the edges live.
        assert 100 <= w.num_live_edges <= 350
        assert w.inner.stats.edge_deletes > 0
        assert "live_edges" in repr(w)
