"""Unit tests for Girvan–Newman and edge betweenness."""

import pytest

from repro.baselines import edge_betweenness, girvan_newman
from repro.graph import AdjacencyGraph
from repro.quality import modularity, nmi


class TestEdgeBetweenness:
    def test_path_graph_values(self):
        # Path 0-1-2-3: middle edge carries 2*2 = 4 pair-paths.
        graph = AdjacencyGraph([(0, 1), (1, 2), (2, 3)])
        betweenness = edge_betweenness(graph)
        assert betweenness[(1, 2)] == pytest.approx(4.0)
        assert betweenness[(0, 1)] == pytest.approx(3.0)

    def test_bridge_has_max_betweenness(self, triangle_graph):
        graph, _ = triangle_graph
        betweenness = edge_betweenness(graph)
        assert max(betweenness, key=betweenness.get) == (2, 3)

    def test_symmetric_cycle(self):
        graph = AdjacencyGraph([(0, 1), (1, 2), (2, 3), (3, 0)])
        values = set(round(v, 9) for v in edge_betweenness(graph).values())
        assert len(values) == 1  # all edges equivalent by symmetry

    def test_matches_networkx(self, karate_graph):
        nx = pytest.importorskip("networkx")
        graph, _ = karate_graph
        ours = edge_betweenness(graph)
        theirs = nx.edge_betweenness_centrality(
            nx.Graph(list(graph.edges())), normalized=False
        )
        for (u, v), value in ours.items():
            expected = theirs.get((u, v), theirs.get((v, u)))
            assert value == pytest.approx(expected)


class TestGirvanNewman:
    def test_two_triangles(self, triangle_graph):
        graph, truth = triangle_graph
        assert girvan_newman(graph) == truth

    def test_karate_quality(self, karate_graph):
        graph, truth = karate_graph
        partition = girvan_newman(graph)
        assert modularity(graph, partition) > 0.35
        assert nmi(partition, truth) > 0.3

    def test_max_removals_caps_work(self, karate_graph):
        graph, _ = karate_graph
        partition = girvan_newman(graph, max_removals=3)
        assert partition.num_vertices == 34

    def test_disconnected_input(self):
        graph = AdjacencyGraph([(0, 1), (2, 3)])
        partition = girvan_newman(graph)
        assert partition.num_clusters == 2

    def test_empty_graph(self):
        assert girvan_newman(AdjacencyGraph()).num_clusters == 0

    def test_does_not_mutate_input(self, triangle_graph):
        graph, _ = triangle_graph
        edges_before = sorted(graph.edges())
        girvan_newman(graph)
        assert sorted(graph.edges()) == edges_before
