"""Tests for the numpy batch kernel and its vectorized primitives.

Covers the three contracts ``--kernel numpy`` makes:

* the vectorized shard routing is *bit-for-bit* the scalar routing;
* the kernel is deterministic and checkpoint-exact (byte-identical
  round trips, including a mid-stream save/restore);
* the sample it draws is *distribution-equivalent* to the scalar
  kernel's (identical under an injected RNG, chi-square-indistinguishable
  under real RNGs) — the kernel trades bitstream compatibility for
  throughput, never correctness.
"""

import math
import pickle
import random

import numpy as np
import pytest

from repro.core.clusterer import StreamingGraphClusterer
from repro.core.config import ClustererConfig
from repro.core.sharded import ShardedClusterer, _shard_of
from repro.sampling.random_pairing import PackedEdgeReservoir
from repro.sampling.vectorized import (
    NumpyPackedEdgeReservoir,
    edge_components,
    shard_ids,
)
from repro.streams.events import EventKind

ADD = EventKind.ADD_EDGE
DEL = EventKind.DELETE_EDGE


def _mixed_events(n, num_vertices, seed, delete_rate=0.2):
    """A valid add/delete tuple stream (deletes only hit live edges)."""
    rng = random.Random(seed)
    events, live = [], set()
    while len(events) < n:
        if live and rng.random() < delete_rate:
            edge = rng.choice(sorted(live))
            live.discard(edge)
            events.append((DEL, edge[0], edge[1]))
            continue
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in live:
            continue
        live.add(edge)
        events.append((ADD, u, v))
    return events


# ----------------------------------------------------------------------
# shard_ids: bit-for-bit scalar routing
# ----------------------------------------------------------------------
class TestShardIds:
    def test_matches_scalar(self):
        rng = random.Random(11)
        lo = [rng.randrange(-(2**62), 2**62) for _ in range(500)]
        hi = [x + rng.randrange(1, 1000) for x in lo]
        for num_shards in (1, 2, 3, 7, 16):
            vec = shard_ids(np.array(lo), np.array(hi), num_shards)
            for u, v, got in zip(lo, hi, vec.tolist()):
                assert got == _shard_of((u, v), num_shards)

    def test_small_dense_ids(self):
        # The interned hot path feeds small non-negative ids.
        lo = np.arange(0, 300, dtype=np.int64)
        hi = lo + 1
        vec = shard_ids(lo, hi, 5)
        expect = [_shard_of((int(u), int(v)), 5) for u, v in zip(lo, hi)]
        assert vec.tolist() == expect


# ----------------------------------------------------------------------
# edge_components: matches a union-find ground truth
# ----------------------------------------------------------------------
class TestEdgeComponents:
    def test_matches_union_find(self):
        from repro.connectivity.union_find import UnionFind

        rng = random.Random(3)
        for trial in range(20):
            edges = set()
            while len(edges) < rng.randrange(1, 60):
                u = rng.randrange(40)
                v = rng.randrange(40)
                if u != v:
                    edges.add((min(u, v), max(u, v)))
            keys = np.array(
                [(u << 32) | v for u, v in sorted(edges)], dtype=np.uint64
            )
            count, vertices, labels = edge_components(keys)
            union = UnionFind()
            for u, v in edges:
                union.add(u)
                union.add(v)
                union.union(u, v)
            assert count == union.num_sets
            groups = {}
            for vertex, label in zip(vertices.tolist(), labels.tolist()):
                groups.setdefault(label, set()).add(vertex)
            expect = {frozenset(g) for g in union.groups()}
            assert {frozenset(g) for g in groups.values()} == expect

    def test_empty(self):
        assert edge_components(np.array([], dtype=np.uint64)) == (0, None, None)


# ----------------------------------------------------------------------
# Sharded / pipeline vectorized routing
# ----------------------------------------------------------------------
class TestVectorizedRouting:
    def _run_sharded(self, events, *, disable_vectorized):
        config = ClustererConfig(
            reservoir_capacity=120, seed=7, kernel="numpy", strict=False
        )
        sharded = ShardedClusterer(config, 4)
        if disable_vectorized:
            sharded._route_vectorized = lambda events: False
        for start in range(0, len(events), 512):
            sharded.apply_many(events[start : start + 512])
        return sharded

    def test_sharded_routing_matches_scalar_loop(self):
        events = _mixed_events(4000, 400, seed=5)
        fast = self._run_sharded(events, disable_vectorized=False)
        slow = self._run_sharded(events, disable_vectorized=True)
        assert fast.shard_events == slow.shard_events
        assert fast.snapshot() == slow.snapshot()
        fast_states = fast.get_state()["shards"]
        slow_states = slow.get_state()["shards"]
        assert pickle.dumps(fast_states) == pickle.dumps(slow_states)

    def test_sharded_self_loop_raises_like_scalar(self):
        events = [(ADD, 1, 2), (ADD, 5, 5)]
        outcomes = []
        for kernel in ("scalar", "numpy"):
            config = ClustererConfig(reservoir_capacity=50, seed=1, kernel=kernel)
            sharded = ShardedClusterer(config, 3)
            with pytest.raises(ValueError) as err:
                sharded.apply_many(events)
            outcomes.append((str(err.value), sharded.shard_events[:]))
        assert outcomes[0] == outcomes[1]

    def test_sharded_falls_back_on_barriers_and_odd_types(self):
        # Vertex barriers, bools, and huge ints must take the scalar
        # loop; routing (shard_events) must agree with a scalar-kernel
        # run, which shares the routing code for every event.
        events = _mixed_events(800, 100, seed=9)
        events.insert(200, (EventKind.ADD_VERTEX, 5000, None))
        events.insert(500, (ADD, True, 2**70))
        counts = []
        for kernel in ("scalar", "numpy"):
            config = ClustererConfig(
                reservoir_capacity=60, seed=3, kernel=kernel, strict=False
            )
            sharded = ShardedClusterer(config, 4)
            sharded.apply_many(events)
            counts.append(sharded.shard_events[:])
        assert counts[0] == counts[1]

    def test_pipeline_routing_matches_scalar_loop(self):
        from repro.core.pipeline import PipelineClusterer

        events = _mixed_events(1500, 200, seed=13)
        config = ClustererConfig(
            reservoir_capacity=90, seed=9, kernel="numpy", strict=False
        )
        results = []
        for disable in (False, True):
            pipeline = PipelineClusterer(config, 3, batch_events=256)
            if disable:
                pipeline._route_vectorized = lambda events: False
            try:
                for start in range(0, len(events), 256):
                    pipeline.apply_many(events[start : start + 256])
                results.append(
                    (pipeline.shard_events[:], pipeline.snapshot())
                )
            finally:
                pipeline.close()
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# Scalar / numpy equivalence under an injected RNG
# ----------------------------------------------------------------------
def _det_draw(bound):
    """A deterministic 'draw' in [0, bound): pure function of the bound."""
    mixed = (bound ^ (bound >> 7)) * 2654435761 & 0xFFFFFFFFFFFFFFFF
    return mixed % bound if bound > 1 else 0


class _InjectedRandom:
    """Stands in for the scalar reservoir's Mersenne Twister."""

    def randrange(self, bound):
        return _det_draw(bound)


class _InjectedGenerator:
    """Stands in for the numpy reservoir's PCG64 Generator, answering
    the three call shapes ``insert_many``/``insert_fast`` use."""

    def integers(self, low, high=None, size=None):
        if high is None:
            return _det_draw(int(low))
        if size is not None:
            return np.full(size, _det_draw(int(high)), dtype=np.int64)
        bounds = np.asarray(high).tolist()
        return np.array([_det_draw(int(b)) for b in bounds], dtype=np.int64)


class TestInjectedRngEquivalence:
    def test_identical_partitions_capacity_one(self):
        # With every random decision forced to the same pure function of
        # its bound, the two kernels make identical admission choices.
        # Capacity 1 makes the victim choice trivial too (slot orders —
        # an internal artifact that differs between swap-remove-append
        # and in-place overwrite — cannot diverge), so the *entire*
        # sample history, and hence every partition, must coincide.
        events = _mixed_events(600, 80, seed=21, delete_rate=0.15)

        def run(kernel):
            # batch_fast_path off for the scalar run: the injected RNG
            # answers randrange(), which the per-event path draws from
            # (the batched path replays getrandbits bit-for-bit, an
            # equivalence tests/test_apply_many_property.py covers).
            config = ClustererConfig(
                reservoir_capacity=1,
                seed=17,
                kernel=kernel,
                strict=False,
                batch_fast_path=(kernel == "numpy"),
            )
            clusterer = StreamingGraphClusterer(config)
            if kernel == "numpy":
                clusterer._reservoir._gen = _InjectedGenerator()
            else:
                clusterer._reservoir._rng = _InjectedRandom()
            samples = []
            for start in range(0, len(events), 128):
                clusterer.apply_many(events[start : start + 128])
                samples.append(sorted(clusterer.reservoir_edges()))
            return clusterer, samples

        scalar, scalar_samples = run("scalar")
        vectorized, numpy_samples = run("numpy")
        assert scalar_samples == numpy_samples
        assert scalar.snapshot() == vectorized.snapshot()

    def test_identical_admission_decisions(self):
        # At full capacity the two reservoirs must *admit* the same
        # stream positions under the injected draws. Evicted keys are
        # excluded on purpose: a victim draw picks a slot index, and
        # slot order is internal state the two implementations arrange
        # differently (uniform either way; the chi-square test below
        # covers the resulting distribution).
        keys = [np.uint64((u << 32) | (u + 1000)) for u in range(500)]

        scalar = PackedEdgeReservoir(40, seed=3)
        scalar._rng = _InjectedRandom()
        from repro.sampling.random_pairing import NOT_ADMITTED

        scalar_admitted = [
            i
            for i, key in enumerate(keys)
            if scalar.insert_fast(int(key)) is not NOT_ADMITTED
        ]

        vectorized = NumpyPackedEdgeReservoir(40, seed=3)
        vectorized._gen = _InjectedGenerator()
        admitted, _evicted = vectorized.insert_many(np.array(keys))
        position_of = {int(key): i for i, key in enumerate(keys)}
        numpy_admitted = sorted(position_of[key] for key in admitted)
        assert scalar_admitted == numpy_admitted


# ----------------------------------------------------------------------
# Distribution equivalence (chi-square) under real RNGs
# ----------------------------------------------------------------------
def _chi2_critical(dof, z=3.09):
    """Wilson-Hilferty upper quantile (z=3.09 ~ the 0.999 point)."""
    term = 2.0 / (9.0 * dof)
    return dof * (1.0 - term + z * math.sqrt(term)) ** 3


class TestDistributionEquivalence:
    def test_inclusion_chi_square(self):
        # 40 distinct edges, capacity 10: every edge should be sampled
        # with probability 1/4 by both kernels. Homogeneity chi-square
        # between the kernels' inclusion counts, plus goodness-of-fit
        # for the numpy kernel alone, both at the 0.999 point — loose
        # enough to be stable, tight enough to catch a biased batch
        # draw (e.g. an off-by-one in the steady-state populations).
        edges = [(i, i + 100) for i in range(40)]
        events = [(ADD, u, v) for u, v in edges]
        runs = 200
        counts = {"scalar": dict.fromkeys(edges, 0), "numpy": dict.fromkeys(edges, 0)}
        for kernel in ("scalar", "numpy"):
            for seed in range(runs):
                config = ClustererConfig(
                    reservoir_capacity=10, seed=seed, kernel=kernel
                )
                clusterer = StreamingGraphClusterer(config)
                clusterer.apply_many(events)
                sampled = clusterer.reservoir_edges()
                assert len(sampled) == 10
                for edge in sampled:
                    counts[kernel][edge] += 1

        expected = runs * 10 / 40
        gof = sum(
            (count - expected) ** 2 / expected
            for count in counts["numpy"].values()
        )
        assert gof < _chi2_critical(len(edges) - 1), (
            f"numpy inclusion counts non-uniform: chi2={gof:.1f}"
        )

        homogeneity = 0.0
        for edge in edges:
            a, b = counts["scalar"][edge], counts["numpy"][edge]
            column = a + b
            # Row totals are equal (runs * capacity each), so the
            # expected cell count is simply column/2.
            expect = column / 2
            if expect:
                homogeneity += (a - expect) ** 2 / expect
                homogeneity += (b - expect) ** 2 / expect
        assert homogeneity < _chi2_critical(len(edges) - 1), (
            f"scalar/numpy inclusion counts differ: chi2={homogeneity:.1f}"
        )


# ----------------------------------------------------------------------
# Determinism and persistence
# ----------------------------------------------------------------------
class TestNumpyPersistence:
    def _config(self, **overrides):
        settings = dict(
            reservoir_capacity=100, seed=23, kernel="numpy", strict=False
        )
        settings.update(overrides)
        return ClustererConfig(**settings)

    def test_two_runs_identical(self):
        events = _mixed_events(3000, 300, seed=29)

        def run():
            clusterer = StreamingGraphClusterer(self._config())
            for start in range(0, len(events), 512):
                clusterer.apply_many(events[start : start + 512])
            return clusterer

        first, second = run(), run()
        assert first.snapshot() == second.snapshot()
        assert pickle.dumps(first.get_state()) == pickle.dumps(second.get_state())

    def test_mid_stream_checkpoint_resume_byte_identical(self, tmp_path):
        from repro.persist.checkpoint import load_checkpoint, save_checkpoint

        events = _mixed_events(3000, 300, seed=31)
        straight = StreamingGraphClusterer(self._config())
        for start in range(0, len(events), 512):
            straight.apply_many(events[start : start + 512])

        resumed = StreamingGraphClusterer(self._config())
        for start in range(0, 1536, 512):
            resumed.apply_many(events[start : start + 512])
        path = tmp_path / "mid.ckpt"
        save_checkpoint(resumed, path, position=1536)
        checkpoint = load_checkpoint(path)
        assert checkpoint.position == 1536
        restored = checkpoint.clusterer
        assert isinstance(restored._reservoir, NumpyPackedEdgeReservoir)
        for start in range(1536, len(events), 512):
            restored.apply_many(events[start : start + 512])

        assert restored.snapshot() == straight.snapshot()
        assert pickle.dumps(restored.get_state()) == pickle.dumps(
            straight.get_state()
        )

    def test_checkpoint_file_roundtrip_byte_identical(self, tmp_path):
        from repro.persist.checkpoint import load_checkpoint, save_checkpoint

        events = _mixed_events(1500, 200, seed=37)
        clusterer = StreamingGraphClusterer(self._config())
        clusterer.apply_many(events)
        first = tmp_path / "a.ckpt"
        second = tmp_path / "b.ckpt"
        save_checkpoint(clusterer, first, position=len(events))
        restored = load_checkpoint(first).clusterer
        save_checkpoint(restored, second, position=len(events))
        assert first.read_bytes() == second.read_bytes()

    def test_scalar_state_refused_by_numpy_reservoir(self):
        scalar = PackedEdgeReservoir(8, seed=1)
        for key in range(20):
            scalar.insert_fast(key)
        with pytest.raises(ValueError, match="np_rng_state"):
            NumpyPackedEdgeReservoir.from_state(scalar.get_state())


# ----------------------------------------------------------------------
# from_state id-range validation (interner table bound)
# ----------------------------------------------------------------------
class TestFromStateIdLimit:
    def _state_with_keys(self, keys, capacity=8):
        reservoir = PackedEdgeReservoir(capacity, seed=5)
        for key in keys:
            reservoir.insert_fast(key)
        return reservoir.get_state()

    def test_accepts_in_range(self):
        keys = [(1 << 32) | 2, (3 << 32) | 4]
        state = self._state_with_keys(keys)
        restored = PackedEdgeReservoir.from_state(state, id_limit=5)
        assert sorted(restored) == sorted(keys)

    def test_rejects_endpoint_beyond_interner(self):
        state = self._state_with_keys([(1 << 32) | 7])
        with pytest.raises(ValueError, match="intern table"):
            PackedEdgeReservoir.from_state(state, id_limit=7)

    def test_numpy_subclass_inherits_validation(self):
        reservoir = NumpyPackedEdgeReservoir(8, seed=5)
        reservoir.insert_fast((9 << 32) | 1)
        with pytest.raises(ValueError, match="intern table"):
            NumpyPackedEdgeReservoir.from_state(
                reservoir.get_state(), id_limit=9
            )
