"""Equivalence properties of the batched ingestion fast path.

The contract under test: for *any* split of a stream into batches,
``apply_many`` leaves the clusterer in a state identical to applying the
events one at a time — same reservoir contents and RNG state, same
statistics, same tracked graph, same clustering. The tests drive both
paths over random add/delete streams (with vertex events as batch
barriers) across all three connectivity backends.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.core.sharded import ShardedClusterer
from repro.persist import load_checkpoint, save_checkpoint
from repro.streams import EdgeEvent, EventKind

BACKENDS = ("hdt", "naive", "lazy")

# Operation stream over a small vertex universe: (u, v) toggles the
# edge, so the stream is always well-formed under strict semantics.
_ops = st.lists(
    st.tuples(st.integers(0, 13), st.integers(0, 13)).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=120,
)


def _raw_events(ops, barrier_every=0):
    """Toggle ops into a well-formed raw event stream.

    With ``barrier_every`` > 0, a DELETE_VERTEX barrier is interleaved
    periodically (of a vertex currently present), exercising the
    flush-and-barrier path inside ``apply_many``.
    """
    live: set = set()
    events = []
    for index, (a, b) in enumerate(ops):
        edge = (min(a, b), max(a, b))
        if edge in live:
            events.append((EventKind.DELETE_EDGE, edge[0], edge[1]))
            live.discard(edge)
        else:
            events.append((EventKind.ADD_EDGE, a, b))
            live.add(edge)
        if barrier_every and index % barrier_every == barrier_every - 1:
            victim = edge[0]
            events.append((EventKind.DELETE_VERTEX, victim, None))
            live = {e for e in live if victim not in e}
    return events


def _strip_config(state: dict) -> dict:
    """Drop the config for comparison: constraint instances have no
    ``__eq__``, so two structurally identical configs never compare
    equal. Configs are compared by repr where they matter."""
    state.pop("config")
    return state


def _run_per_event(events, **config_kwargs) -> StreamingGraphClusterer:
    clusterer = StreamingGraphClusterer(ClustererConfig(**config_kwargs))
    for event in events:
        clusterer.apply(EdgeEvent(*event))
    return clusterer


def _run_batched(events, rng, **config_kwargs) -> StreamingGraphClusterer:
    """Apply ``events`` through apply_many over a random split."""
    clusterer = StreamingGraphClusterer(ClustererConfig(**config_kwargs))
    index = 0
    while index < len(events):
        step = rng.randrange(1, len(events) - index + 1)
        clusterer.apply_many(events[index : index + step])
        index += step
    return clusterer


@settings(max_examples=60, deadline=None)
@given(
    ops=_ops,
    seed=st.integers(0, 2**20),
    capacity=st.integers(1, 25),
    backend=st.sampled_from(BACKENDS),
    split_seed=st.integers(0, 2**10),
)
def test_apply_many_matches_per_event_for_any_split(
    ops, seed, capacity, backend, split_seed
):
    events = _raw_events(ops)
    kwargs = dict(
        reservoir_capacity=capacity,
        seed=seed,
        connectivity_backend=backend,
    )
    reference = _run_per_event(events, **kwargs)
    batched = _run_batched(events, random.Random(split_seed), **kwargs)
    assert _strip_config(batched.get_state()) == _strip_config(reference.get_state())
    assert batched.snapshot() == reference.snapshot()
    assert batched.num_clusters == reference.num_clusters


@settings(max_examples=25, deadline=None)
@given(
    ops=_ops,
    seed=st.integers(0, 2**20),
    split_seed=st.integers(0, 2**10),
)
def test_apply_many_with_vertex_delete_barriers(ops, seed, split_seed):
    events = _raw_events(ops, barrier_every=7)
    kwargs = dict(reservoir_capacity=8, seed=seed, strict=False)
    reference = _run_per_event(events, **kwargs)
    batched = _run_batched(events, random.Random(split_seed), **kwargs)
    assert _strip_config(batched.get_state()) == _strip_config(reference.get_state())


@settings(max_examples=25, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2**20))
def test_one_big_batch_matches_per_event_queries(ops, seed):
    """A single apply_many call answers live queries identically even
    while its connectivity flush is still deferred."""
    events = _raw_events(ops)
    kwargs = dict(reservoir_capacity=10, seed=seed)
    reference = _run_per_event(events, **kwargs)
    batched = StreamingGraphClusterer(ClustererConfig(**kwargs))
    batched.apply_many(events)
    vertices = sorted(reference.vertices())
    for v in vertices:
        assert batched.cluster_size(v) == reference.cluster_size(v)
        assert batched.cluster_members(v) == reference.cluster_members(v)
    for u, v in zip(vertices, vertices[1:]):
        assert batched.same_cluster(u, v) == reference.same_cluster(u, v)
    assert batched.snapshot() == reference.snapshot()


@settings(max_examples=30, deadline=None)
@given(
    ops=_ops,
    seed=st.integers(0, 2**20),
    cut=st.integers(0, 120),
    backend=st.sampled_from(BACKENDS),
)
def test_checkpoint_roundtrip_mid_stream(tmp_path_factory, ops, seed, cut, backend):
    """Checkpoint a batched run mid-stream, restore, finish the tail —
    identical end state to an uninterrupted per-event run. Exercises the
    slot-array reservoir's state round-trip (slot order and RNG state
    must survive exactly for the remaining stream to replay bit-equal).
    """
    events = _raw_events(ops)
    cut = min(cut, len(events))
    kwargs = dict(
        reservoir_capacity=7, seed=seed, connectivity_backend=backend
    )
    reference = _run_per_event(events, **kwargs)

    head = StreamingGraphClusterer(ClustererConfig(**kwargs))
    head.apply_many(events[:cut])
    path = tmp_path_factory.mktemp("ckpt") / "mid.ckpt"
    save_checkpoint(head, path, position=cut)
    checkpoint = load_checkpoint(path)
    assert checkpoint.position == cut
    restored = checkpoint.clusterer
    restored.apply_many(events[cut:])
    assert _strip_config(restored.get_state()) == _strip_config(reference.get_state())
    assert restored.snapshot() == reference.snapshot()


def test_sharded_apply_many_matches_per_event():
    rng = random.Random(11)
    ops = [(rng.randrange(40), rng.randrange(40)) for _ in range(600)]
    events = _raw_events([op for op in ops if op[0] != op[1]])
    config = ClustererConfig(reservoir_capacity=50, seed=4, strict=False)
    reference = ShardedClusterer(config, 3)
    for event in events:
        reference.apply(EdgeEvent(*event))
    batched = ShardedClusterer(config, 3).process(events, batch_size=128)
    state_a, state_b = reference.get_state(), batched.get_state()
    state_a.pop("config")
    state_b.pop("config")
    for shard_a, shard_b in zip(state_a.pop("shards"), state_b.pop("shards")):
        assert _strip_config(shard_a) == _strip_config(shard_b)
    assert state_a == state_b
    assert reference.snapshot() == batched.snapshot()


class TestNoReextractionWithoutStructuralChange:
    """Regression: repeated snapshots between updates must reuse the
    cached partition, and events that change nothing structural must not
    invalidate it (``partition_builds`` counts actual extractions)."""

    def _seeded(self) -> StreamingGraphClusterer:
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=100, seed=0, strict=False)
        )
        clusterer.apply_many(
            [
                (EventKind.ADD_EDGE, 1, 2),
                (EventKind.ADD_EDGE, 2, 3),
                (EventKind.ADD_EDGE, 4, 5),
            ]
        )
        return clusterer

    def test_repeated_queries_build_once(self):
        clusterer = self._seeded()
        assert clusterer.partition_builds == 0
        first = clusterer.snapshot()
        assert clusterer.partition_builds == 1
        assert clusterer.snapshot() is not None
        assert clusterer.num_clusters == first.num_clusters
        assert clusterer.cluster_size(1) == 3
        assert clusterer.partition_builds == 1

    def test_non_structural_events_keep_cache(self):
        clusterer = self._seeded()
        clusterer.snapshot()
        # A duplicate add and a delete of an unknown edge are counted as
        # malformed (strict=False) and change no structure.
        clusterer.apply_many(
            [(EventKind.ADD_EDGE, 1, 2), (EventKind.DELETE_EDGE, 8, 9)]
        )
        clusterer.snapshot()
        assert clusterer.partition_builds == 1
        assert clusterer.stats.malformed_events == 2

    def test_structural_change_rebuilds_once(self):
        clusterer = self._seeded()
        clusterer.snapshot()
        clusterer.apply_many([(EventKind.ADD_EDGE, 5, 6)])
        clusterer.snapshot()
        clusterer.snapshot()
        assert clusterer.partition_builds == 2
