"""Unit tests for the R-MAT generator."""

from collections import Counter

import pytest

from repro.streams import rmat_edges


class TestRmat:
    def test_exact_edge_count(self):
        edges = rmat_edges(scale=8, num_edges=1000, seed=1)
        assert len(edges) == 1000

    def test_no_duplicates_or_loops(self):
        edges = rmat_edges(scale=8, num_edges=1500, seed=2)
        assert len(set(edges)) == len(edges)
        assert all(u != v for u, v in edges)
        n = 1 << 8
        assert all(0 <= u < n and 0 <= v < n for u, v in edges)

    def test_deterministic(self):
        assert rmat_edges(7, 500, seed=3) == rmat_edges(7, 500, seed=3)
        assert rmat_edges(7, 500, seed=3) != rmat_edges(7, 500, seed=4)

    def test_skewed_degrees(self):
        edges = rmat_edges(scale=10, num_edges=5000, seed=5)
        degree = Counter()
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        ranked = sorted(degree.values(), reverse=True)
        # Heavy head: the top vertex far exceeds the median.
        median = ranked[len(ranked) // 2]
        assert ranked[0] > 10 * median

    def test_uniform_parameters_give_flat_degrees(self):
        edges = rmat_edges(
            scale=10, num_edges=5000, a=0.25, b=0.25, c=0.25, noise=0.0, seed=6
        )
        degree = Counter()
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        ranked = sorted(degree.values(), reverse=True)
        assert ranked[0] < 5 * ranked[len(ranked) // 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 10)
        with pytest.raises(ValueError):
            rmat_edges(4, 10, a=0.6, b=0.3, c=0.2)  # sums over 1
        with pytest.raises(ValueError):
            rmat_edges(3, 1000)  # more edges than pairs

    def test_rejection_budget_error(self):
        # Extremely skewed parameters concentrate draws on few cells;
        # demanding near-maximal density must fail loudly, not loop.
        with pytest.raises(RuntimeError, match="budget"):
            rmat_edges(
                4, 100, a=0.97, b=0.01, c=0.01, noise=0.0,
                seed=7, max_attempts_factor=3,
            )

    def test_feeds_the_clusterer(self):
        from repro.core import ClustererConfig, StreamingGraphClusterer
        from repro.streams import insert_only_stream

        edges = rmat_edges(scale=9, num_edges=2000, seed=8)
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=300, strict=False)
        ).process(insert_only_stream(edges, seed=8))
        assert clusterer.num_clusters >= 1
        assert clusterer.reservoir_size == 300
