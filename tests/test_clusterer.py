"""Unit tests for StreamingGraphClusterer."""

import pytest

from repro.core import (
    ClustererConfig,
    DeletionPolicy,
    MaxClusterSize,
    MinClusterCount,
    StreamingGraphClusterer,
)
from repro.errors import StreamError, UnsupportedOperationError
from repro.streams import (
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
    insert_only_stream,
    planted_partition,
)


def make(capacity=100, **kwargs) -> StreamingGraphClusterer:
    return StreamingGraphClusterer(ClustererConfig(reservoir_capacity=capacity, **kwargs))


class TestBasicClustering:
    def test_small_reservoir_clusters_everything_sampled(self):
        c = make(capacity=10)
        for u, v in [(1, 2), (2, 3), (4, 5)]:
            c.apply(add_edge(u, v))
        # Reservoir is under-full: every edge sampled, components exact.
        assert c.same_cluster(1, 3)
        assert not c.same_cluster(1, 4)
        assert c.num_clusters == 2
        assert c.reservoir_size == 3

    def test_snapshot_covers_all_seen_vertices(self):
        c = make()
        c.apply(add_edge(1, 2))
        c.apply(add_vertex(42))
        snapshot = c.snapshot()
        assert 42 in snapshot
        assert snapshot.num_vertices == 3

    def test_cluster_queries(self):
        c = make()
        c.apply(add_edge("a", "b"))
        assert c.cluster_members("a") == {"a", "b"}
        assert c.cluster_size("a") == 2
        assert c.cluster_size("unseen") == 1
        assert c.cluster_id("a") == c.cluster_id("b")

    def test_process_chains(self):
        events = [add_edge(1, 2), add_edge(2, 3)]
        c = make().process(events)
        assert c.stats.events == 2

    def test_repr(self):
        c = make(capacity=5)
        assert "reservoir=0/5" in repr(c)

    def test_vertices_iteration(self):
        c = make()
        c.apply(add_edge(1, 2))
        c.apply(add_vertex(3))
        assert sorted(c.vertices()) == [1, 2, 3]


class TestDeletions:
    def test_delete_sampled_edge_splits(self):
        c = make(capacity=10)
        c.apply(add_edge(1, 2))
        c.apply(delete_edge(1, 2))
        assert not c.same_cluster(1, 2)
        assert c.stats.sample_deletions == 1
        assert c.graph.num_edges == 0

    def test_delete_vertex_removes_incident_edges(self):
        c = make(capacity=10)
        for u, v in [(1, 2), (1, 3), (2, 3)]:
            c.apply(add_edge(u, v))
        c.apply(delete_vertex(1))
        snapshot = c.snapshot()
        assert 1 not in snapshot
        assert c.same_cluster(2, 3)
        assert c.graph.num_edges == 1

    def test_delete_vertex_without_tracking_unsupported(self):
        c = make(track_graph=False, strict=False)
        c.apply(add_edge(1, 2))
        with pytest.raises(UnsupportedOperationError):
            c.apply(delete_vertex(1))

    def test_heavy_churn_consistency(self, rng):
        c = make(capacity=50, strict=False)
        live = set()
        for step in range(3000):
            u, v = rng.sample(range(40), 2)
            edge = (min(u, v), max(u, v))
            if edge in live and rng.random() < 0.5:
                c.apply(delete_edge(*edge))
                live.discard(edge)
            elif edge not in live:
                c.apply(add_edge(*edge))
                live.add(edge)
        assert c.graph.num_edges == len(live)
        # Sampled sub-graph edges are all live.
        assert all(e in live for e in c.reservoir_edges())
        # Snapshot is a partition of exactly the seen vertices.
        snapshot = c.snapshot()
        assert snapshot.num_vertices == c.num_vertices


class TestStrictness:
    def test_duplicate_add_raises_when_strict(self):
        c = make(strict=True)
        c.apply(add_edge(1, 2))
        with pytest.raises(StreamError, match="duplicate"):
            c.apply(add_edge(2, 1))

    def test_delete_absent_edge_raises_when_strict(self):
        c = make(strict=True)
        with pytest.raises(StreamError, match="absent"):
            c.apply(delete_edge(1, 2))

    def test_delete_absent_vertex_raises_when_strict(self):
        c = make(strict=True)
        with pytest.raises(StreamError):
            c.apply(delete_vertex(9))

    def test_non_strict_counts_malformed(self):
        c = make(strict=False)
        c.apply(add_edge(1, 2))
        c.apply(add_edge(1, 2))
        c.apply(delete_edge(5, 6))
        assert c.stats.malformed_events == 2
        assert c.graph.num_edges == 1


class TestConstraints:
    def test_max_cluster_size_enforced(self):
        graph = planted_partition(120, 2, p_in=0.3, p_out=0.05, seed=5)
        c = make(capacity=2000, constraint=MaxClusterSize(15), strict=False)
        c.process(insert_only_stream(graph.edges, seed=1))
        assert c.snapshot().max_cluster_size <= 15
        assert c.stats.vetoes > 0

    def test_min_cluster_count_enforced(self):
        graph = planted_partition(60, 2, p_in=0.4, p_out=0.05, seed=6)
        c = make(capacity=2000, constraint=MinClusterCount(5), strict=False)
        c.process(insert_only_stream(graph.edges, seed=2))
        assert c.num_clusters >= 5

    def test_constraint_applies_during_resample(self):
        graph = planted_partition(60, 2, p_in=0.4, p_out=0.05, seed=7)
        c = make(
            capacity=300,
            constraint=MaxClusterSize(10),
            deletion_policy=DeletionPolicy.RESAMPLE,
            strict=False,
        )
        c.process(insert_only_stream(graph.edges, seed=3))
        edges = list(c.graph.edges())
        for edge in edges[: len(edges) * 3 // 4]:
            c.apply(delete_edge(*edge))
        assert c.snapshot().max_cluster_size <= 10


class TestResamplePolicy:
    def test_resample_restores_sample_size(self):
        graph = planted_partition(100, 4, p_in=0.3, p_out=0.02, seed=8)
        c = make(capacity=100, deletion_policy=DeletionPolicy.RESAMPLE, strict=False)
        c.process(insert_only_stream(graph.edges, seed=4))
        edges = list(c.graph.edges())
        for edge in edges[: len(edges) * 7 // 10]:
            c.apply(delete_edge(*edge))
        assert c.stats.resamples >= 1
        remaining = c.graph.num_edges
        assert c.reservoir_size >= 0.5 * min(100, remaining)

    def test_random_pairing_never_resamples(self):
        c = make(capacity=10)
        for i in range(20):
            c.apply(add_edge(i, i + 1))
        for i in range(15):
            c.apply(delete_edge(i, i + 1))
        assert c.stats.resamples == 0


class TestLeanMode:
    def test_lean_mode_has_no_graph(self):
        c = make(track_graph=False, strict=False)
        c.apply(add_edge(1, 2))
        assert c.graph is None
        assert c.same_cluster(1, 2)

    def test_lean_mode_handles_deletions_of_sampled_edges(self):
        c = make(capacity=100, track_graph=False, strict=False)
        for i in range(10):
            c.apply(add_edge(i, i + 1))
        c.apply(delete_edge(3, 4))
        assert not c.same_cluster(0, 10)
