"""Property-based tests: AdjacencyGraph and CSR against networkx oracles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import AdjacencyGraph, CSRGraph

nx = pytest.importorskip("networkx")

# Random operation sequences over a small vertex universe: positive pair
# = toggle edge, single negative int = remove that vertex.
_pairs = st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
    lambda p: p[0] != p[1]
)
_ops = st.lists(
    st.one_of(_pairs, st.integers(-10, -1)), min_size=1, max_size=80
)


@settings(max_examples=100, deadline=None)
@given(ops=_ops)
def test_adjacency_matches_networkx(ops):
    ours = AdjacencyGraph()
    theirs = nx.Graph()
    for op in ops:
        if isinstance(op, tuple):
            u, v = op
            if ours.has_edge(u, v):
                ours.remove_edge(u, v)
                theirs.remove_edge(u, v)
            else:
                ours.add_edge(u, v)
                theirs.add_edge(u, v)
        else:
            vertex = -op - 1
            ours.remove_vertex(vertex)
            if theirs.has_node(vertex):
                theirs.remove_node(vertex)
        assert ours.num_edges == theirs.number_of_edges()
        assert ours.num_vertices == theirs.number_of_nodes()
    assert sorted(map(tuple, map(sorted, ours.edges()))) == sorted(
        map(tuple, map(sorted, theirs.edges()))
    )
    our_components = sorted(tuple(sorted(c)) for c in ours.connected_components())
    their_components = sorted(
        tuple(sorted(c)) for c in nx.connected_components(theirs)
    )
    assert our_components == their_components


@settings(max_examples=100, deadline=None)
@given(
    edges=st.sets(_pairs, min_size=0, max_size=30),
    isolated=st.sets(st.integers(10, 14), max_size=3),
)
def test_csr_roundtrip_preserves_structure(edges, isolated):
    graph = AdjacencyGraph(edges)
    for v in isolated:
        graph.add_vertex(v)
    csr = CSRGraph.from_adjacency(graph)
    assert csr.num_vertices == graph.num_vertices
    assert csr.num_edges == graph.num_edges
    # Degrees agree vertex by vertex.
    for v in graph.vertices():
        assert csr.degree(csr.index_of[v]) == graph.degree(v)
    # CSR edge iteration reproduces the canonical edge set.
    csr_edges = {
        tuple(sorted((csr.ids[u], csr.ids[v]))) for u, v in csr.edges()
    }
    assert csr_edges == {tuple(sorted(e)) for e in graph.edges()}
    # scipy view is symmetric with the right mass.
    matrix = csr.to_scipy()
    assert (matrix != matrix.T).nnz == 0
    assert matrix.sum() == 2 * graph.num_edges


@settings(max_examples=80, deadline=None)
@given(edges=st.sets(_pairs, min_size=1, max_size=30), seed=st.integers(0, 100))
def test_louvain_never_worse_than_singletons(edges, seed):
    from repro.baselines import louvain
    from repro.quality import Partition, modularity

    graph = AdjacencyGraph(edges)
    partition = louvain(graph, seed=seed)
    singles = Partition.singletons(graph.vertices())
    assert modularity(graph, partition) >= modularity(graph, singles) - 1e-12
    # Louvain output covers exactly the graph's vertices.
    assert set(partition.vertices()) == set(graph.vertices())


@settings(max_examples=60, deadline=None)
@given(edges=st.sets(_pairs, min_size=1, max_size=25))
def test_offline_baselines_return_total_partitions(edges):
    from repro.baselines import connected_components, label_propagation, mcl

    graph = AdjacencyGraph(edges)
    for algorithm in (label_propagation, mcl, connected_components):
        partition = algorithm(graph)
        assert set(partition.vertices()) == set(graph.vertices())
        assert sum(partition.sizes()) == graph.num_vertices
