"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets import barbell, karate_club, two_triangles
from repro.graph import AdjacencyGraph
from repro.streams import planted_partition


@pytest.fixture
def triangle_graph():
    """Two triangles joined by a bridge."""
    edges, truth = two_triangles(bridge=True)
    return AdjacencyGraph(edges), truth


@pytest.fixture
def karate_graph():
    """Zachary's karate club with the two-faction ground truth."""
    edges, truth = karate_club()
    return AdjacencyGraph(edges), truth


@pytest.fixture
def barbell_graph():
    """Two 5-cliques joined by a 3-vertex path."""
    edges, truth = barbell(clique_size=5, path_length=3)
    return AdjacencyGraph(edges), truth


@pytest.fixture
def sbm_small():
    """200-vertex, 4-community planted partition (clear structure)."""
    return planted_partition(200, 4, p_in=0.25, p_out=0.005, seed=11)


@pytest.fixture
def rng():
    """A seeded RNG for test-local randomness."""
    return random.Random(1234)
