"""Unit tests for cluster-evolution tracking."""

import pytest

from repro.core.tracking import ClusterEventKind, ClusterTracker
from repro.quality import Partition


def clusters(*groups):
    return Partition.from_clusters([set(g) for g in groups])


class TestLifecycle:
    def test_first_snapshot_all_born(self):
        tracker = ClusterTracker()
        report = tracker.update(clusters({1, 2, 3}, {4, 5}))
        assert report.count(ClusterEventKind.BORN) == 2
        assert report.stability == 1.0

    def test_unchanged_clusters_continue_with_same_id(self):
        tracker = ClusterTracker()
        first = tracker.update(clusters({1, 2, 3}, {4, 5}))
        second = tracker.update(clusters({1, 2, 3}, {4, 5}))
        assert second.count(ClusterEventKind.CONTINUED) == 2
        assert set(first.stable_id_of.values()) == set(second.stable_id_of.values())
        assert second.stability == pytest.approx(1.0)

    def test_growth_keeps_identity(self):
        tracker = ClusterTracker()
        first = tracker.update(clusters({1, 2, 3}))
        second = tracker.update(clusters({1, 2, 3, 4, 5}))
        assert second.count(ClusterEventKind.CONTINUED) == 1
        assert list(second.stable_id_of.values()) == list(first.stable_id_of.values())

    def test_death(self):
        tracker = ClusterTracker()
        tracker.update(clusters({1, 2, 3}, {4, 5}))
        report = tracker.update(clusters({1, 2, 3}))
        assert report.count(ClusterEventKind.DIED) == 1
        assert report.count(ClusterEventKind.CONTINUED) == 1

    def test_split(self):
        tracker = ClusterTracker()
        tracker.update(clusters(set(range(10))))
        report = tracker.update(clusters({0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}))
        # The bigger-overlap half continues; the other half is a SPLIT.
        assert report.count(ClusterEventKind.CONTINUED) == 1
        assert report.count(ClusterEventKind.SPLIT) == 1
        split = next(e for e in report.events if e.kind is ClusterEventKind.SPLIT)
        assert len(split.stable_ids) == 2  # (parent, new id)

    def test_merge(self):
        tracker = ClusterTracker()
        first = tracker.update(clusters({0, 1, 2, 3}, {4, 5, 6, 7}))
        report = tracker.update(clusters(set(range(8))))
        merged = [e for e in report.events if e.kind is ClusterEventKind.MERGED]
        assert len(merged) == 1
        parents = set(merged[0].stable_ids[:-1])
        assert parents == set(first.stable_id_of.values())

    def test_born_cluster_unrelated_to_history(self):
        tracker = ClusterTracker()
        tracker.update(clusters({1, 2, 3}))
        report = tracker.update(clusters({1, 2, 3}, {10, 11, 12}))
        assert report.count(ClusterEventKind.BORN) == 1
        assert report.count(ClusterEventKind.CONTINUED) == 1


class TestFilteringAndValidation:
    def test_min_size_ignores_singletons(self):
        tracker = ClusterTracker(min_size=3)
        report = tracker.update(clusters({1, 2, 3}, {4, 5}, {6}))
        assert report.count(ClusterEventKind.BORN) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ClusterTracker(threshold=2.0)
        with pytest.raises(ValueError):
            ClusterTracker(min_size=0)

    def test_tracked_clusters_view(self):
        tracker = ClusterTracker()
        tracker.update(clusters({1, 2}))
        view = tracker.tracked_clusters
        assert list(view.values()) == [frozenset({1, 2})]

    def test_low_threshold_tolerates_churn(self):
        tracker = ClusterTracker(threshold=0.1)
        tracker.update(clusters({1, 2, 3, 4, 5}))
        report = tracker.update(clusters({4, 5, 6, 7, 8}))
        assert report.count(ClusterEventKind.CONTINUED) == 1

    def test_high_threshold_declares_death_and_birth(self):
        tracker = ClusterTracker(threshold=0.9)
        tracker.update(clusters({1, 2, 3, 4, 5}))
        report = tracker.update(clusters({4, 5, 6, 7, 8}))
        assert report.count(ClusterEventKind.CONTINUED) == 0
        assert report.count(ClusterEventKind.DIED) == 1


class TestWithStreamingClusterer:
    def test_tracks_drifting_stream(self):
        from repro.core import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
        from repro.streams import drifting_sbm_stream

        phases = drifting_sbm_stream(
            120, 4, 0.3, 0.0, num_phases=4, migrate_fraction=0.2, seed=81
        )
        clusterer = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=2000,
                constraint=MaxClusterSize(50),
                strict=False,
                seed=8,
            )
        )
        tracker = ClusterTracker(min_size=5)
        reports = []
        for phase in phases:
            clusterer.process(phase.events)
            reports.append(tracker.update(clusterer.snapshot()))
        # After the first snapshot, the big communities persist under drift.
        for report in reports[1:]:
            assert report.count(ClusterEventKind.CONTINUED) >= 2
            assert 0.0 <= report.stability <= 1.0
