"""Unit tests for the observability layer (metrics + progress)."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProgressReporter,
)
from repro.obs.progress import format_rate


class TestCounter:
    def test_increments(self):
        c = Counter("demo.events")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_raises(self):
        c = Counter("demo.events")
        with pytest.raises(ValueError, match="negative"):
            c.inc(-1)

    def test_as_dict(self):
        c = Counter("demo.events")
        c.inc(3)
        assert c.as_dict() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("demo.fill")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_can_go_negative(self):
        g = Gauge("demo.delta")
        g.dec(3)
        assert g.value == -3


class TestHistogram:
    def test_bucketing_with_overflow(self):
        h = Histogram("demo.latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 3.0):
            h.observe(value)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(3.55)
        assert h.mean == pytest.approx(3.55 / 3)

    def test_boundary_is_upper_inclusive(self):
        h = Histogram("demo.latency", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_mean_of_empty_is_zero(self):
        assert Histogram("demo.latency").mean == 0.0

    @pytest.mark.parametrize("bad", [(), (1.0, 1.0), (2.0, 1.0)])
    def test_invalid_buckets_raise(self, bad):
        with pytest.raises(ValueError, match="strictly"):
            Histogram("demo.latency", buckets=bad)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_timer_surfaces_in_snapshot(self):
        registry = MetricsRegistry()
        with registry.timer("ingest"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["timer.ingest"]["kind"] == "timer"
        assert snapshot["timer.ingest"]["value"] >= 0
        assert "timer.ingest" in registry.names()

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(0.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.3)
        parsed = json.loads(json.dumps(registry.snapshot()))
        assert parsed["a"] == {"kind": "counter", "value": 2}
        assert parsed["b"]["value"] == 0.5
        assert parsed["c"]["bucket_counts"] == [1, 0]

    def test_to_lines_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("z.fill").set(0.25)
        registry.counter("a.events").inc(7)
        registry.histogram("m.lat", buckets=(1.0, 2.0)).observe(1.5)
        lines = registry.to_lines()
        assert lines[0] == 'a.events kind="counter",value=7i'
        assert lines[1].startswith('m.lat kind="histogram",le_1=0i,le_2=1i')
        assert lines[2] == 'z.fill kind="gauge",value=0.25'

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text())["a"]["value"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with registry.timer("t"):
            pass
        registry.reset()
        assert len(registry) == 0
        assert registry.names() == []


class TestEnableFlag:
    def test_default_is_disabled(self):
        assert not obs.is_enabled()

    def test_enable_disable_roundtrip(self):
        obs.enable()
        try:
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_set_enabled(self):
        obs.set_enabled(True)
        try:
            assert obs.is_enabled()
        finally:
            obs.set_enabled(False)

    def test_disabled_clusterer_emits_nothing(self):
        from repro.core import ClustererConfig, StreamingGraphClusterer
        from repro.streams import add_edge

        registry = obs.default_registry()
        before = registry.names()
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=8, seed=0)
        )
        clusterer.process([add_edge(1, 2), add_edge(2, 3)], batch_size=2)
        assert registry.names() == before


class TestFormatRate:
    def test_scales(self):
        assert format_rate(950) == "950"
        assert format_rate(83_400) == "83.4k"
        assert format_rate(1_200_000) == "1.2M"


class _FakeClusterer:
    reservoir_size = 30
    num_clusters = 4

    class config:
        reservoir_capacity = 40


class TestProgressReporter:
    def test_reports_every_n_events(self):
        out = io.StringIO()
        ticks = iter(range(100))
        reporter = ProgressReporter(
            2, _FakeClusterer(), out=out, clock=lambda: next(ticks)
        )
        consumed = list(reporter.wrap(["a", "b", "c", "d", "e"]))
        assert consumed == ["a", "b", "c", "d", "e"]
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("progress: 2 events (")
        assert "reservoir 30/40 (75%)" in lines[0]
        assert "clusters 4" in lines[0]
        assert reporter.events == 5 and reporter.reports == 2

    def test_rate_uses_window_not_total(self):
        out = io.StringIO()
        clock_values = iter([0.0, 1.0, 2.0])  # start, report 1, report 2
        reporter = ProgressReporter(
            10, _FakeClusterer(), out=out, clock=lambda: next(clock_values)
        )
        list(reporter.wrap(range(20)))
        lines = out.getvalue().splitlines()
        assert "(10 ev/s)" in lines[0]
        assert "(10 ev/s)" in lines[1]  # window rate, not 20/2 cumulative

    def test_checkpoint_lag(self):
        class FakeCheckpointer:
            position = 500
            last_saved_position = 300

        out = io.StringIO()
        reporter = ProgressReporter(
            1, _FakeClusterer(), checkpointer=FakeCheckpointer(), out=out
        )
        list(reporter.wrap(["x"]))
        assert "ckpt lag 200" in out.getvalue()

    def test_degrades_without_clusterer_attributes(self):
        out = io.StringIO()
        reporter = ProgressReporter(1, object(), out=out)
        list(reporter.wrap(["x"]))
        line = out.getvalue()
        assert line.startswith("progress: 1 events")
        assert "reservoir" not in line and "clusters" not in line

    def test_non_positive_every_raises(self):
        with pytest.raises(ValueError, match="positive"):
            ProgressReporter(0, _FakeClusterer())

    def test_progress_snapshot_hook_bypasses_barrier_attributes(self):
        class BarrierClusterer:
            """Queries are expensive barriers; only the hook is cheap."""

            probed = False

            @property
            def num_clusters(self):
                type(self).probed = True
                return 99

            total_reservoir_size = reservoir_size = property(num_clusters.fget)

            def progress_snapshot(self):
                return {"clusters": 7}

        out = io.StringIO()
        reporter = ProgressReporter(1, BarrierClusterer(), out=out)
        list(reporter.wrap(["x"]))
        line = out.getvalue()
        assert "clusters 7" in line and "99" not in line
        assert not BarrierClusterer.probed

    def test_progress_snapshot_hook_may_omit_fields(self):
        class Hooked:
            def progress_snapshot(self):
                return {}

        out = io.StringIO()
        reporter = ProgressReporter(1, Hooked(), out=out)
        list(reporter.wrap(["x"]))
        line = out.getvalue()
        assert line.startswith("progress: 1 events")
        assert "clusters" not in line and "reservoir" not in line


class TestInstrumentation:
    """Enabled-mode emission from the library layers."""

    @pytest.fixture(autouse=True)
    def metrics_epoch(self):
        obs.default_registry().reset()
        obs.enable()
        yield
        obs.disable()
        obs.default_registry().reset()

    def test_clusterer_counters_match_stats(self):
        from repro.core import ClustererConfig, StreamingGraphClusterer
        from repro.streams import add_edge, delete_edge

        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=8, seed=0)
        )
        events = [add_edge(i, i + 1) for i in range(20)]
        events.append(delete_edge(0, 1))
        clusterer.process(events, batch_size=7)
        registry = obs.default_registry()
        assert registry.counter("clusterer.events").value == clusterer.stats.events
        assert (
            registry.counter("clusterer.edge_adds").value
            == clusterer.stats.edge_adds
        )
        assert registry.gauge("clusterer.reservoir_size").value == len(
            clusterer.reservoir_edges()
        )

    def test_sync_is_delta_based_across_shards(self):
        # Two clusterers sharing the default registry must aggregate,
        # not overwrite, counter values.
        from repro.core import ClustererConfig, StreamingGraphClusterer
        from repro.streams import add_edge

        a = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=8, seed=0))
        b = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=8, seed=1))
        a.process([add_edge(1, 2), add_edge(2, 3)], batch_size=2)
        b.process([add_edge(4, 5)], batch_size=2)
        a.process([add_edge(3, 4)], batch_size=2)
        registry = obs.default_registry()
        assert registry.counter("clusterer.events").value == 4

    def test_checkpointer_emits_save_metrics(self, tmp_path):
        from repro.core import ClustererConfig, StreamingGraphClusterer
        from repro.persist import PeriodicCheckpointer
        from repro.streams import add_edge

        checkpointer = PeriodicCheckpointer(
            StreamingGraphClusterer(ClustererConfig(reservoir_capacity=8)),
            tmp_path / "ck.rpk",
            every=2,
        )
        checkpointer.process([add_edge(1, 2), add_edge(2, 3), add_edge(3, 4)])
        registry = obs.default_registry()
        saves = registry.counter("checkpoint.saves").value
        assert saves == checkpointer.saves >= 2
        assert registry.histogram("checkpoint.save_seconds").count == saves
        assert registry.counter("checkpoint.bytes_written").value > 0

    def test_sharded_gauges(self):
        from repro.core import ClustererConfig, ShardedClusterer
        from repro.streams import add_edge

        sharded = ShardedClusterer(
            ClustererConfig(reservoir_capacity=8, seed=0), num_shards=2
        )
        sharded.apply_many([add_edge(i, i + 1) for i in range(10)])
        registry = obs.default_registry()
        assert registry.gauge("sharded.shard_skew").value >= 1.0
        total = sum(
            registry.gauge(f"sharded.shard_events.{i}").value for i in range(2)
        )
        assert total == 10


class TestHistogramQuantile:
    def test_quantile_walks_the_bucket_grid(self):
        h = Histogram("demo.quantile", buckets=(0.1, 1.0, 5.0))
        for value in [0.05] * 50 + [0.5] * 40 + [2.0] * 9:
            h.observe(value)
        h.observe(10.0)  # overflow
        assert h.quantile(0.5) == 0.1
        assert h.quantile(0.9) == 1.0
        assert h.quantile(0.99) == 5.0
        # The p100 falls in the overflow bucket: the grid has no upper
        # bound for it.
        assert h.quantile(1.0) == float("inf")

    def test_quantile_of_empty_is_zero(self):
        assert Histogram("demo.quantile").quantile(0.99) == 0.0

    def test_quantile_rejects_out_of_range(self):
        h = Histogram("demo.quantile")
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(-0.1)
