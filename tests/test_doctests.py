"""Every docstring example in the library must execute correctly."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("name", _all_modules())
def test_module_doctests(name):
    module = importlib.import_module(name)
    failures, _ = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert failures == 0, f"{failures} doctest failure(s) in {name}"
